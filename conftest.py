"""Pytest configuration shared by the test and benchmark suites.

Three jobs:

1. Path shim — make ``import repro`` work even without installation.
2. Marker tooling — register the ``slow`` and ``stress`` markers and
   keep ``stress`` tests out of the default (tier-1) run: ``pytest -x
   -q`` must stay within the seed suite's wall-time budget, so heavy
   concurrency/throughput tests only run when asked for explicitly
   (``-m stress``, or ``REPRO_STRESS=1`` — the switch the dedicated CI
   job flips).
3. Network probe — register the ``network`` marker (tests that bind a
   real localhost socket via ``asyncio.start_server``) and auto-skip
   those tests in sandboxes where localhost listening sockets are
   unavailable, probed once per session.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: takes noticeably longer than the suite's median test; "
        "runs in tier-1 but is the first candidate for deselection",
    )
    config.addinivalue_line(
        "markers",
        "stress: heavy concurrency/fault/throughput exercise; skipped "
        "unless selected with -m stress or REPRO_STRESS=1",
    )
    config.addinivalue_line(
        "markers",
        "network: binds a localhost socket server; auto-skipped where "
        "asyncio.start_server on loopback is unavailable",
    )


def _stress_selected(config):
    if os.environ.get("REPRO_STRESS") == "1":
        return True
    return "stress" in (config.getoption("-m") or "")


def _loopback_server_available():
    """Probe once whether asyncio can listen on a loopback socket."""
    import asyncio

    async def _probe():
        server = await asyncio.start_server(
            lambda reader, writer: None, "127.0.0.1", 0
        )
        server.close()
        await server.wait_closed()

    try:
        asyncio.run(_probe())
    except (OSError, NotImplementedError):
        return False
    return True


def pytest_collection_modifyitems(config, items):
    skip_stress = None
    if not _stress_selected(config):
        skip_stress = pytest.mark.skip(
            reason="stress test; select with -m stress or REPRO_STRESS=1"
        )
    skip_network = None
    if any("network" in item.keywords for item in items) \
            and not _loopback_server_available():
        skip_network = pytest.mark.skip(
            reason="localhost socket servers unavailable in this "
                   "environment"
        )
    for item in items:
        if skip_stress is not None and "stress" in item.keywords:
            item.add_marker(skip_stress)
        if skip_network is not None and "network" in item.keywords:
            item.add_marker(skip_network)
