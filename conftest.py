"""Pytest configuration shared by the test and benchmark suites.

Two jobs:

1. Path shim — make ``import repro`` work even without installation.
2. Marker tooling — register the ``slow`` and ``stress`` markers and
   keep ``stress`` tests out of the default (tier-1) run: ``pytest -x
   -q`` must stay within the seed suite's wall-time budget, so heavy
   concurrency/throughput tests only run when asked for explicitly
   (``-m stress``, or ``REPRO_STRESS=1`` — the switch the dedicated CI
   job flips).
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: takes noticeably longer than the suite's median test; "
        "runs in tier-1 but is the first candidate for deselection",
    )
    config.addinivalue_line(
        "markers",
        "stress: heavy concurrency/fault/throughput exercise; skipped "
        "unless selected with -m stress or REPRO_STRESS=1",
    )


def _stress_selected(config):
    if os.environ.get("REPRO_STRESS") == "1":
        return True
    return "stress" in (config.getoption("-m") or "")


def pytest_collection_modifyitems(config, items):
    if _stress_selected(config):
        return
    skip_stress = pytest.mark.skip(
        reason="stress test; select with -m stress or REPRO_STRESS=1"
    )
    for item in items:
        if "stress" in item.keywords:
            item.add_marker(skip_stress)
