"""Algorithm anatomy: watching the three DCCS algorithms work.

Runs GD-DCCS, BU-DCCS and TD-DCCS on the same medium-sized multi-layer
graph at a small and a large support threshold, and prints the search
counters: candidate d-CC computations, level-s candidates offered,
subtrees pruned, vertices deleted by preprocessing.  This is the paper's
Section IV/V story in numbers: where the bottom-up tree saves work, why
it degrades for large ``s``, and how the top-down potential sets fix it.

Run with::

    python examples/algorithm_anatomy.py
"""

from repro.core import search_dccs
from repro.datasets import load


def report(graph, d, s, k, methods):
    print("\nparameters: d={}, s={}, k={}".format(d, s, k))
    header = "{:>10s} {:>9s} {:>7s} {:>10s} {:>11s} {:>8s} {:>8s}".format(
        "algorithm", "time(s)", "cover", "dCC calls", "candidates",
        "pruned", "deleted",
    )
    print(header)
    print("-" * len(header))
    for method in methods:
        result = search_dccs(graph, d, s, k, method=method)
        stats = result.stats
        print("{:>10s} {:>9.3f} {:>7d} {:>10d} {:>11d} {:>8d} {:>8d}".format(
            result.algorithm, result.elapsed, result.cover_size,
            stats.dcc_calls, stats.candidates_generated,
            stats.candidates_pruned, stats.vertices_deleted,
        ))


def main():
    dataset = load("english", scale=0.5)
    graph = dataset.graph
    print("dataset:", graph)
    num_layers = graph.num_layers

    print("\n=== small support (s < l/2): bottom-up territory ===")
    report(graph, d=4, s=3, k=10, methods=("greedy", "bottom-up"))
    print("\nGD-DCCS computed one d-CC per layer triple — binom({}, 3) "
          "candidates.  BU-DCCS pruned most of that tree.".format(num_layers))

    print("\n=== large support (s >= l/2): top-down territory ===")
    report(
        graph, d=4, s=num_layers - 2, k=10,
        methods=("greedy", "bottom-up", "top-down"),
    )
    print("\nFor s = l - 2 the bottom-up tree must descend {} levels "
          "before any candidate appears, so it does more work than the "
          "exhaustive greedy; the top-down search starts at the full "
          "layer set and prunes with potential vertex sets "
          "instead.".format(num_layers - 2))

    print("\n=== the auto dispatcher picks the right tool ===")
    for s in (2, num_layers - 1):
        result = search_dccs(graph, d=4, s=s, k=10, method="auto")
        print("  s={:>2d} -> {}".format(s, result.algorithm))


if __name__ == "__main__":
    main()
