"""Story identification in social media (Application 2 of the paper).

Each layer is a snapshot graph of entity co-occurrence at one moment; a
"story" is a group of entities densely associated across several recent
snapshots.  This example generates a stream of snapshots with planted
stories (born and retired over time), then uses DCCS to pull the dominant
stories out — including which time window each story spans, read off the
layer labels of the reported d-CCs.

Run with::

    python examples/story_identification.py
"""

from repro.core import search_dccs
from repro.graph import temporal_snapshots


def main():
    num_snapshots = 12
    graph, planted = temporal_snapshots(
        num_vertices=150,
        num_layers=num_snapshots,
        events_per_layer=4,
        entities_per_event=7,
        churn=0.25,
        seed=42,
        name="tweet-stream",
    )
    print("snapshot stream:", graph)
    durable = [
        (members, window) for members, window in planted
        if window[1] - window[0] + 1 >= 4
    ]
    print("planted stories lasting >= 4 snapshots:", len(durable))

    # A story must recur on at least 4 snapshots with every entity linked
    # to >= 3 others — reject one-off bursts and loose associations.
    d, s, k = 3, 4, 6
    result = search_dccs(graph, d, s, k)
    print("\ntop-{} diversified stories (d={}, s={}):".format(k, d, s))
    for layers, members in zip(result.labels, result.sets):
        window = (min(layers), max(layers))
        print("  snapshots {:>2d}-{:<2d}: {} entities  {}".format(
            window[0], window[1], len(members),
            sorted(members)[:8],
        ))

    # Concurrent stories sharing entities merge into one d-CC (a d-CC is
    # a maximal dense region, not a single cluster), so the natural
    # recovery metric is: how many durable planted stories are entirely
    # inside some reported story?
    recovered = sum(
        1 for story, _ in durable
        if any(set(story) <= members for members in result.sets)
    )
    print("\n{}/{} durable planted stories fully recovered inside a "
          "reported story".format(recovered, len(durable)))
    assert result.sets, "expected at least one story"
    assert recovered >= len(durable) // 2


if __name__ == "__main__":
    main()
