"""Parameter exploration: choosing d and s without guessing.

The DCCS problem takes two structural thresholds — the degree ``d`` and
the support ``s`` — and the paper sweeps them by hand.  This example
shows the workflow a practitioner would actually follow on an unfamiliar
multi-layer graph:

1. profile the layers (density, core sizes, pairwise similarity),
2. read the support histogram to pick ``s``,
3. use the coherent-core *decomposition* to pick ``d`` (the full
   hierarchy in one pass, instead of one d-CC per guess),
4. run the search with the chosen parameters, and
5. export the result for Graphviz rendering.

Run with::

    python examples/parameter_explorer.py
"""

import os
import tempfile

from repro.core import (
    coherent_core_hierarchy,
    densest_coherent_core,
    search_dccs,
    suggest_degree_threshold,
)
from repro.datasets import load
from repro.graph import (
    ascii_layer_summary,
    layer_similarity_matrix,
    recommend_support,
    support_histogram,
    write_dot,
)


def main():
    dataset = load("author", scale=0.6)
    graph = dataset.graph
    print("dataset:", graph)

    print("\n1. layer profile")
    print(ascii_layer_summary(graph, width=30))
    matrix = layer_similarity_matrix(graph)
    off_diagonal = [
        matrix[i][j]
        for i in range(len(matrix)) for j in range(len(matrix))
        if i != j
    ]
    print("mean pairwise layer similarity: {:.3f}".format(
        sum(off_diagonal) / len(off_diagonal)
    ))

    print("\n2. choose s from the support histogram (d = 3)")
    histogram = support_histogram(graph, 3)
    for support in sorted(histogram):
        print("  support {:>2d}: {:>4d} vertices".format(
            support, histogram[support]
        ))
    s = max(2, recommend_support(graph, 3, coverage=0.5))
    print("recommended s:", s)

    print("\n3. choose d from the coherent-core hierarchy on the "
          "densest layer pair")
    layers = [0, 1]
    chain = coherent_core_hierarchy(graph, layers)
    for d in sorted(chain):
        print("  C^{}_L: {:>4d} vertices".format(d, len(chain[d])))
    d_max, innermost = densest_coherent_core(graph, layers)
    print("degeneracy core: d = {}, {} vertices".format(
        d_max, len(innermost)
    ))
    d = suggest_degree_threshold(graph, layers, min_size=10)
    print("chosen d (largest with a >= 10-vertex core):", d)

    print("\n4. search with the chosen parameters")
    result = search_dccs(graph, d=d, s=s, k=5)
    print("{}: {} modules, cover {}".format(
        result.algorithm, len(result.sets), result.cover_size
    ))

    print("\n5. export for Graphviz")
    sub = graph.induced_subgraph(result.cover, name="result")
    classes = {
        "set{}".format(index): members
        for index, members in enumerate(result.sets)
    }
    out = os.path.join(tempfile.gettempdir(), "dccs_result.dot")
    write_dot(sub, out, classes=classes)
    print("wrote", out, "({} bytes)".format(os.path.getsize(out)))
    assert os.path.getsize(out) > 0


if __name__ == "__main__":
    main()
