"""Biological module discovery (Application 1 of the paper).

A protein-protein interaction network whose layers are different
detection methods: a vertex group is a convincing biological module only
if it is densely connected on several layers at once.  This example

1. loads the PPI stand-in dataset (planted complexes as ground truth),
2. finds the top-k diversified d-CCs,
3. measures how many known complexes each approach recovers, and
4. contrasts with the quasi-clique baseline (MiMAG).

Run with::

    python examples/biological_modules.py
"""

from repro.baselines import mimag
from repro.core import search_dccs
from repro.datasets import load
from repro.metrics import (
    complex_recovery_rate,
    f1_score,
    precision,
    recall,
)


def main():
    dataset = load("ppi")
    graph = dataset.graph
    print("PPI stand-in:", graph)
    print("planted complexes (ground truth):", len(dataset.complexes))

    d, s, k = 3, graph.num_layers // 2, 10

    print("\n-- d-coherent cores ({}-CC on >= {} layers) --".format(d, s))
    result = search_dccs(graph, d, s, k, method="bottom-up")
    print("found {} modules covering {} proteins in {:.3f}s".format(
        len(result.sets), result.cover_size, result.elapsed
    ))
    for layers, members in zip(result.labels, result.sets):
        print("  module on layers {}: {} proteins".format(
            layers, len(members)
        ))
    dcc_recovery = complex_recovery_rate(dataset.complexes, result.sets)
    print("complex recovery: {:.1%}".format(dcc_recovery))

    print("\n-- quasi-clique baseline (MiMAG-style, gamma=0.8) --")
    quasi = mimag(
        graph, gamma=0.8, min_size=d + 1, min_support=s,
        node_budget=15000,
    )
    print("found {} diversified quasi-cliques covering {} proteins "
          "in {:.3f}s{}".format(
              len(quasi.clusters), quasi.cover_size, quasi.elapsed,
              " (truncated)" if quasi.truncated else "",
          ))
    quasi_recovery = complex_recovery_rate(dataset.complexes, quasi.clusters)
    print("complex recovery: {:.1%}".format(quasi_recovery))

    print("\n-- agreement between the two notions --")
    print("precision={:.2f} recall={:.2f} f1={:.2f}".format(
        precision(quasi.clusters, result.sets),
        recall(quasi.clusters, result.sets),
        f1_score(quasi.clusters, result.sets),
    ))
    print("\nThe d-CC modules are larger and recover at least as many "
          "complexes — the paper's Fig. 32 conclusion.")
    assert dcc_recovery >= quasi_recovery


if __name__ == "__main__":
    main()
