"""Quickstart: diversified coherent core search in five minutes.

Builds the paper's running example (Fig. 1), computes individual d-CCs,
and runs all three DCCS algorithms, printing what each returns.

Run with::

    python examples/quickstart.py
"""

from repro import search_dccs
from repro.core import coherent_core
from repro.graph import MultiLayerGraph, paper_figure1_graph


def banner(title):
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def build_by_hand():
    """The API in miniature: build a 2-layer graph and peel a d-CC."""
    banner("1. Build a multi-layer graph by hand")
    graph = MultiLayerGraph(2, name="tiny")
    graph.add_edges(0, [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")])
    graph.add_edges(1, [("a", "b"), ("b", "c"), ("a", "c"), ("a", "d")])
    print(graph)

    core = coherent_core(graph, layers=[0, 1], d=2)
    print("2-CC on both layers:", sorted(core))
    # The triangle {a, b, c} is 2-dense on both layers; d only ever has
    # one neighbour per layer, so it is peeled away.
    assert core == frozenset({"a", "b", "c"})


def run_paper_example():
    banner("2. The paper's Fig. 1 example")
    graph = paper_figure1_graph()
    print(graph)

    print("\nPer-layer-pair 3-CCs mentioned in Section II:")
    for layers, label in (((0, 2), "C^3_{1,3}"), ((1, 3), "C^3_{2,4}")):
        core = coherent_core(graph, layers, 3)
        print("  {} = {}".format(label, "".join(sorted(core))))

    print("\nTop-2 diversified 3-CCs on 2 layers, one per algorithm:")
    for method in ("greedy", "bottom-up", "top-down"):
        result = search_dccs(graph, d=3, s=2, k=2, method=method)
        print(
            "  {:>9s}: cover={} sets={} ({} dCC computations)".format(
                method, result.cover_size,
                [len(members) for members in result.sets],
                result.stats.dcc_calls,
            )
        )
        assert result.cover_size == 13


def inspect_result():
    banner("3. Inspecting a result object")
    result = search_dccs(paper_figure1_graph(), d=3, s=2, k=2)
    print("algorithm :", result.algorithm)
    print("params    :", dict(zip("dsk", result.params)))
    print("elapsed   : {:.4f}s".format(result.elapsed))
    for layers, members in zip(result.labels, result.sets):
        print(
            "  layers {} -> {} vertices: {}".format(
                layers, len(members), "".join(sorted(members))
            )
        )


if __name__ == "__main__":
    build_by_hand()
    run_paper_example()
    inspect_result()
    print("\nQuickstart finished.")
