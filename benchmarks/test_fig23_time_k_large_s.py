"""Fig. 23 — execution time vs k at large s (GD vs TD on Wiki, English)."""

from repro.experiments import format_series

from benchmarks._shared import k_rows, record, series_lines


def test_fig23_time_vs_k_large_s(benchmark):
    rows = benchmark.pedantic(
        lambda: k_rows("wiki", True) + k_rows("english", True),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "k", "time_s",
            title="Fig. 23({}) — time vs k (large s) on {}".format(tag, name),
        )
        for tag, name in (("a", "wiki"), ("b", "english"))
    )
    record("fig23_time_k_large_s", text)

    for name in ("wiki", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "k", "time_s"
        )
        # Paper observation 3: the search algorithms are insensitive to k
        # (their pruning depends on |Cov(R)|, which saturates).
        td_times = list(lines["top-down"].values())
        assert max(td_times) < 2.5 * min(td_times)
        # TD stays within a small constant of GD at s = l - 2, where the
        # candidate family is tiny at stand-in scale (see EXPERIMENTS.md).
        assert sum(td_times) < 6.0 * sum(lines["greedy"].values())
