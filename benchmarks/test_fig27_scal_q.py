"""Fig. 27 — scalability vs layer fraction q on Stack.

Paper claims: time grows with ``q`` for every algorithm, and GD-DCCS
grows much faster than the search algorithms (its candidate family is
``binom(l, s)``).
"""

from repro.experiments import format_series

from benchmarks._shared import q_rows, record, series_lines


def test_fig27_time_vs_q(benchmark):
    rows = benchmark.pedantic(q_rows, rounds=1, iterations=1)
    small = [row for row in rows if row["algorithm"] != "top-down"]
    large = [row for row in rows if row["algorithm"] == "top-down"]
    text = "\n\n".join((
        format_series(small, "q", "time_s",
                      title="Fig. 27(a) — time vs q on stack (small s)"),
        format_series(large, "q", "time_s",
                      title="Fig. 27(b) — time vs q on stack (large s)"),
    ))
    record("fig27_scal_q", text)

    lines = series_lines(small, "q", "time_s")
    assert lines["greedy"][1.0] > lines["greedy"][0.2]
    # GD grows faster than BU from q=0.2 to q=1.0.
    gd_growth = lines["greedy"][1.0] / max(lines["greedy"][0.2], 1e-9)
    bu_growth = lines["bottom-up"][1.0] / max(lines["bottom-up"][0.2], 1e-9)
    assert gd_growth > bu_growth
