"""Pytest configuration for the benchmark suite."""

import os
import sys

# Make `import repro` and `import benchmarks._shared` work without install.
_ROOT = os.path.dirname(os.path.dirname(__file__))
for path in (os.path.join(_ROOT, "src"), _ROOT):
    if path not in sys.path:
        sys.path.insert(0, path)
