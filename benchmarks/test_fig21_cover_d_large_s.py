"""Fig. 21 — result cover size vs d at large s (GD vs TD)."""

from repro.experiments import format_series

from benchmarks._shared import d_rows, record, series_lines


def test_fig21_cover_vs_d_large_s(benchmark):
    rows = benchmark.pedantic(
        lambda: d_rows("german", True) + d_rows("english", True),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "d", "cover",
            title="Fig. 21({}) — cover vs d (large s) on {}".format(tag, name),
        )
        for tag, name in (("a", "german"), ("b", "english"))
    )
    record("fig21_cover_d_large_s", text)

    for name in ("german", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "d", "cover"
        )
        for d, cover in lines["top-down"].items():
            assert 4 * cover >= lines["greedy"][d]
