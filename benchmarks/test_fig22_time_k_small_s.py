"""Fig. 22 — execution time vs k at small s (GD vs BU on Wiki, English).

Paper claims: GD's time grows with ``k`` (selection is proportional to
``k``); BU stays faster and roughly insensitive to ``k``.
"""

from repro.experiments import format_series

from benchmarks._shared import k_rows, record, series_lines


def test_fig22_time_vs_k_small_s(benchmark):
    rows = benchmark.pedantic(
        lambda: k_rows("wiki", False) + k_rows("english", False),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "k", "time_s",
            title="Fig. 22({}) — time vs k (small s) on {}".format(tag, name),
        )
        for tag, name in (("a", "wiki"), ("b", "english"))
    )
    record("fig22_time_k_small_s", text)

    for name in ("wiki", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "k", "time_s"
        )
        for k, elapsed in lines["bottom-up"].items():
            assert elapsed < lines["greedy"][k]
