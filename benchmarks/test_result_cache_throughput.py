"""Throughput benchmark for the serving tier's cross-time result cache.

The coalescer (``benchmarks/test_async_throughput.py``) only dedupes
*concurrent* duplicates; this benchmark isolates the cache's own claim —
duplicates separated in time — by driving the workload with sequential
awaits, so no two requests are ever in flight together and coalescing
never fires.  Each repeated spec then either re-runs its search
(``cache_results=False``; the engine's artifact cache still makes the
repeat cheaper than a cold search, which is the honest comparison) or is
served from the result cache for the cost of a lookup and a deep copy.

Recorded to ``benchmarks/results/result_cache.txt``: wall time of the
sequential no-cache pass vs the warm-cache pass over the same request
list, engine search counts behind each, and the throughput ratio.  Two
assertions hold anywhere: warm responses are bitwise identical
request-for-request to the no-cache pass (sets, labels, counters), and
the warm pass executes zero engine searches.  The >= ``SPEEDUP_FLOOR``
wall-time assertion documents the win with margin; on this 1-CPU
pure-Python stack the observed ratio is far above the floor, but the
floor stays conservative for a loaded CI box.
"""

import asyncio
from timeit import timeit

from repro.aio import AsyncDCCHost
from repro.datasets import load

from benchmarks._shared import record

DATASET = "english"
SCALE = 0.18
REPEATS = 8  # each distinct spec is requested this many times

DISTINCT_SPECS = [
    {"graph": "english", "d": 2, "s": 2, "k": 3},
    {"graph": "english", "d": 3, "s": 2, "k": 2},
    {"graph": "english", "d": 2, "s": 3, "k": 3, "method": "greedy"},
    {"graph": "english", "d": 3, "s": 3, "k": 2, "method": "bottom-up"},
]

# A warm hit skips the queue, the dispatcher, three executor round-trips
# and the search itself; demand only a conservative slice of that
# headroom so a loaded CI box stays green.
SPEEDUP_FLOOR = 1.5


def _workload():
    specs = []
    for _ in range(REPEATS):
        specs.extend(dict(spec) for spec in DISTINCT_SPECS)
    return specs


def _drive_sequentially(host, specs):
    """Await the specs one at a time: nothing is ever in flight
    together, so the coalescer cannot contribute to the measurement."""

    async def drive():
        results = []
        for spec in specs:
            entry = dict(spec)
            name = entry.pop("graph")
            results.append(await host.search(
                name, entry.pop("d"), entry.pop("s"), entry.pop("k"),
                method=entry.pop("method", "auto"), **entry,
            ))
        return results

    return asyncio.run(drive())


def test_result_cache_throughput(benchmark):
    graph = load(DATASET, scale=SCALE, seed=0).graph
    specs = _workload()
    measured = {}

    def run_both():
        uncached_host = AsyncDCCHost(jobs=1, cache_results=False)
        uncached_host.attach("english", graph)
        try:
            measured["uncached_s"] = timeit(
                lambda: measured.__setitem__(
                    "uncached_results",
                    _drive_sequentially(uncached_host, specs),
                ),
                number=1,
            )
            info = uncached_host.info()
            measured["uncached_searches"] = info["host"]["searches_served"]
            assert info["requests_coalesced"] == 0  # driver really is serial
        finally:
            asyncio.run(uncached_host.aclose())

        cached_host = AsyncDCCHost(jobs=1)
        cached_host.attach("english", graph)
        try:
            # Populate with one pass over the distinct specs (cold, paid
            # outside the measurement), then time the full workload warm.
            _drive_sequentially(cached_host, DISTINCT_SPECS)
            searches_before = cached_host.info()["host"]["searches_served"]
            measured["warm_s"] = timeit(
                lambda: measured.__setitem__(
                    "warm_results",
                    _drive_sequentially(cached_host, specs),
                ),
                number=1,
            )
            info = cached_host.info()
            measured["warm_searches"] = \
                info["host"]["searches_served"] - searches_before
            measured["cache_hits"] = info["result_cache"]["hits"]
        finally:
            asyncio.run(cached_host.aclose())
        return measured

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    for got, want in zip(measured["warm_results"],
                         measured["uncached_results"]):
        assert got.sets == want.sets
        assert got.labels == want.labels
        assert got.stats.as_dict() == want.stats.as_dict()

    # The warm pass is served entirely across time: zero engine
    # searches, every request a cache hit.
    assert measured["uncached_searches"] == len(specs)
    assert measured["warm_searches"] == 0
    assert measured["cache_hits"] >= len(specs)

    ratio = measured["uncached_s"] / measured["warm_s"]
    lines = [
        "Cross-time result cache throughput — repeated specs on {} "
        "stand-in (scale {})".format(DATASET, SCALE),
        "{} requests = {} distinct specs x {} repeats, sequential "
        "awaits (no coalescing), jobs=1, 1 graph".format(
            len(specs), len(DISTINCT_SPECS), REPEATS),
        "",
        "{:>28s}  {:>10s}  {:>16s}".format(
            "mode", "time_s", "engine searches"),
        "{:>28s}  {:>10.3f}  {:>16d}".format(
            "no result cache", measured["uncached_s"],
            measured["uncached_searches"]),
        "{:>28s}  {:>10.3f}  {:>16d}".format(
            "warm result cache", measured["warm_s"],
            measured["warm_searches"]),
        "",
        "cache hits served: {}".format(measured["cache_hits"]),
        "throughput ratio (no-cache/warm): {:.2f}x "
        "(floor asserted: {}x)".format(ratio, SPEEDUP_FLOOR),
        "results bitwise identical request-for-request: yes",
        "caveat: single CPU, pure Python; the no-cache pass already "
        "benefits from the engine's artifact cache, so the ratio "
        "understates the win over truly cold repeats",
    ]
    record("result_cache", "\n".join(lines))

    assert ratio >= SPEEDUP_FLOOR, (
        "warm result cache only {:.2f}x faster than the uncached "
        "sequential pass (floor {}x)".format(ratio, SPEEDUP_FLOOR)
    )
