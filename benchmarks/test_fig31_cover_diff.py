"""Fig. 31 — cover difference classes on Author (red/green/blue).

The paper's drawing becomes numbers: sizes of the three vertex classes
and their average within-class degree.  Claims: the d-CC-only (green)
vertices are densely connected; the quasi-clique-only (blue) vertices are
sparse by comparison.
"""

from benchmarks._shared import fig31_payload, record


def test_fig31_cover_difference(benchmark):
    payload = benchmark.pedantic(fig31_payload, rounds=1, iterations=1)
    lines = [
        "Fig. 31 — cover difference on {} (d={})".format(
            payload["dataset"], payload["d"]
        ),
        "both (red): {}   only d-CC (green): {}   only quasi (blue): {}".format(
            payload["both"], payload["only_dcc"], payload["only_quasi"]
        ),
        "avg within-class degree: " + ", ".join(
            "{}={:.2f}".format(key, value)
            for key, value in sorted(payload["densities"].items())
        ),
    ]
    record("fig31_cover_diff", "\n".join(lines))

    assert payload["both"] > 0
    densities = payload["densities"]
    if payload["only_dcc"] and payload["only_quasi"]:
        assert densities["only_dcc"] >= densities["only_quasi"]
