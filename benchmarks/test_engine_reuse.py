"""Session amortisation benchmark: cold one-shots vs one warm engine.

The workload the engine was built for is many small searches over one
graph — exactly where the one-shot path hurts most, because every
``search_dccs(..., jobs=N)`` call pays pool spawn, graph shipping and
preprocessing from scratch.  This benchmark runs the same 16 parallel
queries both ways on the quickstart dataset (the paper's Fig. 1 graph)
and records cold vs amortised per-query latency for jobs ∈ {1, 2} under
``benchmarks/results/engine_reuse.txt``.

Two assertions always hold, on any machine:

* results are bitwise identical (sets, labels, counters) between the
  one-shot calls, ``engine.search`` and ``engine.search_many``;
* at jobs=2 the warm engine completes the 16 queries in at most half
  the one-shot wall clock.  Unlike the parallel-scaling target this is
  safe to enforce even on a single-CPU host: the engine *removes* 15
  pool spawns and 16 preprocessing passes rather than betting on
  physical parallelism, and the margin is typically far above 2x.

A second report records the scratch-arena effect on the frozen peel
kernels in isolation (``peel_scratch.txt``): the same d-CC peel with
per-call allocation vs engine-owned buffer reuse.
"""

from time import perf_counter

from repro.core.api import search_dccs
from repro.engine import DCCEngine
from repro.graph import paper_figure1_graph
from repro.graph.frozen import ScratchArena, frozen_coherent_core

from benchmarks._shared import record

QUERIES = 16
D, S, K = 3, 2, 2
JOBS = (1, 2)
AMORTISATION_TARGET = 2.0


def _check_identical(base, results, context):
    for result in results:
        assert result.sets == base.sets, context
        assert result.labels == base.labels, context
        assert result.stats.as_dict() == base.stats.as_dict(), context


def test_engine_reuse_report(benchmark):
    graph = paper_figure1_graph()
    timings = {}
    outputs = {}

    def run_all():
        # Best of two rounds per mode: one-shot wall clocks on a shared
        # machine are noisy, and a spuriously slow cold baseline would
        # flatter the amortisation exactly as much as a slow warm run
        # would damn it.
        for jobs in JOBS:
            for mode in ("one-shot", "engine", "batch"):
                best = None
                for _ in range(2):
                    start = perf_counter()
                    if mode == "one-shot":
                        results = [
                            search_dccs(graph, D, S, K, method="greedy",
                                        jobs=jobs)
                            for _ in range(QUERIES)
                        ]
                    elif mode == "engine":
                        with DCCEngine(graph, jobs=jobs) as engine:
                            results = [
                                engine.search(D, S, K, method="greedy")
                                for _ in range(QUERIES)
                            ]
                    else:
                        with DCCEngine(graph, jobs=jobs) as engine:
                            results = engine.search_many([
                                {"d": D, "s": S, "k": K,
                                 "method": "greedy"}
                            ] * QUERIES)
                    elapsed = perf_counter() - start
                    best = elapsed if best is None else min(best, elapsed)
                    outputs[(jobs, mode)] = results
                timings[(jobs, mode)] = best
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    base = outputs[(1, "one-shot")][0]
    for key, results in outputs.items():
        _check_identical(base, results, key)

    lines = [
        "Engine reuse — {} repeated greedy searches on the quickstart "
        "dataset (figure1, d={}, s={}, k={})".format(QUERIES, D, S, K),
        "one-shot = {} independent search_dccs(..., jobs=N) calls "
        "(pool spawn + preprocessing per call)".format(QUERIES),
        "engine   = one DCCEngine serving all {} (spawn + artifacts "
        "amortised); batch = engine.search_many".format(QUERIES),
        "",
        "{:>5s}  {:>14s}  {:>14s}  {:>14s}  {:>12s}".format(
            "jobs", "one-shot (s)", "engine (s)", "batch (s)",
            "amortisation",
        ),
    ]
    for jobs in JOBS:
        cold = timings[(jobs, "one-shot")]
        warm = timings[(jobs, "engine")]
        batch = timings[(jobs, "batch")]
        lines.append(
            "{:>5d}  {:>14.3f}  {:>14.3f}  {:>14.3f}  {:>11.2f}x".format(
                jobs, cold, warm, batch, cold / warm
            )
        )
    lines.append("")
    lines.append(
        "per-query amortised latency at jobs=2: {:.1f} ms warm vs "
        "{:.1f} ms cold".format(
            1000 * timings[(2, "engine")] / QUERIES,
            1000 * timings[(2, "one-shot")] / QUERIES,
        )
    )
    ratio = timings[(2, "one-shot")] / timings[(2, "engine")]
    lines.append(
        "results bitwise identical across all modes and jobs: yes "
        "(sets, labels, counters)"
    )
    lines.append(
        "amortisation target >= {}x at jobs=2: {} ({:.2f}x)".format(
            AMORTISATION_TARGET,
            "met" if ratio >= AMORTISATION_TARGET else "MISSED", ratio,
        )
    )
    record("engine_reuse", "\n".join(lines))

    assert ratio >= AMORTISATION_TARGET, (
        "warm engine amortisation {:.2f}x below the {}x target".format(
            ratio, AMORTISATION_TARGET
        )
    )


def test_peel_scratch_report(benchmark):
    # A 100k-vertex synthetic graph: the original english stand-in (525
    # vertices) was too small for the arena's O(n) buffer recycling to
    # rise above timer noise (the old report read 1.00x).  The arena is
    # a python-tier mechanism — the numpy kernels never touch it — so
    # the tier is pinned to keep the comparison about buffer reuse.
    from repro.datasets import synthetic_multilayer

    graph = synthetic_multilayer(
        100_000, num_layers=3, num_communities=40, community_size=80,
        d=4, span=2, seed=11, name="peel-scratch",
    ).graph
    graph.set_kernel("python")
    layers = tuple(range(min(3, graph.num_layers)))
    rounds = 10

    def alloc_per_call():
        for _ in range(rounds):
            frozen_coherent_core(graph, layers, 3)

    def arena_reuse():
        arena = ScratchArena()
        with arena:
            for _ in range(rounds):
                frozen_coherent_core(graph, layers, 3)
        return arena

    def run_both():
        timings = {}
        for name, fn in (("alloc", alloc_per_call), ("arena", arena_reuse)):
            best = None
            for _ in range(2):
                start = perf_counter()
                fn()
                elapsed = perf_counter() - start
                best = elapsed if best is None else min(best, elapsed)
            timings[name] = best
        return timings

    timings = benchmark.pedantic(run_both, rounds=1, iterations=1)

    base = frozen_coherent_core(graph, layers, 3)
    arena = ScratchArena()
    with arena:
        assert frozen_coherent_core(graph, layers, 3) == base
    assert arena.reuses == 0  # first call populates, later calls reuse

    lines = [
        "Frozen peel scratch reuse — {} x frozen_coherent_core on a "
        "synthetic planted-d-CC graph ({} vertices, layers {}, d=3, "
        "python kernel tier pinned — the arena is a python-tier "
        "mechanism)".format(rounds, graph.num_vertices, list(layers)),
        "",
        "{:<22s}  {:>10s}  {:>12s}".format("variant", "time_s",
                                           "per-call ms"),
        "{:<22s}  {:>10.3f}  {:>12.3f}".format(
            "allocate per call", timings["alloc"],
            1000 * timings["alloc"] / rounds),
        "{:<22s}  {:>10.3f}  {:>12.3f}".format(
            "engine scratch arena", timings["arena"],
            1000 * timings["arena"] / rounds),
        "",
        "speedup from buffer reuse: {:.2f}x "
        "(results identical; the arena recycles the O(n) alive/queued "
        "flags and per-layer degree rows)".format(
            timings["alloc"] / timings["arena"]
        ),
    ]
    record("peel_scratch", "\n".join(lines))
