"""Shard-scale benchmark: one 500k-vertex graph served whole vs cut.

The acceptance scenario for the sharded execution pipeline
(:mod:`repro.shard`), measured honestly at scale:

* the seeded 500k-vertex :func:`synthetic_multilayer` graph is searched
  by all three methods through an unsharded :class:`DCCEngine`, a
  2-shard and a 4-shard :class:`ShardedEngine`;
* every sharded result — sets, labels, cover and the full counter
  dict — is asserted bitwise identical to the unsharded run, in the
  same process, on the same graph;
* the 4-shard leg runs through a :class:`DCCHost` whose memory budget
  is *smaller than the graph's frozen bytes*: per-shard admission
  (``budget_bytes()`` charges the largest single shard) is what lets
  the over-budget graph be admitted and served at all.

The recorded table is the latency picture, not a speed claim: the
distributed scatter/gather peel is pure Python while the unsharded
engine peels through the numpy kernel tier when available, so sharding
buys *memory admission*, and this file records what it costs.
"""

from time import perf_counter

from repro.datasets import synthetic_multilayer
from repro.engine import DCCEngine
from repro.host import DCCHost
from repro.shard import ShardedEngine

from benchmarks._shared import record

NUM_VERTICES = 500_000
D, S, K = 4, 2, 4
METHODS = ("greedy", "bottom-up", "top-down")
BUDGET_FRACTION = 0.5


def _graph():
    return synthetic_multilayer(
        NUM_VERTICES,
        num_layers=3,
        num_communities=200,
        community_size=80,
        d=D,
        span=2,
        noise_degree=2.0,
        seed=11,
        name="shard-scale",
    ).graph


def _identical(first, second):
    return (
        first.sets == second.sets
        and first.labels == second.labels
        and first.cover_size == second.cover_size
        and first.stats.as_dict() == second.stats.as_dict()
    )


def test_shard_scale_report(benchmark):
    state = {}

    def run_all():
        start = perf_counter()
        graph = _graph()
        state["build_s"] = perf_counter() - start
        state["graph_bytes"] = graph.memory_bytes()
        timings = {method: {} for method in METHODS}
        reference = {}
        with DCCEngine(graph, jobs=1) as engine:
            for method in METHODS:
                start = perf_counter()
                reference[method] = engine.search(D, S, K, method=method)
                timings[method]["unsharded"] = perf_counter() - start
        with ShardedEngine(graph, shards=2, jobs=1) as engine:
            for method in METHODS:
                start = perf_counter()
                result = engine.search(D, S, K, method=method)
                timings[method]["2 shards"] = perf_counter() - start
                assert _identical(result, reference[method]), method
        # The 4-shard leg is the admission story: a host budgeted below
        # the graph's own frozen bytes admits it anyway, because a
        # sharded session is charged for its largest shard only.
        budget = int(state["graph_bytes"] * BUDGET_FRACTION)
        with DCCHost(memory_budget_bytes=budget, jobs=1) as host:
            host.attach("big", graph, shards=4)
            engine = host.engine("big")
            state["budget"] = budget
            state["admission_charge"] = engine.budget_bytes()
            assert state["admission_charge"] <= budget
            assert state["graph_bytes"] > budget
            for method in METHODS:
                start = perf_counter()
                result = host.search("big", D, S, K, method=method)
                timings[method]["4 shards (hosted)"] = \
                    perf_counter() - start
                assert _identical(result, reference[method]), method
            assert host.resident() == ("big",)
            assert host.evictions == 0
        state["cover"] = reference["greedy"].cover_size
        state["timings"] = timings
        return state

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    columns = ("unsharded", "2 shards", "4 shards (hosted)")
    lines = [
        "Shard scale — one {:,}-vertex synthetic_multilayer graph "
        "(3 layers, 200 planted communities, d={}, seed 11) served "
        "whole vs partitioned".format(NUM_VERTICES, D),
        "",
        "build: {:.1f} s, frozen CSR {:,} bytes; queries are "
        "(d={}, s={}, k={}), greedy cover {}".format(
            state["build_s"], state["graph_bytes"], D, S, K,
            state["cover"]),
        "",
        "{:<12s}  {:>11s}  {:>11s}  {:>18s}".format(
            "method", *columns),
    ]
    for method in METHODS:
        lines.append("{:<12s}  {:>9.3f} s  {:>9.3f} s  {:>16.3f} s".format(
            method, *(state["timings"][method][col] for col in columns)))
    lines += [
        "",
        "bitwise-identical sets/labels/cover/stats asserted per method "
        "and shard count in this run: yes",
        "host admission: memory_budget_bytes {:,} < graph bytes {:,}; "
        "admission charge (largest shard) {:,} — admitted and served "
        "with 0 evictions".format(
            state["budget"], state["graph_bytes"],
            state["admission_charge"]),
        "note: the distributed peel is pure Python; the unsharded "
        "column uses the numpy kernel tier when available.  Sharding "
        "buys admission of graphs no single engine may hold, at the "
        "latency recorded above.",
    ]
    record("shard_scale", "\n".join(lines))

    assert state["graph_bytes"] > state["budget"]
    assert state["admission_charge"] <= state["budget"]
