"""Fig. 19 — execution time vs d at large s (GD vs TD on German, English)."""

from repro.experiments import format_series

from benchmarks._shared import d_rows, record, series_lines


def test_fig19_time_vs_d_large_s(benchmark):
    rows = benchmark.pedantic(
        lambda: d_rows("german", True) + d_rows("english", True),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "d", "time_s",
            title="Fig. 19({}) — time vs d (large s) on {}".format(tag, name),
        )
        for tag, name in (("a", "german"), ("b", "english"))
    )
    record("fig19_time_d_large_s", text)

    for name in ("german", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "d", "time_s"
        )
        # At s = l - 2 the candidate family is only binom(l, 2), so at
        # stand-in scale GD's per-candidate cost no longer dominates and
        # TD's fixed index cost shows (see EXPERIMENTS.md); the robust
        # claims here are the d-trend and that TD stays competitive.
        td_total = sum(lines["top-down"].values())
        gd_total = sum(lines["greedy"].values())
        assert td_total < 3.0 * gd_total
        # Time at d = 6 does not exceed time at d = 2 by much for TD
        # (cores shrink with d).
        assert lines["top-down"][6] < 1.5 * lines["top-down"][2]
