"""Fig. 28 — effects of the preprocessing methods (No-VD/No-SL/No-IR/No-Pre).

Paper claim: every preprocessing method improves BU-DCCS (small s) and
TD-DCCS (large s); disabling all of them is the slowest configuration.
"""

from repro.experiments import format_table

from benchmarks._shared import preprocessing_rows, record


def test_fig28_preprocessing_ablation(benchmark):
    rows = benchmark.pedantic(preprocessing_rows, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["dataset", "method", "s", "variant", "time_s", "cover",
         "dcc_calls"],
        title="Fig. 28 — preprocessing ablation",
    )
    record("fig28_preprocessing", text)

    # Full preprocessing should not lose to the all-off variant on the
    # sum over datasets/regimes (individual points can be noisy).
    full_time = sum(r["time_s"] for r in rows if r["variant"] == "full")
    nopre_time = sum(r["time_s"] for r in rows if r["variant"] == "No-Pre")
    assert full_time < nopre_time
