"""Fig. 15 — execution time vs large s (GD vs BU vs TD).

Paper claims: (1) time decreases as ``s`` approaches ``l``; (2) BU-DCCS
degrades for large ``s`` (sometimes worse than GD); (3) TD-DCCS is the
fastest in this regime.
"""

from repro.experiments import format_series

from benchmarks._shared import large_s_rows, record, series_lines


def test_fig15_time_vs_large_s(benchmark):
    rows = benchmark.pedantic(
        lambda: large_s_rows("english") + large_s_rows("stack"),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "s", "time_s",
            title="Fig. 15({}) — time vs large s on {}".format(tag, name),
        )
        for tag, name in (("a", "english"), ("b", "stack"))
    )
    record("fig15_time_large_s", text)

    for name in ("english", "stack"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "s", "time_s"
        )
        s_values = sorted(lines["greedy"])
        first, last = s_values[0], s_values[-1]
        # Paper observation 1: time decreases as s grows towards l.
        assert lines["greedy"][last] < lines["greedy"][first]
        # Paper observation 3: TD-DCCS beats GD-DCCS decisively where the
        # candidate family is still large (the left edge, s = l - 4 — the
        # paper's "50X faster" point).
        assert lines["top-down"][first] < 0.5 * lines["greedy"][first]
        # Paper observation 2: BU loses its edge at the far right — at
        # s = l it is no longer meaningfully faster than greedy.
        assert lines["bottom-up"][last] > 0.5 * lines["greedy"][last]
