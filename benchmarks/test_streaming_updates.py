"""Streaming-update throughput: delta rebind vs rebind-the-world.

The workload is the one the delta machinery was built for: a persistent
engine serving a stream of small mutation batches, each followed by a
query, where every batch touches a single hot layer of a many-layer
graph.  Two implementations answer the identical stream:

* **rebind-the-world** — the pre-delta serving story: every batch
  re-ships the graph (``graph.copy()``), rebuilds the CSR freeze from
  scratch and recomputes every per-layer artifact cold, exactly what a
  fresh ``DCCEngine`` per mutation does;
* **delta rebind** — one persistent engine; each batch lands through
  ``apply_delta`` and the next query patches the session in place
  (selective CSR re-freeze of the touched layer, artifact cache entries
  for the other layers kept, patch-vs-rebuild counters ticking).

Both streams must produce bitwise-identical answers per batch (sets,
labels, counters) — the speedup is only admissible because nothing
observable changes.  The report under
``benchmarks/results/streaming.txt`` records per-batch latency, stream
throughput and the engine's selective-invalidation counters; the
acceptance assertion is a >= 2x throughput ratio, which holds even on a
single-CPU host because the delta path *removes* work (7 of 8 layer
freezes, 7 of 8 layer-core recomputes) rather than betting on
parallelism.
"""

import random
from time import perf_counter

from repro.engine import DCCEngine
from repro.graph import MultiLayerGraph

from benchmarks._shared import record

N, LAYERS, P = 800, 8, 0.015
BATCHES = 12
BATCH_EDGES = 4
HOT_LAYER = 0
QUERY = dict(d=2, s=2, k=2, method="greedy")
THROUGHPUT_TARGET = 2.0


def build_graph(seed=7):
    rng = random.Random(seed)
    graph = MultiLayerGraph(LAYERS, vertices=range(N))
    for layer in range(LAYERS):
        for u in range(N):
            for v in range(u + 1, N):
                if rng.random() < P:
                    graph.add_edge(layer, u, v)
    return graph


def build_batches(graph, seed=23):
    """A deterministic update script, every batch touching the hot layer.

    Generated against a rolling scratch copy so each batch is valid
    (removes existing edges, adds missing ones) no matter which run
    replays it.
    """
    rng = random.Random(seed)
    scratch = graph.copy()
    vertices = sorted(scratch.vertices())
    batches = []
    for _ in range(BATCHES):
        add, remove, seen = [], [], set()
        while len(add) + len(remove) < BATCH_EDGES:
            u, v = rng.sample(vertices, 2)
            key = (min(u, v), max(u, v))
            if key in seen:
                continue
            seen.add(key)
            if scratch.has_edge(HOT_LAYER, u, v):
                remove.append((HOT_LAYER, u, v))
            else:
                add.append((HOT_LAYER, u, v))
        scratch.apply_delta(add=add, remove=remove)
        batches.append((add, remove))
    return batches


def run_rebind_the_world(graph, batches):
    """Fresh copy + fresh engine per batch: the pre-delta serving cost."""
    results = []
    start = perf_counter()
    for add, remove in batches:
        graph.apply_delta(add=add, remove=remove)
        with DCCEngine(graph.copy(), backend="frozen", jobs=1) as engine:
            results.append(engine.search(**QUERY))
    return perf_counter() - start, results


def run_delta_stream(graph, batches):
    """One persistent engine; updates land as deltas, rebinds patch."""
    results = []
    start = perf_counter()
    with DCCEngine(graph, backend="frozen", jobs=1) as engine:
        engine.search(**QUERY)  # initial bind, part of the stream cost
        for add, remove in batches:
            graph.apply_delta(add=add, remove=remove)
            results.append(engine.search(**QUERY))
        elapsed = perf_counter() - start
        status = engine.info()
    return elapsed, results, status


def test_streaming_throughput_report(benchmark):
    base = build_graph()
    batches = build_batches(base)
    outputs = {}

    def run_both():
        timings = {}
        for mode in ("world", "delta"):
            best = None
            for _ in range(2):
                if mode == "world":
                    elapsed, results = run_rebind_the_world(
                        build_graph(), batches
                    )
                else:
                    elapsed, results, status = run_delta_stream(
                        build_graph(), batches
                    )
                    outputs["status"] = status
                best = elapsed if best is None else min(best, elapsed)
                outputs[mode] = results
            timings[mode] = best
        return timings

    timings = benchmark.pedantic(run_both, rounds=1, iterations=1)

    for index, (first, second) in enumerate(
        zip(outputs["world"], outputs["delta"])
    ):
        context = "batch {}".format(index)
        assert first.sets == second.sets, context
        assert first.labels == second.labels, context
        assert first.stats.as_dict() == second.stats.as_dict(), context

    status = outputs["status"]
    assert status["rebinds_patched"] == BATCHES
    assert status["rebinds_full"] == 0
    assert status["cache_layer_core_hits"] > 0
    assert status["cache_invalidations_kept"] > 0

    ratio = timings["world"] / timings["delta"]
    lines = [
        "Streaming updates — {} update batches ({} edges each, all on "
        "layer {}) interleaved with greedy queries (d={}, s={}, k={}) "
        "over a {}-vertex, {}-layer random graph".format(
            BATCHES, BATCH_EDGES, HOT_LAYER, QUERY["d"], QUERY["s"],
            QUERY["k"], N, LAYERS),
        "rebind-the-world = per batch: re-ship graph (copy), rebuild "
        "CSR freeze, recompute all artifacts cold (fresh DCCEngine)",
        "delta rebind     = one persistent engine; apply_delta + "
        "patched rebind (hot layer re-frozen, other layers' artifacts "
        "kept)",
        "",
        "{:<18s}  {:>10s}  {:>14s}  {:>14s}".format(
            "mode", "time_s", "per-batch ms", "batches/s"),
        "{:<18s}  {:>10.3f}  {:>14.2f}  {:>14.2f}".format(
            "rebind-the-world", timings["world"],
            1000 * timings["world"] / BATCHES,
            BATCHES / timings["world"]),
        "{:<18s}  {:>10.3f}  {:>14.2f}  {:>14.2f}".format(
            "delta rebind", timings["delta"],
            1000 * timings["delta"] / BATCHES,
            BATCHES / timings["delta"]),
        "",
        "engine counters over the delta stream: rebinds {} patched / "
        "{} full; layer-core artifacts {} hits / {} misses; "
        "invalidation kept {} / dropped {} entries; freeze {} patches "
        "/ {} rebuilds".format(
            status["rebinds_patched"], status["rebinds_full"],
            status["cache_layer_core_hits"],
            status["cache_layer_core_misses"],
            status["cache_invalidations_kept"],
            status["cache_invalidations_dropped"],
            status["freeze_patches"], status["freeze_rebuilds"]),
        "results bitwise identical per batch across both modes: yes "
        "(sets, labels, counters)",
        "throughput target >= {}x: {} ({:.2f}x)".format(
            THROUGHPUT_TARGET,
            "met" if ratio >= THROUGHPUT_TARGET else "MISSED", ratio),
    ]
    record("streaming", "\n".join(lines))

    assert ratio >= THROUGHPUT_TARGET, (
        "delta-stream throughput {:.2f}x below the {}x target".format(
            ratio, THROUGHPUT_TARGET
        )
    )
