"""Kernel-tier benchmark: python vs numpy peel kernels at 100k–1M vertices.

The proving ground ROADMAP item 3 asked for.  The synthetic generator
(:func:`repro.datasets.synthetic_multilayer`) plants circulant d-CC
communities in power-law noise and assembles the frozen CSR directly, so
graph sizes the dict backend could never reach (10^5–10^6 vertices) are
cheap to build; on those graphs the two kernel tiers run the same
induced-degree/peel primitives and this module records the honest ratio
to ``benchmarks/results/kernel_speedup.txt``.

Two always-on assertions (whenever numpy is importable — without it the
whole module skips, and the rest of the suite proves the fallback):

* both tiers return bitwise-identical values for every primitive, on
  the same graph in the same run;
* the numpy tier is at least :data:`SPEEDUP_TARGET` (3x) faster on the
  combined induced-degree/peel microbench at 100k vertices.

The full-graph ``induced_degrees`` row is reported but excluded from the
target: its cost is building a 100k-entry python dict, which both tiers
pay identically — the ratio there measures dict construction, not kernel
arithmetic.

A separate test proves the million-vertex acceptance end to end: the
seeded 1M-vertex build stays in bounded memory and ``search_dccs``
recovers every planted community through the numpy tier.
"""

from time import perf_counter

import pytest

from repro.core.api import search_dccs
from repro.core.dcore import layer_core_decomposition
from repro.datasets import synthetic_multilayer
from repro.graph.frozen import frozen_coherent_core, frozen_layer_core

from benchmarks._shared import record

pytest.importorskip(
    "numpy", reason="kernel speedup needs the numpy tier; the no-numpy "
    "leg proves the fallback elsewhere"
)

SPEEDUP_TARGET = 3.0
SIZES = (100_000, 500_000)
D = 4


def _graph_for(num_vertices):
    return synthetic_multilayer(
        num_vertices,
        num_layers=3,
        num_communities=num_vertices // 2500,
        community_size=80,
        d=D,
        span=2,
        noise_degree=2.0,
        seed=11,
        name="kernel-bench-{}".format(num_vertices),
    ).graph


def _primitives(graph):
    """The microbench: label -> (callable, counts toward the target?)."""
    n = graph.num_vertices
    subset = list(range(0, n, 2))
    return [
        ("induced_degrees full", lambda: graph.induced_degrees(0, None),
         False),
        ("induced_degrees n/2", lambda: graph.induced_degrees(0, subset),
         True),
        ("layer_core", lambda: frozen_layer_core(graph, 0, D), True),
        ("coherent_core", lambda: frozen_coherent_core(graph, (0, 1), D),
         True),
        ("core_decomposition", lambda: layer_core_decomposition(graph, 0),
         True),
    ]


def _bench(fn, reps=2):
    best, out = None, None
    for _ in range(reps):
        start = perf_counter()
        out = fn()
        elapsed = perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, out


def test_kernel_speedup_report(benchmark):
    tables = {}

    def run_all():
        for size in SIZES:
            graph = _graph_for(size)
            rows = []
            for label, fn, counted in _primitives(graph):
                graph.set_kernel("numpy")
                numpy_s, numpy_out = _bench(fn)
                graph.set_kernel("python")
                python_s, python_out = _bench(fn)
                # Bitwise equality asserted in the same run, on the same
                # graph, for every primitive — the numbers below are
                # only comparable because the outputs are identical.
                assert numpy_out == python_out, label
                rows.append((label, python_s, numpy_s, counted))
            tables[size] = rows
        return tables

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    lines = [
        "Kernel tier — pure-Python vs numpy peel kernels on the "
        "synthetic planted-d-CC graph (3 layers, d={}, span 2, "
        "power-law noise, seed 11)".format(D),
        "microbench: induced degrees (full graph and an n/2 subset), "
        "d-core peel, (d,2)-coherent core, full core decomposition",
        "",
    ]
    ratios = {}
    for size, rows in tables.items():
        lines.append("{:,} vertices:".format(size))
        lines.append("{:<22s}  {:>11s}  {:>11s}  {:>8s}".format(
            "primitive", "python (s)", "numpy (s)", "speedup"))
        counted_python = counted_numpy = 0.0
        for label, python_s, numpy_s, counted in rows:
            lines.append("{:<22s}  {:>11.4f}  {:>11.4f}  {:>7.1f}x{}".format(
                label, python_s, numpy_s, python_s / numpy_s,
                "" if counted else "  (dict-bound, informational)",
            ))
            if counted:
                counted_python += python_s
                counted_numpy += numpy_s
        ratios[size] = counted_python / counted_numpy
        lines.append("{:<22s}  {:>11.4f}  {:>11.4f}  {:>7.1f}x".format(
            "combined (counted)", counted_python, counted_numpy,
            ratios[size]))
        lines.append("")
    lines.append(
        "bitwise-identical outputs asserted per primitive in this run: yes"
    )
    lines.append(
        "speedup target >= {}x at 100,000 vertices: {} ({:.1f}x)".format(
            SPEEDUP_TARGET,
            "met" if ratios[100_000] >= SPEEDUP_TARGET else "MISSED",
            ratios[100_000],
        )
    )
    record("kernel_speedup", "\n".join(lines))

    assert ratios[100_000] >= SPEEDUP_TARGET, (
        "numpy kernel speedup {:.2f}x below the {}x target at 100k "
        "vertices".format(ratios[100_000], SPEEDUP_TARGET)
    )


def test_million_vertex_recovery(benchmark):
    """The 1M-vertex acceptance: bounded build, full planted recovery."""
    stats = {}

    def build_and_search():
        start = perf_counter()
        dataset = synthetic_multilayer(
            1_000_000, num_layers=3, num_communities=200,
            community_size=100, d=D, span=2, seed=3, name="million",
        )
        stats["build_s"] = perf_counter() - start
        graph = dataset.graph
        stats["memory_mb"] = graph.memory_bytes() / (1024 * 1024)
        stats["edges"] = sum(
            graph.num_edges(layer) for layer in graph.layers()
        )
        start = perf_counter()
        result = search_dccs(graph, d=D, s=2, k=4, method="greedy")
        stats["search_s"] = perf_counter() - start
        reported = [set(members) for members in result.sets]
        stats["recovered"] = sum(
            1 for community in dataset.communities
            if any(community <= found for found in reported)
        )
        stats["planted"] = len(dataset.communities)
        return stats

    benchmark.pedantic(build_and_search, rounds=1, iterations=1)

    record("kernel_million", "\n".join([
        "Million-vertex proving ground — synthetic_multilayer(1_000_000, "
        "3 layers, 200 planted communities, d={}, seed 3)".format(D),
        "",
        "build: {:.1f} s, {:,} edges, {:.0f} MB resident CSR".format(
            stats["build_s"], stats["edges"], stats["memory_mb"]),
        "greedy search_dccs(d={}, s=2, k=4): {:.1f} s".format(
            D, stats["search_s"]),
        "planted communities recovered inside reported d-CCs: "
        "{}/{}".format(stats["recovered"], stats["planted"]),
    ]))

    assert stats["recovered"] == stats["planted"], stats
    assert stats["memory_mb"] < 512, "CSR blew the bounded-memory claim"
