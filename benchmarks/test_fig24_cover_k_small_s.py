"""Fig. 24 — result cover size vs k at small s.

Paper claim: the cover grows with ``k`` but saturates (d-CCs overlap a
lot — the reason diversification matters).
"""

from repro.experiments import format_series

from benchmarks._shared import k_rows, record, series_lines


def test_fig24_cover_vs_k_small_s(benchmark):
    rows = benchmark.pedantic(
        lambda: k_rows("wiki", False) + k_rows("english", False),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "k", "cover",
            title="Fig. 24({}) — cover vs k (small s) on {}".format(tag, name),
        )
        for tag, name in (("a", "wiki"), ("b", "english"))
    )
    record("fig24_cover_k_small_s", text)

    for name in ("wiki", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "k", "cover"
        )
        greedy = [lines["greedy"][k] for k in sorted(lines["greedy"])]
        # Non-decreasing in k for the exhaustive greedy selection.
        assert all(a <= b for a, b in zip(greedy, greedy[1:]))
