"""Fig. 29 — MiMAG vs BU-DCCS on PPI and Author.

Paper claims: (1) BU-DCCS is much faster than MiMAG (its search tree has
2^l nodes, MiMAG's 2^|V|); (2) the covers overlap strongly (P/R/F1 high);
(3) BU-DCCS covers more vertices.
"""

from repro.experiments import format_table

from benchmarks._shared import fig29_rows, record


def test_fig29_mimag_vs_bu(benchmark):
    rows = benchmark.pedantic(fig29_rows, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["dataset", "d", "mimag_time_s", "bu_time_s", "mimag_size",
         "bu_size", "precision", "recall", "f1", "mimag_truncated"],
        title="Fig. 29 — MiMAG vs BU-DCCS",
    )
    record("fig29_mimag", text)

    for row in rows:
        assert row["bu_time_s"] < row["mimag_time_s"]
        assert row["bu_size"] >= 0.5 * row["mimag_size"]
        assert row["recall"] >= 0.5
        assert row["f1"] > 0.5
