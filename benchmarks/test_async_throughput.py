"""Throughput benchmark for the async serving layer's coalescer.

A duplicate-heavy workload — a handful of distinct specs, each
requested many times, the shape of a popular-query cache-less serving
tier — is where in-flight coalescing pays even on one CPU: the
synchronous loop executes every request (the artifact cache makes
repeats cheaper, but each still re-runs its search), while the async
host executes each distinct in-flight spec once and fans the result out
to every coalesced waiter as a deep copy.

Recorded to ``benchmarks/results/async_throughput.txt``: wall time of
the sequential ``DCCHost`` loop vs one ``AsyncDCCHost`` batch over the
same request list, the engine-level search counts behind each, and the
throughput ratio.  Two assertions hold anywhere: results are bitwise
identical request-for-request, and coalescing strictly reduces the
number of engine searches executed.  The >= ``SPEEDUP_FLOOR`` wall-time
assertion documents the "wins even on 1 CPU" claim with margin for a
noisy box.
"""

import asyncio
from timeit import timeit

from repro.aio import AsyncDCCHost
from repro.datasets import load
from repro.host import DCCHost

from benchmarks._shared import record

DATASET = "english"
SCALE = 0.18
REPEATS = 8  # each distinct spec is requested this many times

DISTINCT_SPECS = [
    {"graph": "english", "d": 2, "s": 2, "k": 3},
    {"graph": "english", "d": 3, "s": 2, "k": 2},
    {"graph": "english", "d": 2, "s": 3, "k": 3, "method": "greedy"},
    {"graph": "english", "d": 3, "s": 3, "k": 2, "method": "bottom-up"},
]

# Coalescing executes 4 searches where the loop executes 40; demand only
# a conservative slice of that headroom so a loaded CI box stays green.
SPEEDUP_FLOOR = 1.2


def _workload():
    specs = []
    for _ in range(REPEATS):
        specs.extend(dict(spec) for spec in DISTINCT_SPECS)
    return specs


def test_async_coalescing_throughput(benchmark):
    graph = load(DATASET, scale=SCALE, seed=0).graph
    specs = _workload()
    measured = {}

    def run_both():
        with DCCHost(jobs=1) as host:
            host.attach("english", graph)
            measured["sync_s"] = timeit(
                lambda: measured.__setitem__(
                    "sync_results", host.search_many(specs)
                ),
                number=1,
            )
            measured["sync_searches"] = host.searches_served

        async_host = AsyncDCCHost(jobs=1)
        async_host.attach("english", graph)
        try:
            measured["async_s"] = timeit(
                lambda: measured.__setitem__(
                    "async_results", async_host.run_batch(specs)
                ),
                number=1,
            )
            info = async_host.info()
            measured["async_searches"] = info["host"]["searches_served"]
            measured["coalesced"] = info["requests_coalesced"]
        finally:
            asyncio.run(async_host.aclose())
        return measured

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    for got, want in zip(measured["async_results"],
                         measured["sync_results"]):
        assert got.sets == want.sets
        assert got.labels == want.labels
        assert got.stats.as_dict() == want.stats.as_dict()

    # Coalescing must collapse the duplicate-heavy batch down to (about)
    # its distinct specs; the sync loop executes every request.
    assert measured["sync_searches"] == len(specs)
    assert measured["async_searches"] < len(specs)

    ratio = measured["sync_s"] / measured["async_s"]
    lines = [
        "Async serving throughput — duplicate-heavy workload on {} "
        "stand-in (scale {})".format(DATASET, SCALE),
        "{} requests = {} distinct specs x {} repeats, jobs=1, "
        "1 graph".format(len(specs), len(DISTINCT_SPECS), REPEATS),
        "",
        "{:>28s}  {:>10s}  {:>16s}".format(
            "mode", "time_s", "engine searches"),
        "{:>28s}  {:>10.3f}  {:>16d}".format(
            "sync DCCHost loop", measured["sync_s"],
            measured["sync_searches"]),
        "{:>28s}  {:>10.3f}  {:>16d}".format(
            "async coalesced batch", measured["async_s"],
            measured["async_searches"]),
        "",
        "coalesced waiters served: {}".format(measured["coalesced"]),
        "throughput ratio (sync/async): {:.2f}x "
        "(floor asserted: {}x)".format(ratio, SPEEDUP_FLOOR),
        "results bitwise identical request-for-request: yes",
    ]
    record("async_throughput", "\n".join(lines))

    assert ratio >= SPEEDUP_FLOOR, (
        "coalesced async batch only {:.2f}x faster than the sync loop "
        "(floor {}x) on a duplicate-heavy workload".format(
            ratio, SPEEDUP_FLOOR
        )
    )
