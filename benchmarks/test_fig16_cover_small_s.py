"""Fig. 16 — result cover size vs small s.

Paper claims: (1) covers shrink as ``s`` grows (Property 3); (2) BU-DCCS
covers are comparable to GD-DCCS (1/4- vs (1-1/e)-approximation).
"""

from repro.experiments import format_series

from benchmarks._shared import record, series_lines, small_s_rows


def test_fig16_cover_vs_small_s(benchmark):
    rows = benchmark.pedantic(
        lambda: small_s_rows("english") + small_s_rows("stack"),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "s", "cover",
            title="Fig. 16({}) — cover vs small s on {}".format(tag, name),
        )
        for tag, name in (("a", "english"), ("b", "stack"))
    )
    record("fig16_cover_small_s", text)

    for name in ("english", "stack"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "s", "cover"
        )
        # Monotone non-increasing in s for greedy (exact enumeration).
        greedy = [lines["greedy"][s] for s in sorted(lines["greedy"])]
        assert all(a >= b for a, b in zip(greedy, greedy[1:]))
        # BU stays within the approximation band of greedy.
        for s, cover in lines["bottom-up"].items():
            assert 4 * cover >= lines["greedy"][s]
