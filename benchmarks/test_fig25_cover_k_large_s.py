"""Fig. 25 — result cover size vs k at large s (GD vs TD)."""

from repro.experiments import format_series

from benchmarks._shared import k_rows, record, series_lines


def test_fig25_cover_vs_k_large_s(benchmark):
    rows = benchmark.pedantic(
        lambda: k_rows("wiki", True) + k_rows("english", True),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "k", "cover",
            title="Fig. 25({}) — cover vs k (large s) on {}".format(tag, name),
        )
        for tag, name in (("a", "wiki"), ("b", "english"))
    )
    record("fig25_cover_k_large_s", text)

    for name in ("wiki", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "k", "cover"
        )
        for k, cover in lines["top-down"].items():
            assert 4 * cover >= lines["greedy"][k]
