"""Fig. 14 — execution time vs small s (GD-DCCS vs BU-DCCS).

Paper claims reproduced here: (1) every algorithm slows down as ``s``
grows in the small-``s`` regime (the subset space grows); (2) BU-DCCS is
1–2 orders of magnitude faster than GD-DCCS.
"""

from repro.experiments import format_series

from benchmarks._shared import record, series_lines, small_s_rows


def test_fig14_time_vs_small_s(benchmark):
    rows = benchmark.pedantic(
        lambda: small_s_rows("english") + small_s_rows("stack"),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "s", "time_s",
            title="Fig. 14({}) — time vs small s on {}".format(tag, name),
        )
        for tag, name in (("a", "english"), ("b", "stack"))
    )
    record("fig14_time_small_s", text)

    for name in ("english", "stack"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "s", "time_s"
        )
        # Greedy's cost explodes with s; compare the endpoints.
        assert lines["greedy"][5] > lines["greedy"][1]
        # BU beats greedy clearly at the default s = 3 and beyond.
        for s in (3, 4, 5):
            assert lines["bottom-up"][s] < lines["greedy"][s]
