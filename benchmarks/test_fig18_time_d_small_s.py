"""Fig. 18 — execution time vs d at small s (GD vs BU on German, English).

Paper claim: time decreases as ``d`` grows (cores shrink — Property 2),
and BU-DCCS stays faster than GD-DCCS.
"""

from repro.experiments import format_series

from benchmarks._shared import d_rows, record, series_lines


def test_fig18_time_vs_d_small_s(benchmark):
    rows = benchmark.pedantic(
        lambda: d_rows("german", False) + d_rows("english", False),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "d", "time_s",
            title="Fig. 18({}) — time vs d (small s) on {}".format(tag, name),
        )
        for tag, name in (("a", "german"), ("b", "english"))
    )
    record("fig18_time_d_small_s", text)

    for name in ("german", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "d", "time_s"
        )
        # Cheaper at d = 6 than d = 2 for the exhaustive greedy.
        assert lines["greedy"][6] < lines["greedy"][2]
        # BU faster than greedy at every d.
        for d, elapsed in lines["bottom-up"].items():
            assert elapsed < lines["greedy"][d]
