"""Scaling benchmark for the parallel d-CC search (``jobs=N``).

A candidate-heavy greedy configuration — many layer subsets, each an
independent d-CC peel — is the workload the shard queue was built for:
the candidate family partitions perfectly, so measured scaling reflects
pool overhead plus Amdahl losses (preprocessing and the final max-k-cover
stay on the orchestrator), nothing algorithmic.

Two assertions always hold, on any machine:

* ``jobs=2`` and ``jobs=4`` return bitwise identical results (sets,
  labels, counters) to ``jobs=1``;
* the measured numbers are recorded under
  ``benchmarks/results/parallel_scaling.txt``.

The ≥1.5× wall-clock speedup assertion arms itself only where it can be
trusted: hosts with ≥ 4 CPUs (where even best-of-two timing has ample
headroom over pool spawn cost), or anywhere when
``REPRO_ASSERT_SCALING=1`` is set.  On 1-CPU hosts forked workers
time-slice one core and cannot beat the inline path; on busy 2-core
boxes a single slow run would fail the tier-1 suite with no code defect
present.  The measured numbers — and whether the target was met — are
always recorded, with the CPU count they were measured on.
"""

import os
from timeit import timeit

import pytest

from repro.core.api import search_dccs
from repro.datasets import load

from benchmarks._shared import record

# english: 15 layers -> binom(15, 3) = 455 candidate subsets at s=3,
# plenty of queue depth for 4 workers.  The scale keeps one jobs=1 run
# in the hundreds of milliseconds so three timed variants stay cheap.
DATASET = "english"
SCALE = 0.25
D, S, K = 3, 3, 10
JOBS = (1, 2, 4)

SPEEDUP_TARGET = 1.5


def enforcement_armed(cpus):
    """Whether the speedup assertion is armed on this host.

    Hosts with >= 4 CPUs can be trusted to beat the target; anywhere
    else ``REPRO_ASSERT_SCALING=1`` arms it explicitly — the switch the
    CI harness smoke flips to prove the assertion path runs.
    """
    return cpus >= 4 or os.environ.get("REPRO_ASSERT_SCALING") == "1"


def assert_speedup(best, cpus, target=SPEEDUP_TARGET):
    """The enforcement assertion, shared by the real run and the smoke."""
    assert best >= target, (
        "parallel speedup {:.2f}x below target {}x on a {}-CPU host"
        .format(best, target, cpus)
    )


def test_parallel_scaling_report(benchmark):
    graph = load(DATASET, scale=SCALE, seed=0).frozen_graph()
    cpus = os.cpu_count() or 1

    results = {}
    timings = {}

    def run_all():
        # Best of two runs per jobs value: one-shot wall clocks on a
        # shared machine are noisy, and a spuriously slow jobs=1 baseline
        # would flatter the speedup as much as a slow jobs=4 run would
        # damn it.
        for jobs in JOBS:
            timings[jobs] = min(
                timeit(
                    lambda jobs=jobs: results.__setitem__(
                        jobs,
                        search_dccs(graph, D, S, K, method="greedy",
                                    jobs=jobs),
                    ),
                    number=1,
                )
                for _ in range(2)
            )
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    base = results[JOBS[0]]
    for jobs in JOBS[1:]:
        assert results[jobs].sets == base.sets, jobs
        assert results[jobs].labels == base.labels, jobs
        assert results[jobs].stats.as_dict() == base.stats.as_dict(), jobs

    lines = [
        "Parallel scaling — greedy DCCS on {} stand-in "
        "(scale {}, d={}, s={}, k={})".format(DATASET, SCALE, D, S, K),
        "candidate family: {} subsets over {} layers, {} vertices".format(
            base.stats.extra["candidate_family_size"], graph.num_layers,
            graph.num_vertices,
        ),
        "host CPUs: {}".format(cpus),
        "",
        "{:>5s}  {:>10s}  {:>8s}".format("jobs", "time_s", "speedup"),
    ]
    for jobs in JOBS:
        lines.append("{:>5d}  {:>10.3f}  {:>7.2f}x".format(
            jobs, timings[jobs], timings[JOBS[0]] / timings[jobs]
        ))
    lines.append("")
    lines.append(
        "results bitwise identical across jobs: yes "
        "(sets, labels, counters)"
    )
    best = max(timings[JOBS[0]] / timings[jobs] for jobs in JOBS[1:])
    enforce = enforcement_armed(cpus)
    if cpus >= 2:
        lines.append(
            "speedup target >= {}x on {} CPUs: {}{}".format(
                SPEEDUP_TARGET, cpus,
                "met" if best >= SPEEDUP_TARGET else "MISSED",
                "" if enforce else " (recorded only; set "
                "REPRO_ASSERT_SCALING=1 to enforce on < 4 CPUs)",
            )
        )
    else:
        lines.append(
            "speedup target >= {}x: not assessable on a single-CPU host "
            "(workers time-slice one core)".format(SPEEDUP_TARGET)
        )
        enforce = False
    record("parallel_scaling", "\n".join(lines))

    if enforce:
        assert_speedup(best, cpus)


# Scale for the harness smoke: one jobs=1 run lands in tens of
# milliseconds, so the smoke stays cheap enough for every CI run.
SMOKE_SCALE = 0.1


def test_scaling_assertion_harness_smoke(monkeypatch):
    """Prove the enforcement harness itself on any machine.

    A 1-CPU box cannot demonstrate real speedup, but it *can* prove the
    assertion path works: ``REPRO_ASSERT_SCALING=1`` must arm
    enforcement regardless of CPU count, a jobs=1-vs-jobs=1 measurement
    must flow through the same timing/equality plumbing as the real
    run, and the armed assertion must fail a missed target and pass a
    met one.  This closes the "assertion never exercised on 1-CPU
    hosts" hole without needing more cores.
    """
    monkeypatch.delenv("REPRO_ASSERT_SCALING", raising=False)
    assert enforcement_armed(cpus=1) is False
    assert enforcement_armed(cpus=4) is True
    monkeypatch.setenv("REPRO_ASSERT_SCALING", "1")
    assert enforcement_armed(cpus=1) is True

    graph = load(DATASET, scale=SMOKE_SCALE, seed=0).frozen_graph()
    results = {}
    timings = {}
    for arm in ("baseline", "candidate"):
        timings[arm] = min(
            timeit(
                lambda arm=arm: results.__setitem__(
                    arm,
                    search_dccs(graph, D, S, K, method="greedy", jobs=1),
                ),
                number=1,
            )
            for _ in range(2)
        )
    # The equality half of the harness, jobs=1 vs jobs=1: trivially
    # true unless the measurement plumbing itself is broken.
    assert results["candidate"].sets == results["baseline"].sets
    assert results["candidate"].stats.as_dict() == \
        results["baseline"].stats.as_dict()

    measured = timings["baseline"] / timings["candidate"]
    # Identical arms cannot legitimately reach the real target: the
    # armed assertion must fire on the miss...
    with pytest.raises(AssertionError):
        assert_speedup(min(measured, 1.0), cpus=1)
    # ...and pass once the target is met.
    assert_speedup(SPEEDUP_TARGET, cpus=1)
