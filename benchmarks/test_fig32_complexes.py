"""Fig. 32 — proportion of protein complexes found (PPI, planted truth).

Paper claims: (1) recovery drops as ``d`` grows (covers shrink);
(2) BU-DCCS recovers more complexes than MiMAG.
"""

from repro.experiments import format_table

from benchmarks._shared import fig32_rows, record


def test_fig32_complex_recovery(benchmark):
    rows = benchmark.pedantic(fig32_rows, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["d", "mimag_recovery", "bu_recovery", "complexes"],
        title="Fig. 32 — protein complexes found (planted ground truth)",
    )
    record("fig32_complexes", text)

    for row in rows:
        assert row["bu_recovery"] >= row["mimag_recovery"]
    recoveries = [row["bu_recovery"] for row in rows]
    assert recoveries[0] >= recoveries[-1]
