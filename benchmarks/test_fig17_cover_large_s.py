"""Fig. 17 — result cover size vs large s (GD vs BU vs TD)."""

from repro.experiments import format_series

from benchmarks._shared import large_s_rows, record, series_lines


def test_fig17_cover_vs_large_s(benchmark):
    rows = benchmark.pedantic(
        lambda: large_s_rows("english") + large_s_rows("stack"),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "s", "cover",
            title="Fig. 17({}) — cover vs large s on {}".format(tag, name),
        )
        for tag, name in (("a", "english"), ("b", "stack"))
    )
    record("fig17_cover_large_s", text)

    for name in ("english", "stack"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "s", "cover"
        )
        for algorithm in ("bottom-up", "top-down"):
            for s, cover in lines[algorithm].items():
                assert 4 * cover >= lines["greedy"][s]
