"""Fig. 20 — result cover size vs d at small s (Property 2: shrinks)."""

from repro.experiments import format_series

from benchmarks._shared import d_rows, record, series_lines


def test_fig20_cover_vs_d_small_s(benchmark):
    rows = benchmark.pedantic(
        lambda: d_rows("german", False) + d_rows("english", False),
        rounds=1, iterations=1,
    )
    text = "\n\n".join(
        format_series(
            [row for row in rows if row["dataset"] == name],
            "d", "cover",
            title="Fig. 20({}) — cover vs d (small s) on {}".format(tag, name),
        )
        for tag, name in (("a", "german"), ("b", "english"))
    )
    record("fig20_cover_d_small_s", text)

    for name in ("german", "english"):
        lines = series_lines(
            [row for row in rows if row["dataset"] == name], "d", "cover"
        )
        greedy = [lines["greedy"][d] for d in sorted(lines["greedy"])]
        assert all(a >= b for a, b in zip(greedy, greedy[1:]))
        for d, cover in lines["bottom-up"].items():
            assert 4 * cover >= lines["greedy"][d]
