"""Extra ablation (DESIGN.md §4) — pruning lemmas and the RefineC index.

Not a paper figure: DESIGN.md calls for ablating the order-based pruning
(Lemmas 3/6), the potential-set shortcut (Lemma 7) and the hierarchical
index, to show each design choice pulls its weight.
"""

from repro.experiments import format_table

from benchmarks._shared import pruning_rows, record


def test_pruning_ablation(benchmark):
    rows = benchmark.pedantic(pruning_rows, rounds=1, iterations=1)
    text = format_table(
        rows,
        ["dataset", "method", "s", "variant", "time_s", "cover",
         "dcc_calls", "pruned"],
        title="Extra ablation — pruning lemmas and index",
    )
    record("fig28b_pruning_ablation", text)

    # Order pruning must cut candidates relative to its ablation, in
    # total over the four dataset/regime combinations.
    full = sum(r["dcc_calls"] for r in rows if r["variant"] == "full")
    no_order = sum(
        r["dcc_calls"] for r in rows if r["variant"] == "No-OrderPrune"
    )
    assert full <= no_order
