"""Fig. 26 — scalability vs vertex fraction p on Stack.

Paper claim: all algorithms scale (near-)linearly in the vertex count.
"""

from repro.experiments import format_series

from benchmarks._shared import p_rows, record, series_lines


def test_fig26_time_vs_p(benchmark):
    rows = benchmark.pedantic(p_rows, rounds=1, iterations=1)
    small = [row for row in rows if row["algorithm"] != "top-down"]
    large = [row for row in rows if row["algorithm"] == "top-down"]
    text = "\n\n".join((
        format_series(small, "p", "time_s",
                      title="Fig. 26(a) — time vs p on stack (small s)"),
        format_series(large, "p", "time_s",
                      title="Fig. 26(b) — time vs p on stack (large s)"),
    ))
    record("fig26_scal_p", text)

    lines = series_lines(small, "p", "time_s")
    # More vertices, more time (endpoints; middle points can be noisy).
    assert lines["greedy"][1.0] > lines["greedy"][0.2]
