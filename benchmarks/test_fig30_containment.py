"""Fig. 30 — distribution of |Q ∩ Cov(R_C)| over quasi-clique sizes.

Paper claim: the mass concentrates at full containment — most
quasi-cliques live entirely inside the d-CC cover.
"""

from repro.experiments import figure30_table

from benchmarks._shared import fig30_payload, record


def test_fig30_containment_distribution(benchmark):
    payloads = benchmark.pedantic(
        lambda: [fig30_payload("ppi"), fig30_payload("author")],
        rounds=1, iterations=1,
    )
    text = "\n\n".join(figure30_table(payload) for payload in payloads)
    record("fig30_containment", text)

    for payload in payloads:
        # The bulk of quasi-cliques is (almost) fully contained.
        assert payload["fully_contained"] >= 0.5
        for size, fractions in payload["distribution"].items():
            top_two = fractions.get(size, 0.0) + fractions.get(size - 1, 0.0)
            assert top_two >= 0.5
