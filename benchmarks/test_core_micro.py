"""Micro-benchmarks of the core primitives (not tied to one figure).

These use pytest-benchmark's statistical timing (several rounds) because
the operations are fast and deterministic: single-layer d-core peeling,
multi-layer dCC peeling, and the Update structure — the three inner loops
every DCCS algorithm is built from.  Each peeling primitive is measured
on both graph backends; ``test_backend_speedup_report`` times the pair
head-to-head and persists the ratio under ``benchmarks/results/``.
"""

from timeit import timeit

from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import coherent_core
from repro.core.dcore import core_decomposition, d_core, layer_core
from repro.datasets import load

from benchmarks._shared import FIG_SCALES, record


def _graph():
    return load("english", scale=FIG_SCALES["english"]).graph


def _frozen():
    return load("english", scale=FIG_SCALES["english"]).frozen_graph()


def test_d_core_single_layer(benchmark):
    graph = _graph()
    adjacency = graph.adjacency(0)
    core = benchmark(d_core, adjacency, 4)
    assert isinstance(core, set)


def test_d_core_single_layer_frozen(benchmark):
    frozen = _frozen()
    core = benchmark(layer_core, frozen, 0, 4)
    assert frozen.labels_for(core) == frozenset(
        layer_core(_graph(), 0, 4)
    )


def test_core_decomposition_single_layer(benchmark):
    graph = _graph()
    numbers = benchmark(core_decomposition, graph.adjacency(0))
    assert numbers


def test_coherent_core_three_layers(benchmark):
    graph = _graph()
    core = benchmark(coherent_core, graph, (0, 1, 2), 4)
    assert isinstance(core, frozenset)


def test_coherent_core_three_layers_frozen(benchmark):
    frozen = _frozen()
    core = benchmark(coherent_core, frozen, (0, 1, 2), 4)
    assert frozen.labels_for(core) == coherent_core(_graph(), (0, 1, 2), 4)


def test_backend_speedup_report(benchmark):
    """Head-to-head d-core peel: dict vs frozen CSR on one graph."""
    graph = _graph()
    frozen = graph.freeze()
    repeat = 20

    def run_pair():
        dict_s = timeit(
            lambda: [layer_core(graph, i, 4) for i in graph.layers()],
            number=repeat,
        )
        frozen_s = timeit(
            lambda: [layer_core(frozen, i, 4) for i in frozen.layers()],
            number=repeat,
        )
        return dict_s, frozen_s

    dict_s, frozen_s = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    speedup = dict_s / frozen_s
    record(
        "backend_speedup",
        "d-core peel over all {} layers of english (scale {}), {} reps: "
        "dict {:.3f}s, frozen-csr {:.3f}s — {:.2f}x speedup".format(
            graph.num_layers, FIG_SCALES["english"], repeat,
            dict_s, frozen_s, speedup,
        ),
    )
    # The recorded report is the measurement of interest; the assertion
    # only guards against a catastrophic regression, because one timing
    # round on a loaded machine is too noisy for a strict > 1.0 gate.
    assert dict_s > 0 and frozen_s > 0
    assert speedup > 0.5, "frozen backend regressed badly: {:.2f}x".format(
        speedup
    )


def test_update_structure_throughput(benchmark):
    graph = _graph()
    candidates = [
        coherent_core(graph, (layer,), 4) for layer in graph.layers()
    ]

    def feed():
        top = DiversifiedTopK(10)
        for candidate in candidates:
            top.try_update(candidate)
        return top.cover_size

    cover = benchmark(feed)
    assert cover >= 0


def test_search_space_reduction_report(benchmark):
    """The Section IV claim: BU examines a small fraction of GD's space."""
    from repro.experiments import search_space_reduction

    payload = benchmark.pedantic(
        lambda: search_space_reduction("english",
                                       scale=FIG_SCALES["english"]),
        rounds=1, iterations=1,
    )
    record(
        "search_space_reduction",
        "Search-space reduction (english, s={s}): GD examined "
        "{gd_candidates} candidate d-CC computations, BU {bu_candidates} "
        "({reduction:.1%} reduction); covers {gd_cover} vs {bu_cover}".format(
            **payload
        ),
    )
    assert payload["reduction"] > 0.5
