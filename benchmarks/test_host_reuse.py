"""Multi-graph amortisation benchmark: cold one-shots vs one warm host.

The host's workload is many small searches spread over *several* graphs
— a parameter service answering for a fleet of datasets.  Served
one-shot, every query pays pool spawn, graph shipping and preprocessing
for whichever graph it names; served by one :class:`repro.host.DCCHost`,
each graph's engine session is admitted once and every later query on it
is warm.  This benchmark interleaves the same queries across two graphs
both ways at jobs ∈ {1, 2} and records the wall clocks under
``benchmarks/results/host_reuse.txt``.

Two assertions always hold, on any machine:

* results are bitwise identical (sets, labels, counters) between the
  one-shot calls, the roomy host, and a deliberately thrashing host
  (``max_engines=1``, every alternation an eviction + cold
  re-admission) — eviction costs latency, never correctness;
* at jobs=2 the warm host completes the interleaved workload in at most
  half the one-shot wall clock.  Like the engine-reuse target this is
  safe on a single-CPU box: the host removes per-query pool spawns and
  preprocessing rather than betting on physical parallelism.
"""

from time import perf_counter

from repro.core.api import search_dccs
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.host import DCCHost

from benchmarks._shared import record

ROUNDS = 8  # interleaved rounds; each round queries every graph once
JOBS = (1, 2)
AMORTISATION_TARGET = 2.0


def _second_graph(n=40):
    """A stand-in second tenant: two ring layers plus a chord layer."""
    graph = MultiLayerGraph(3, vertices=range(n), name="ring40")
    for i in range(n):
        graph.add_edge(0, i, (i + 1) % n)
        graph.add_edge(1, i, (i + 1) % n)
        graph.add_edge(2, i, (i + 2) % n)
    return graph


def _workload():
    """(name, graph, d, s, k) per tenant; rounds interleave the tenants."""
    return (
        ("figure1", paper_figure1_graph(), 3, 2, 2),
        ("ring40", _second_graph(), 2, 2, 2),
    )


def _check_identical(base, results, context):
    for result in results:
        assert result.sets == base.sets, context
        assert result.labels == base.labels, context
        assert result.stats.as_dict() == base.stats.as_dict(), context


def test_host_reuse_report(benchmark):
    tenants = _workload()
    timings = {}
    outputs = {}

    def run_all():
        # Best of two per mode: shared-machine wall clocks are noisy and
        # a spuriously slow cold baseline would flatter the ratio.
        for jobs in JOBS:
            for mode in ("one-shot", "host", "thrash"):
                best = None
                for _ in range(2):
                    start = perf_counter()
                    if mode == "one-shot":
                        results = [
                            search_dccs(graph, d, s, k, method="greedy",
                                        jobs=jobs)
                            for _ in range(ROUNDS)
                            for _, graph, d, s, k in tenants
                        ]
                    else:
                        max_engines = len(tenants) if mode == "host" else 1
                        with DCCHost(max_engines=max_engines,
                                     jobs=jobs) as host:
                            for name, graph, _, _, _ in tenants:
                                host.attach(name, graph)
                            results = [
                                host.search(name, d, s, k, method="greedy")
                                for _ in range(ROUNDS)
                                for name, _, d, s, k in tenants
                            ]
                            if mode == "thrash":
                                # Every alternation evicted the other
                                # tenant: 2 admissions per round after
                                # the first.
                                assert host.evictions >= \
                                    2 * ROUNDS - len(tenants)
                    elapsed = perf_counter() - start
                    best = elapsed if best is None else min(best, elapsed)
                    outputs[(jobs, mode)] = results
                timings[(jobs, mode)] = best
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    queries = ROUNDS * len(tenants)
    for jobs in JOBS:
        base = outputs[(jobs, "one-shot")]
        for mode in ("host", "thrash"):
            for index, (one, two) in enumerate(
                    zip(base, outputs[(jobs, mode)])):
                _check_identical(one, [two], (jobs, mode, index))

    lines = [
        "Host reuse — {} interleaved greedy searches across {} graphs "
        "({})".format(
            queries, len(tenants),
            ", ".join(
                "{}: d={} s={} k={}".format(name, d, s, k)
                for name, _, d, s, k in tenants
            ),
        ),
        "one-shot = independent search_dccs(..., jobs=N) calls "
        "(pool spawn + preprocessing per query)",
        "host     = one DCCHost, max_engines={} (one admission per "
        "graph, then warm)".format(len(tenants)),
        "thrash   = same host at max_engines=1 (every alternation "
        "evicts + re-admits cold)",
        "",
        "{:>5s}  {:>14s}  {:>14s}  {:>14s}  {:>12s}".format(
            "jobs", "one-shot (s)", "host (s)", "thrash (s)",
            "amortisation",
        ),
    ]
    for jobs in JOBS:
        cold = timings[(jobs, "one-shot")]
        warm = timings[(jobs, "host")]
        thrash = timings[(jobs, "thrash")]
        lines.append(
            "{:>5d}  {:>14.3f}  {:>14.3f}  {:>14.3f}  {:>11.2f}x".format(
                jobs, cold, warm, thrash, cold / warm
            )
        )
    ratio = timings[(2, "one-shot")] / timings[(2, "host")]
    lines.append("")
    lines.append(
        "per-query amortised latency at jobs=2: {:.1f} ms warm vs "
        "{:.1f} ms cold".format(
            1000 * timings[(2, "host")] / queries,
            1000 * timings[(2, "one-shot")] / queries,
        )
    )
    lines.append(
        "results bitwise identical across one-shot / host / thrashing "
        "host at every jobs value: yes (sets, labels, counters)"
    )
    lines.append(
        "amortisation target >= {}x at jobs=2: {} ({:.2f}x)".format(
            AMORTISATION_TARGET,
            "met" if ratio >= AMORTISATION_TARGET else "MISSED", ratio,
        )
    )
    record("host_reuse", "\n".join(lines))

    assert ratio >= AMORTISATION_TARGET, (
        "warm host amortisation {:.2f}x below the {}x target".format(
            ratio, AMORTISATION_TARGET
        )
    )
