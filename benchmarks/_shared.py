"""Shared plumbing for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure of the paper's Section VI.
Time-axis and cover-axis figures share the same parameter sweep (e.g.
Figs. 14 and 16 both sweep small ``s``), so sweeps are memoised here: the
first benchmark that needs a sweep pays for it — and is the one whose
wall-clock measurement is meaningful — and its sibling figure renders the
other column from the cached rows.

Rendered tables are printed and also written under ``benchmarks/results/``
so the bench run leaves the full figure reproduction on disk;
EXPERIMENTS.md is assembled from those files.
"""

import os

from repro.experiments import (
    figure29,
    figure30,
    figure31,
    figure32,
    preprocessing_ablation,
    pruning_ablation,
    vary_d,
    vary_k,
    vary_large_s,
    vary_p,
    vary_q,
    vary_small_s,
)

# Stand-in scale per dataset, tuned so the whole bench suite finishes in
# minutes in pure Python.  Relative sizes follow the paper (Stack is the
# largest graph, so it gets the smallest multiplier).
FIG_SCALES = {
    "ppi": 1.0,
    "author": 1.0,
    "german": 0.40,
    "wiki": 0.30,
    "english": 0.35,
    "stack": 0.20,
}

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

_CACHE = {}


def _memo(key, factory):
    if key not in _CACHE:
        _CACHE[key] = factory()
    return _CACHE[key]


def record(name, text):
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
    return path


def small_s_rows(dataset):
    return _memo(
        ("small_s", dataset),
        lambda: vary_small_s(dataset, scale=FIG_SCALES[dataset]),
    )


def large_s_rows(dataset):
    return _memo(
        ("large_s", dataset),
        lambda: vary_large_s(dataset, scale=FIG_SCALES[dataset]),
    )


def d_rows(dataset, large_s):
    return _memo(
        ("d", dataset, large_s),
        lambda: vary_d(dataset, large_s=large_s, scale=FIG_SCALES[dataset]),
    )


def k_rows(dataset, large_s):
    return _memo(
        ("k", dataset, large_s),
        lambda: vary_k(dataset, large_s=large_s, scale=FIG_SCALES[dataset]),
    )


def p_rows():
    return _memo(
        ("p",),
        lambda: vary_p("stack", scale=FIG_SCALES["stack"])
        + vary_p("stack", large_s=True, scale=FIG_SCALES["stack"]),
    )


def q_rows():
    return _memo(
        ("q",),
        lambda: vary_q("stack", scale=FIG_SCALES["stack"])
        + vary_q("stack", large_s=True, scale=FIG_SCALES["stack"]),
    )


def preprocessing_rows():
    def build():
        rows = []
        for name in ("wiki", "english"):
            rows += preprocessing_ablation(name, large_s=False,
                                           scale=FIG_SCALES[name])
            rows += preprocessing_ablation(name, large_s=True,
                                           scale=FIG_SCALES[name])
        return rows

    return _memo(("preprocessing",), build)


def pruning_rows():
    def build():
        rows = []
        for name in ("wiki", "english"):
            rows += pruning_ablation(name, large_s=False,
                                     scale=FIG_SCALES[name])
            rows += pruning_ablation(name, large_s=True,
                                     scale=FIG_SCALES[name])
        return rows

    return _memo(("pruning",), build)


def fig29_rows():
    return _memo(("fig29",), lambda: figure29(node_budget=15000))


def fig30_payload(dataset):
    return _memo(
        ("fig30", dataset), lambda: figure30(dataset, node_budget=15000)
    )


def fig31_payload():
    return _memo(("fig31",), lambda: figure31(node_budget=15000))


def fig32_rows():
    return _memo(("fig32",), lambda: figure32(node_budget=15000))


def series_lines(rows, x, y):
    """Per-algorithm ``{x: y}`` mapping for assertions on sweep shapes."""
    lines = {}
    for row in rows:
        lines.setdefault(row["algorithm"], {})[row[x]] = row[y]
    return lines
