"""Fig. 12 — dataset statistics table (stand-in vs paper originals)."""

from repro.datasets import clear_cache
from repro.experiments import figure12_table, figure13_table

from benchmarks._shared import FIG_SCALES, record


def test_fig12_dataset_statistics(benchmark):
    def build():
        clear_cache()
        return figure12_table(scale=FIG_SCALES["stack"])

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    record("fig12_datasets", table)
    record("fig13_parameters", figure13_table())
    assert "stack" in table
    assert "2601977" in table  # the paper's Stack vertex count rides along
