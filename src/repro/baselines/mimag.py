"""A MiMAG-style diversified cross-graph quasi-clique miner (ref. [4]).

The paper compares its algorithms against MiMAG (Boden et al., KDD 2012),
closed-source C++ research code that mines vertex sets which are
γ-quasi-cliques on at least ``s`` layers of a multi-layer graph and then
reports a diversified (low-redundancy) subset of them.  This module is the
substitution documented in DESIGN.md: a faithful-in-behaviour miner built
on set-enumeration branch-and-bound.

Key properties mirrored from the original:

* the search tree enumerates *vertex subsets* (2^|V| nodes in the worst
  case — the structural reason Fig. 29 shows MiMAG orders of magnitude
  slower than BU-DCCS, whose tree has only 2^l nodes);
* candidates must be γ-quasi-cliques on at least ``min_support`` layers and
  have at least ``min_size`` vertices;
* only maximal candidates are reported, and a redundancy filter keeps a
  cluster only when enough of it is not already covered (the
  "diversified result" of [4]).

Because quasi-cliques are not hereditary, the enumeration uses sound but
loose degree bounds; a node budget caps worst-case blow-up and is recorded
in the result so experiments can report truncation honestly.
"""

from dataclasses import dataclass, field

from repro.baselines.quasiclique import (
    is_quasi_clique,
    quasi_clique_threshold,
    supporting_layers,
)
from repro.utils.errors import ParameterError
from repro.utils.timer import Timer


@dataclass
class MiMAGResult:
    """Output of :func:`mimag`.

    Attributes
    ----------
    clusters:
        The diversified quasi-cliques (list of frozensets).
    all_maximal:
        Every maximal quasi-clique found before diversification.
    nodes_explored:
        Search-tree nodes visited.
    truncated:
        Whether the node budget stopped the enumeration early.
    elapsed:
        Wall-clock seconds.
    """

    clusters: list
    all_maximal: list = field(default_factory=list)
    nodes_explored: int = 0
    truncated: bool = False
    elapsed: float = 0.0

    @property
    def cover(self):
        """``Cov(R_Q)`` — the union of the diversified clusters."""
        covered = set()
        for cluster in self.clusters:
            covered |= cluster
        return covered

    @property
    def cover_size(self):
        return len(self.cover)


def mimag(graph, gamma, min_size, min_support, node_budget=200000,
          redundancy=0.25, max_cluster_size=8):
    """Mine diversified cross-graph quasi-cliques.

    Parameters
    ----------
    graph:
        The multi-layer graph.
    gamma:
        Quasi-clique density in ``[0, 1]`` (the paper uses 0.8).
    min_size:
        Minimum cluster size ``d'`` (the paper sets ``d' = d + 1``).
    min_support:
        Minimum number of supporting layers ``s``.
    node_budget:
        Hard cap on search-tree nodes; exceeding it sets ``truncated``.
    redundancy:
        A maximal cluster is kept only when at least this fraction of its
        vertices is not yet covered by previously kept (larger) clusters.
    max_cluster_size:
        Cap on cluster size (default 8; ``None`` disables).  Besides
        bounding depth, the cap powers the strongest prune: every current
        member survives into any final cluster of size ``m <= cap``, and a
        γ-quasi-clique member misses at most ``(m−1) − ⌈γ(m−1)⌉`` fellow
        members per supporting layer — one vertex for γ = 0.8, m = 8 — so
        branches whose members are not near-cliques die immediately.
        Quasi-cliques are microscopic by design (the limitation the paper
        criticises), so a cap of 8 matches what MiMAG reports in Fig. 29.

    Returns a :class:`MiMAGResult`.
    """
    if min_size < 2:
        raise ParameterError("min_size must be at least 2")
    if not 1 <= min_support <= graph.num_layers:
        raise ParameterError(
            "min_support must be in [1, {}]".format(graph.num_layers)
        )
    with Timer() as timer:
        miner = _Miner(graph, gamma, min_size, min_support,
                       node_budget, max_cluster_size)
        miner.run()
        maximal = _maximal_only(miner.found)
        clusters = _diversify(maximal, redundancy)
    return MiMAGResult(
        clusters=clusters,
        all_maximal=maximal,
        nodes_explored=miner.nodes,
        truncated=miner.truncated,
        elapsed=timer.elapsed,
    )


class _Miner:
    """Set-enumeration DFS with per-layer viability pruning.

    Each node carries, besides the member tuple and the candidate
    extension, the set of *viable* layers — layers on which every member
    still reaches the γ-degree bound inside ``members ∪ extension``.  Two
    sound prunes follow (proofs in the method docstrings): branches with
    fewer than ``min_support`` viable layers die, and extension vertices
    that cannot reach the bound on enough viable layers are dropped, which
    in turn shrinks the pool and re-tightens viability down the tree.
    """

    def __init__(self, graph, gamma, min_size, min_support,
                 node_budget, max_cluster_size):
        self.graph = graph
        self.gamma = gamma
        self.min_size = min_size
        self.min_support = min_support
        self.node_budget = node_budget
        self.max_size = max_cluster_size
        # Per-layer miss budget: a member of a final cluster of size at
        # most `max_size` may be non-adjacent to at most this many fellow
        # members on a supporting layer.  None disables the prune.
        if max_cluster_size is None:
            self.miss_budget = None
        else:
            self.miss_budget = (max_cluster_size - 1) - quasi_clique_threshold(
                gamma, max_cluster_size
            )
        self.found = []
        self.nodes = 0
        self.truncated = False
        # A total order over vertices makes the enumeration canonical:
        # every subset is generated exactly once, in sorted-tuple form.
        self.vertex_order = {
            vertex: rank
            for rank, vertex in enumerate(sorted(graph.vertices(), key=str))
        }
        # Union adjacency drives candidate generation: an extension must
        # be adjacent to the current set somewhere, otherwise it could
        # never reach degree >= 1 inside the cluster.
        self.union_adj = {}
        for vertex in graph.vertices():
            neighbors = set()
            for layer in graph.layers():
                neighbors |= graph.neighbors(layer, vertex)
            self.union_adj[vertex] = neighbors

    def run(self):
        """Enumerate connected vertex sets with the exclusion-set scheme.

        Seeds are processed in rank order, each banned from all later
        seeds' trees; within a node, each candidate is banned from its
        later siblings' subtrees.  This enumerates every connected subset
        of the union graph exactly once (connectivity is guaranteed for
        γ >= 0.5 quasi-cliques, whose minimum degree exceeds half the
        size), and pruned candidates simply join the ban set.
        """
        all_layers = tuple(self.graph.layers())
        seeds = sorted(self.vertex_order, key=self.vertex_order.get)
        banned = set()
        # Budget is sliced per seed region so that one dense community
        # cannot consume the whole allowance and starve the rest of the
        # graph; unspent slices roll over.
        slice_size = max(1000, self.node_budget // max(1, len(seeds) // 8))
        for seed in seeds:
            if self.nodes >= self.node_budget:
                self.truncated = True
                return
            if len(self.union_adj[seed]) + 1 >= self.min_size:
                self._seed_limit = min(
                    self.node_budget, self.nodes + slice_size
                )
                extension = sorted(
                    self.union_adj[seed] - banned,
                    key=self.vertex_order.get,
                )
                self._expand((seed,), extension, frozenset(banned),
                             all_layers)
            banned.add(seed)

    # ------------------------------------------------------------------

    def _extendable(self, members, survivors, viable):
        """Whether some surviving candidate extends ``members`` validly."""
        for u in survivors:
            grown = members + (u,)
            support = sum(
                1 for layer in viable
                if is_quasi_clique(self.graph, layer, grown, self.gamma)
            )
            if support >= self.min_support:
                return True
        return False

    def _expand(self, members, extension, banned, layers):
        self.nodes += 1
        if self.nodes > getattr(self, "_seed_limit", self.node_budget):
            # Seed slice exhausted: mark the run truncated (coverage is
            # incomplete) but let the next seed region start fresh.
            self.truncated = True
            return
        size = len(members)

        # Viability: a layer can support some cluster grown from this node
        # only if every current member reaches the γ-degree bound for the
        # smallest admissible final size inside the whole remaining pool
        # (degrees only shrink as the pool shrinks, and the bound only
        # grows with the final size).
        pool = set(members) | set(extension)
        member_set = set(members)
        required = quasi_clique_threshold(
            self.gamma, max(self.min_size, size)
        )
        # Member-based floor: all current members reach the final cluster,
        # so each may miss at most `miss_budget` of the others per layer.
        member_floor = 0
        if self.miss_budget is not None:
            member_floor = size - 1 - self.miss_budget
        viable = []
        for layer in layers:
            adjacency = self.graph.adjacency(layer)
            if all(
                len(adjacency[v] & pool) >= required
                and len(adjacency[v] & member_set) >= member_floor
                for v in members
            ):
                viable.append(layer)
        if len(viable) < self.min_support:
            return

        valid_here = False
        if size >= self.min_size:
            support = [
                layer for layer in viable
                if is_quasi_clique(self.graph, layer, members, self.gamma)
            ]
            valid_here = len(support) >= self.min_support
        if self.max_size is not None and size >= self.max_size:
            if valid_here:
                self.found.append(frozenset(members))
            return
        if not valid_here and size + len(extension) < self.min_size:
            return

        # Drop extensions that cannot reach the degree bound on enough
        # viable layers: any cluster through this node containing such a
        # vertex is a subset of the pool, where the vertex already fails.
        grown = quasi_clique_threshold(
            self.gamma, max(self.min_size, size + 1)
        )
        adjacencies = [self.graph.adjacency(layer) for layer in viable]
        joiner_floor = 0
        if self.miss_budget is not None:
            joiner_floor = size - self.miss_budget
        survivors = []
        dropped = set()
        for u in extension:
            reachable = sum(
                1 for adjacency in adjacencies
                if len(adjacency[u] & pool) >= grown
                and len(adjacency[u] & member_set) >= joiner_floor
            )
            if reachable >= self.min_support:
                survivors.append(u)
            else:
                dropped.add(u)

        if valid_here and not self._extendable(members, survivors, viable):
            # Locally maximal: no surviving candidate grows it validly.
            # (Cross-branch supersets through banned vertices can slip in;
            # the output-side maximality pass removes the cheap cases.)
            self.found.append(frozenset(members))
        if size + len(survivors) < self.min_size:
            return

        sibling_banned = set(banned) | dropped
        for index, vertex in enumerate(survivors):
            child_members = members + (vertex,)
            child_extension = list(survivors[index + 1:])
            present = set(child_extension)
            # New frontier: neighbours of the fresh vertex not banned in
            # this subtree keep the enumeration connected.
            for u in self.union_adj[vertex]:
                if (
                    u not in present
                    and u not in member_set
                    and u != vertex
                    and u not in sibling_banned
                ):
                    child_extension.append(u)
                    present.add(u)
            child_extension.sort(key=self.vertex_order.get)
            self._expand(child_members, child_extension,
                         frozenset(sibling_banned), tuple(viable))
            if self.nodes > self._seed_limit:
                # Unwind this seed's tree; the next seed gets a new slice.
                return
            sibling_banned.add(vertex)


def _maximal_only(found, quadratic_cap=4000):
    """Drop any cluster strictly contained in another.

    The pairwise pass is quadratic; above ``quadratic_cap`` distinct
    clusters it falls back to deduplication only.  Clusters are already
    locally maximal when recorded, so the pass only removes the rare
    cross-branch containments.
    """
    ordered = sorted(set(found), key=len, reverse=True)
    if len(ordered) > quadratic_cap:
        return ordered
    maximal = []
    for cluster in ordered:
        if not any(cluster < other for other in maximal):
            maximal.append(cluster)
    return maximal


def _diversify(clusters, redundancy):
    """The redundancy filter of [4]: keep clusters adding enough novelty."""
    kept = []
    covered = set()
    for cluster in sorted(clusters, key=len, reverse=True):
        novel = len(cluster - covered)
        if not kept or novel >= redundancy * len(cluster):
            kept.append(cluster)
            covered |= cluster
    return kept
