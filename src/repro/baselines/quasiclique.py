"""γ-quasi-cliques and cross-graph quasi-cliques (Section I and [4], [11]).

A vertex set ``Q`` is a γ-quasi-clique on a graph when every member is
adjacent to at least ``γ (|Q| − 1)`` other members; it is a *cross-graph*
quasi-clique when that holds on every graph of a collection.  These
predicates are what the paper's experimental comparison (Figs. 29–31)
evaluates the d-CC notion against, and they anchor the MiMAG-style miner
in :mod:`repro.baselines.mimag`.
"""

import math

from repro.utils.errors import ParameterError


def quasi_clique_threshold(gamma, size):
    """The minimum within-set degree ``⌈γ (size − 1)⌉`` for a member.

    "Adjacent to at least ``γ(|Q| − 1)`` vertices" involves an integral
    count, so the real-valued bound rounds up.
    """
    if not 0.0 <= gamma <= 1.0:
        raise ParameterError("gamma must be in [0, 1], got {}".format(gamma))
    return math.ceil(gamma * (size - 1) - 1e-12)


def is_quasi_clique(graph, layer, vertices, gamma):
    """Whether ``vertices`` is a γ-quasi-clique on one layer of ``graph``."""
    members = set(vertices)
    if not members:
        return False
    needed = quasi_clique_threshold(gamma, len(members))
    adjacency = graph.adjacency(layer)
    for vertex in members:
        if vertex not in adjacency:
            return False
        if len(adjacency[vertex] & members) < needed:
            return False
    return True


def supporting_layers(graph, vertices, gamma):
    """The layers on which ``vertices`` is a γ-quasi-clique."""
    return [
        layer for layer in graph.layers()
        if is_quasi_clique(graph, layer, vertices, gamma)
    ]


def is_cross_graph_quasi_clique(graph, vertices, gamma, layers=None,
                                min_support=None):
    """The cross-graph quasi-clique predicate.

    With ``layers`` given, ``vertices`` must be a γ-quasi-clique on each of
    them; with ``min_support`` given, on at least that many layers; with
    neither, on every layer of the graph (the classic definition of
    [11], [19]).
    """
    if layers is not None:
        return all(
            is_quasi_clique(graph, layer, vertices, gamma) for layer in layers
        )
    support = len(supporting_layers(graph, vertices, gamma))
    if min_support is not None:
        return support >= min_support
    return support == graph.num_layers


def quasi_clique_diameter_bound(gamma):
    """The diameter guarantee of [11]: at most 2 when ``γ >= 0.5``.

    Returns ``2`` for γ >= 0.5 and ``None`` (unbounded) otherwise; tests
    use it to demonstrate the small-diameter limitation the introduction
    criticises.
    """
    return 2 if gamma >= 0.5 else None
