"""An exact solver for the DCCS problem on small instances.

The paper does not run the brute-force algorithm ("it cannot terminate in
reasonable time"), but an exact solver is indispensable for testing: the
approximation-ratio theorems (1 − 1/e for GD-DCCS, 1/4 for BU/TD-DCCS)
can only be checked against a true optimum.  DCCS is NP-complete
(Theorem 1), so this module is honest about its scope: it enumerates the
candidate family ``F_{d,s}(G)`` and solves max-k-cover over it by
branch-and-bound, which is practical up to a few dozen distinct candidates.
"""

from itertools import combinations

from repro.core.dcc import enumerate_candidates
from repro.core.preprocess import vertex_deletion
from repro.core.result import DCCSResult
from repro.core.stats import SearchStats
from repro.utils.errors import ParameterError
from repro.utils.timer import Timer


def exact_dccs(graph, d, s, k, max_candidates=64, stats=None):
    """Solve DCCS exactly; returns a :class:`~repro.core.result.DCCSResult`.

    Raises :class:`ParameterError` when the number of *distinct, non-empty*
    candidate d-CCs exceeds ``max_candidates`` — refusing loudly beats
    silently taking exponential time.
    """
    if stats is None:
        stats = SearchStats()
    with Timer() as timer:
        prep = vertex_deletion(graph, d, s, stats=stats)
        labelled = {}
        for label, members in enumerate_candidates(
            graph, d, s, within=prep.alive, cores=prep.cores, stats=stats
        ):
            stats.candidates_generated += 1
            if members and members not in labelled:
                labelled[members] = label
        candidates = [(label, members) for members, label in labelled.items()]
        if len(candidates) > max_candidates:
            raise ParameterError(
                "{} distinct candidates exceed max_candidates={}; "
                "the exact solver is for small instances only".format(
                    len(candidates), max_candidates
                )
            )
        chosen = max_k_cover_exact([members for _, members in candidates], k)
        picked = [candidates[index] for index in chosen]
    return DCCSResult(
        sets=[members for _, members in picked],
        labels=[label for label, _ in picked],
        algorithm="exact",
        params=(d, s, k),
        stats=stats,
        elapsed=timer.elapsed,
    )


def max_k_cover_exact(sets, k):
    """Indices of an optimal k-subset of ``sets`` maximising the union size.

    Branch-and-bound over candidates ordered by decreasing size; the bound
    adds the ``r`` largest remaining set sizes to the current cover, which
    dominates any achievable completion.  Falls back to trivial answers
    when ``k`` covers everything.
    """
    sets = [frozenset(members) for members in sets]
    order = sorted(range(len(sets)), key=lambda index: -len(sets[index]))
    if k >= len(sets):
        return list(range(len(sets)))

    best_cover = -1
    best_pick = []

    # A greedy warm start tightens the bound from the first branch.
    greedy_pick = _greedy_indices(sets, k)
    greedy_cover = len(frozenset().union(*(sets[i] for i in greedy_pick))) \
        if greedy_pick else 0
    best_cover = greedy_cover
    best_pick = list(greedy_pick)

    def recurse(start, chosen, covered):
        nonlocal best_cover, best_pick
        if len(chosen) == k or start == len(order):
            if len(covered) > best_cover:
                best_cover = len(covered)
                best_pick = list(chosen)
            return
        slots = k - len(chosen)
        bound = len(covered) + sum(
            len(sets[order[i]]) for i in range(start, min(start + slots, len(order)))
        )
        if bound <= best_cover:
            return
        index = order[start]
        # Branch 1: take this candidate.
        chosen.append(index)
        recurse(start + 1, chosen, covered | sets[index])
        chosen.pop()
        # Branch 2: skip it.
        recurse(start + 1, chosen, covered)

    recurse(0, [], frozenset())
    return best_pick


def _greedy_indices(sets, k):
    covered = set()
    chosen = []
    remaining = set(range(len(sets)))
    while remaining and len(chosen) < k:
        best = max(remaining, key=lambda index: len(sets[index] - covered))
        if not sets[best] - covered and covered:
            break
        chosen.append(best)
        covered |= sets[best]
        remaining.discard(best)
    return chosen


def optimal_cover_size(graph, d, s, k, max_candidates=64):
    """Convenience wrapper returning just ``|Cov(R*)|`` of the optimum."""
    return exact_dccs(graph, d, s, k, max_candidates=max_candidates).cover_size


def brute_force_all_subsets(graph, d, s, k, max_family=20):
    """The literal brute force of Section III: try *every* k-combination.

    Exponentially slower than :func:`exact_dccs`; exists so tests can
    cross-check the branch-and-bound solver on tiny inputs.
    """
    family = []
    seen = set()
    for label, members in enumerate_candidates(graph, d, s):
        if members and members not in seen:
            seen.add(members)
            family.append((label, members))
    if len(family) > max_family:
        raise ParameterError(
            "{} candidates exceed max_family={}".format(len(family), max_family)
        )
    best_cover = -1
    best_combo = []
    take = min(k, len(family))
    for combo in combinations(range(len(family)), take):
        covered = set()
        for index in combo:
            covered |= family[index][1]
        if len(covered) > best_cover:
            best_cover = len(covered)
            best_combo = combo
    return [family[index] for index in best_combo]
