"""Baselines: the exact DCCS solver and the quasi-clique comparison."""

from repro.baselines.exact import (
    brute_force_all_subsets,
    exact_dccs,
    max_k_cover_exact,
    optimal_cover_size,
)
from repro.baselines.mimag import MiMAGResult, mimag
from repro.baselines.quasiclique import (
    is_cross_graph_quasi_clique,
    is_quasi_clique,
    quasi_clique_diameter_bound,
    quasi_clique_threshold,
    supporting_layers,
)

__all__ = [
    "exact_dccs",
    "max_k_cover_exact",
    "optimal_cover_size",
    "brute_force_all_subsets",
    "mimag",
    "MiMAGResult",
    "is_quasi_clique",
    "is_cross_graph_quasi_clique",
    "supporting_layers",
    "quasi_clique_threshold",
    "quasi_clique_diameter_bound",
]
