"""The engine session layer: persistent, multi-query d-CC serving.

One :class:`DCCEngine` owns one graph for its lifetime and amortises
everything a one-shot search throws away — the frozen conversion, the
worker pool (processes keep the deserialized graph between queries), the
per-graph artifact cache (d-core decompositions, InitTopK seeds, the
hierarchy index, with stats-delta replay so warm results stay bitwise
identical to cold ones), and the peel kernels' scratch buffers.

This is the substrate the serving roadmap builds on: batching lives here
(``engine.search_many``), and multi-graph hosting sits directly on the
session boundary — :class:`repro.host.DCCHost` owns a registry of these
engines under admission control, passing the cache bounds
(``cache_max_entries`` / ``cache_ttl``) a standalone engine leaves off.
See ``docs/architecture.md`` for the lifecycle and invalidation
contract.
"""

from repro.engine.cache import ArtifactCache
from repro.engine.session import DCCEngine
from repro.graph.frozen import ScratchArena

__all__ = [
    "DCCEngine",
    "ArtifactCache",
    "ScratchArena",
]
