"""The persistent search engine: one graph, many queries.

:class:`DCCEngine` is the session layer the one-shot
:func:`repro.core.api.search_dccs` hides: it owns a graph for its
lifetime and keeps everything a repeated search would otherwise rebuild —
the resolved backend (one freeze, ever), a persistent worker pool whose
processes hold the deserialized graph between queries
(:class:`~repro.parallel.executor.WorkerPool`), a per-graph artifact
cache with counter replay (:class:`~repro.engine.cache.ArtifactCache`),
and a scratch arena the frozen peel kernels recycle buffers from
(:class:`~repro.graph.frozen.ScratchArena`).

**Result contract.** ``engine.search(...)`` is bitwise identical — sets,
labels and aggregated counters — to ``search_dccs(..., jobs=N)`` for any
``N``, warm or cold, on either backend (property-tested in
``tests/test_engine.py``).  The engine always runs the sharded execution
path; the classic sequential algorithms remain reachable through
``search_dccs(..., jobs=None)``.

**Invalidation contract.** The engine snapshots its source graph's
``mutation_version`` at bind time and checks it twice per search: before
submission *and again after collecting results*.  Any mutation of the
underlying :class:`MultiLayerGraph` — even one that leaves the topology
equivalent — rebinds the session: frozen conversion, artifact cache and
worker pool are discarded and rebuilt from the mutated graph.  The
collect-time re-check closes the check-then-act window where a mutation
lands between the pre-search check and worker submission: on mismatch
the engine rebinds and retries the search once against the fresh
snapshot, so the in-flight results computed from the stale graph are
discarded rather than delivered.  If the graph has mutated *again* by
the time the retry collects, the search raises
:class:`~repro.utils.errors.StaleResultError` — the session is already
rebound, so retrying the call is safe — rather than deliver either
attempt.  A stale answer is never returned; the cost of mutation is a
cold next query.

Engines are not thread-safe (one ambient scratch arena, one pool); share
the *graph* across engines, not an engine across threads.  The
collect-time re-check defends against a *writer* thread mutating the
graph while a single serving thread searches — the one cross-thread
interaction the session boundary has to tolerate.
"""

from repro.core.api import resolve_method
from repro.core.dcc import validate_search_params
from repro.core.stats import SearchStats
from repro.engine.cache import ArtifactCache
from repro.graph.backend import check_backend, resolve_search_graph
from repro.graph.frozen import ScratchArena
from repro.graph.kernels import numpy_available, resolve_kernel
from repro.parallel.executor import WorkerPool, check_jobs
from repro.parallel.plan import make_query
from repro.parallel.search import execute_query_batch, start_query
from repro.utils.errors import (
    EngineClosedError,
    ParameterError,
    StaleResultError,
)
from repro.utils.timer import Timer


class DCCEngine:
    """A reusable d-CC search session over one multi-layer graph.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.multilayer.MultiLayerGraph` or an
        already-frozen :class:`~repro.graph.frozen.FrozenMultiLayerGraph`.
        Results are reported in this graph's vocabulary, exactly like
        ``search_dccs``.
    backend:
        ``"auto"`` (default), ``"dict"`` or ``"frozen"`` — resolved once
        per session instead of once per call.
    kernel:
        Peel-kernel tier for the frozen backend (``"auto"`` /
        ``"python"`` / ``"numpy"``), applied to the resolved search
        graph at bind time and carried to every pooled worker through
        the graph payload.  Results are bitwise identical between
        tiers.  The dict backend ignores it.
    jobs:
        Persistent pool size with the usual semantics (``0`` = one
        worker per CPU, default); ``None`` is accepted as an alias for
        ``1``, i.e. inline sharded execution with no worker processes.
        The pool spawns lazily; call :meth:`warm` to pay the spawn cost
        up front.
    cache_artifacts:
        Switch the per-graph artifact cache off (``False``) for
        memory-constrained sessions; results are identical either way.
    cache_max_entries / cache_ttl:
        Size and TTL bounds forwarded to the :class:`ArtifactCache`.
        Both default to ``None`` — a standalone engine keeps the classic
        unbounded cache; :class:`repro.host.DCCHost` passes bounds so
        many resident engines cannot grow without limit.  Eviction never
        changes results or counters (see the cache's docstring).

    Use as a context manager (or call :meth:`close`) so the worker
    processes shut down deterministically; an abandoned engine's pool is
    additionally shut down by a ``weakref.finalize`` safety net at
    garbage collection or interpreter exit (see
    :class:`~repro.parallel.executor.WorkerPool`)::

        with DCCEngine(graph, jobs=2) as engine:
            first = engine.search(d=3, s=2, k=2)
            rest = engine.search_many([
                {"d": 3, "s": 2, "k": 4},
                {"d": 2, "s": 3, "k": 2, "method": "bottom-up"},
            ])
    """

    def __init__(self, graph, backend="auto", jobs=0, cache_artifacts=True,
                 cache_max_entries=None, cache_ttl=None, kernel="auto"):
        check_backend(backend)
        check_jobs(jobs)
        # Resolve up front: an explicit "numpy" request must fail at
        # construction in a numpy-less interpreter, not at first search.
        resolve_kernel(kernel)
        self._source = graph
        self._backend = backend
        self._kernel = kernel
        self._jobs = jobs
        self._cache_enabled = cache_artifacts
        self._cache_max_entries = cache_max_entries
        self._cache_ttl = cache_ttl
        self._closed = False
        self.searches_served = 0
        self.invalidations = 0
        self.rebinds_patched = 0
        self.rebinds_full = 0
        self._bind()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _bind(self):
        """(Re)derive every per-graph resource from the source graph.

        The backend-resolution cost (a possible O(n + m) freeze) is
        remembered and charged to the next search's elapsed time, so
        session timings stay comparable with one-shot ``search_dccs``.
        """
        with Timer() as overhead:
            search_graph, translate = resolve_search_graph(
                self._source, self._backend
            )
        self._graph = search_graph
        self._translate = translate
        self._pending_overhead = overhead.elapsed
        self._version = self._source.mutation_version
        if self._graph.is_frozen:
            # Before the pool exists: the graph payload each worker
            # receives carries the tier that is active *now*.  The
            # resolved tier is remembered so a *shared* frozen graph —
            # two engines over one source share its cached freeze — can
            # be re-asserted per search if a sibling session flipped it
            # (tiers are bitwise identical, so the flip could never
            # change results, only which code path runs).
            self._active_kernel = self._graph.set_kernel(
                self._kernel if self._kernel != "auto"
                else self._graph.kernel
            )
        else:
            self._active_kernel = None
        self._pool = WorkerPool(self._graph, self._jobs)
        self._cache = ArtifactCache(
            self._graph, max_entries=self._cache_max_entries,
            ttl=self._cache_ttl,
        ) if self._cache_enabled else None
        self._arena = ScratchArena()

    # Subclasses that rebuild fundamentally different per-graph state
    # (the sharded engine re-partitions on every bind) opt out of the
    # incremental path and always rebind fully.
    _supports_delta_rebind = True

    def _rebind_if_stale(self):
        """Rebind when the source graph mutated; whether a rebind happened.

        The source graph mutating under the session means the frozen
        conversion, every cached artifact and the graphs held by the
        worker processes all describe a graph that no longer exists.
        When the graph can say *what* changed (a non-structural
        :meth:`delta_since` against the bound version), the session is
        patched in place — CSR layers re-frozen selectively, artifact
        cache invalidated only where the delta touches, the delta (not
        the graph) shipped to live workers.  Otherwise everything is
        rebuilt from scratch.  Either way, stale is never answered.
        """
        if self._source.mutation_version == self._version:
            return False
        self.invalidations += 1
        if self._try_delta_rebind():
            self.rebinds_patched += 1
            return True
        self.rebinds_full += 1
        self._pool.close()
        self._bind()
        return True

    def _try_delta_rebind(self):
        """Patch the live session onto the mutated graph; whether it worked.

        Requires the source to produce a non-structural delta covering
        the versions since the last bind (vertex-set changes shift the
        frozen dense-id assignment, so they always rebuild).  The worker
        pool and scratch arena survive; the artifact cache keeps every
        entry whose layer signature avoids the delta.
        """
        if not self._supports_delta_rebind:
            return False
        delta_since = getattr(self._source, "delta_since", None)
        if delta_since is None:
            return False
        delta = delta_since(self._version)
        if delta is None or delta.structural:
            return False
        with Timer() as overhead:
            # For a frozen session this re-runs freeze(), which patches
            # its cached CSR per the delta instead of rebuilding it.
            search_graph, translate = resolve_search_graph(
                self._source, self._backend
            )
        self._graph = search_graph
        self._translate = translate
        self._pending_overhead += overhead.elapsed
        if search_graph.is_frozen:
            self._active_kernel = search_graph.set_kernel(
                self._kernel if self._kernel != "auto"
                else search_graph.kernel
            )
        else:
            self._active_kernel = None
        self._pool.apply_delta(search_graph, delta)
        if self._cache is not None:
            self._cache.rebind(search_graph, delta.touched_layers())
        self._version = self._source.mutation_version
        return True

    def _ensure_current(self):
        if self._closed:
            raise EngineClosedError()
        self._rebind_if_stale()

    def warm(self):
        """Spawn the worker pool now; returns whether workers are live.

        Sweeps and benchmarks call this so process-spawn cost lands
        outside per-query timers (see ``docs/experiments.md``).
        """
        self._ensure_current()
        return self._pool.warm()

    def close(self):
        """Shut down the worker pool; further searches raise."""
        if not self._closed:
            self._closed = True
            self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    @property
    def graph(self):
        """The resolved search graph (may be an internal frozen copy)."""
        return self._graph

    @property
    def source_graph(self):
        """The graph the engine was constructed over."""
        return self._source

    def search(self, d, s, k, method="auto", **options):
        """One search through the warm session; a :class:`DCCSResult`.

        Accepts exactly the ``search_dccs`` method/option surface
        (``seed`` for top-down, preprocessing and pruning switches,
        ``stats``) and reports sets in the source graph's vocabulary.
        """
        return self.submit(d, s, k, method=method, **options).collect()

    def submit(self, d, s, k, method="auto", **options):
        """Start one search without blocking; a :class:`SearchHandle`.

        The submission half of :meth:`search`: the query is validated,
        planned (preprocessing runs now, on the caller's thread) and its
        shard tasks handed to the worker pool — then control returns
        while workers execute.  ``handle.collect()`` blocks for the
        results and carries the full :meth:`search` delivery semantics,
        staleness retry included; ``handle.waitables()`` exposes the
        in-flight shard futures so an async caller can await completion
        before collecting.  Handles of one engine must be collected in
        submission order (the pipelining contract of the pool).
        """
        self._ensure_current()
        user_stats = options.pop("stats", None)
        return SearchHandle(self, (d, s, k, method, options),
                            self._start(d, s, k, method, options),
                            user_stats, self._version)

    def _start(self, d, s, k, method, options):
        """Plan + submit one attempt; a :class:`PendingQuery`."""
        query = self._query_for(d, s, k, method, dict(options))
        if self._active_kernel is not None and \
                self._graph.kernel != self._active_kernel:
            self._graph.set_kernel(self._active_kernel)
        with self._arena:
            return start_query(self._graph, query, self._pool,
                               stats=SearchStats(), artifacts=self._cache)

    def search_many(self, queries):
        """Pipeline a batch of query specs through the warm pool.

        ``queries`` is an iterable of dicts with keys ``d``, ``s``,
        ``k`` and optionally ``method`` plus any ``search`` options.
        Results come back in input order, each bitwise identical to the
        corresponding :meth:`search` call; shard tasks of query ``i+1``
        are already queued while query ``i`` executes.
        """
        self._ensure_current()
        parsed = []
        for entry in queries:
            entry = dict(entry)
            try:
                d = entry.pop("d")
                s = entry.pop("s")
                k = entry.pop("k")
            except KeyError as missing:
                raise ParameterError(
                    "batch query {!r} is missing required key {}".format(
                        entry, missing
                    )
                ) from None
            method = entry.pop("method", "auto")
            entry.pop("stats", None)
            parsed.append((d, s, k, method, entry))
        for _ in range(2):
            # Validate (and re-validate after a rebind) before any query
            # of the batch is submitted — a malformed spec must fail up
            # front, not mid-pipeline with completed work in flight.
            specs = [
                self._query_for(d, s, k, method, dict(entry))
                for d, s, k, method, entry in parsed
            ]
            if self._active_kernel is not None and \
                    self._graph.kernel != self._active_kernel:
                self._graph.set_kernel(self._active_kernel)
            with self._arena:
                results = execute_query_batch(self._graph, specs,
                                              self._pool,
                                              artifacts=self._cache)
            # On a mid-batch mutation every result of this batch came
            # from the stale snapshot, so the whole batch retries.
            if not self._rebind_if_stale():
                return [self._deliver(result) for result in results]
        raise StaleResultError()

    def memory_bytes(self):
        """Resident bytes of the session's search graph.

        The hook :class:`repro.host.DCCHost` feeds its global memory
        budget from.  Counts the resolved search graph (CSR arrays plus
        whatever lazy caches queries actually built — both backends
        report honestly); the caller-owned source graph is not charged
        to the session.
        """
        return self._graph.memory_bytes()

    def budget_bytes(self):
        """What admission control charges this session against the budget.

        Equal to :meth:`memory_bytes` for an unsharded engine; a
        :class:`~repro.shard.engine.ShardedEngine` overrides it to its
        largest single shard, because sharding exists precisely so no
        one engine holds the whole graph at once.
        """
        return self.memory_bytes()

    def info(self):
        """Pool and cache status for monitoring (and ``repro info``)."""
        cache_stats = self._cache.stats() if self._cache is not None else {
            "entries": 0, "hits": 0, "misses": 0, "evictions": 0,
            "expirations": 0, "layer_core_hits": 0,
            "layer_core_misses": 0, "invalidations_kept": 0,
            "invalidations_dropped": 0,
        }
        return {
            "backend": "frozen-csr" if self._graph.is_frozen
            else "dict-of-sets",
            "kernel": self._active_kernel,
            "numpy_available": numpy_available(),
            "translate_results": self._translate,
            "workers": self._pool.workers,
            "pool_spawned": self._pool.spawned,
            "pool_inline_fallback": self._pool.inline_fallback,
            "pool_queries_served": self._pool.queries_served,
            "pool_tasks_executed": self._pool.tasks_executed,
            "searches_served": self.searches_served,
            "cache_enabled": self._cache is not None,
            "cache_entries": cache_stats["entries"],
            "cache_hits": cache_stats["hits"],
            "cache_misses": cache_stats["misses"],
            "cache_evictions": cache_stats["evictions"],
            "cache_expirations": cache_stats["expirations"],
            "cache_layer_core_hits": cache_stats["layer_core_hits"],
            "cache_layer_core_misses": cache_stats["layer_core_misses"],
            "cache_invalidations_kept": cache_stats["invalidations_kept"],
            "cache_invalidations_dropped":
                cache_stats["invalidations_dropped"],
            "memory_bytes": self.memory_bytes(),
            "scratch_reuses": self._arena.reuses,
            "invalidations": self.invalidations,
            "rebinds_patched": self.rebinds_patched,
            "rebinds_full": self.rebinds_full,
            "freeze_patches": getattr(self._source, "freeze_patches", 0),
            "freeze_rebuilds": getattr(self._source, "freeze_rebuilds", 0),
            "pool_deltas_shipped": self._pool.deltas_shipped,
            "pool_delta_respawns": self._pool.delta_respawns,
            "mutation_version": self._version,
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _query_for(self, d, s, k, method, options):
        # Validate eagerly — search_many must reject a malformed spec
        # before any query of its batch is submitted, not mid-pipeline
        # with completed work in flight.
        validate_search_params(self._graph, d, s, k)
        method = resolve_method(self._graph.num_layers, method, s, options)
        return make_query(method, d, s, k, **options)

    def _deliver(self, result, user_stats=None):
        result.elapsed += self._pending_overhead
        self._pending_overhead = 0.0
        if self._translate:
            # The search ran on an internally frozen copy: convert the
            # dense ids back to the source graph's labels, on the clock,
            # exactly as the one-shot path does.
            with Timer() as translation:
                result.sets = [
                    self._graph.labels_for(members) for members in result.sets
                ]
            result.elapsed += translation.elapsed
        if user_stats is not None:
            # The search ran against a private stats object (so a
            # discarded stale attempt leaves no trace); fold the final
            # attempt's counters into the caller's accumulator, which
            # stays the object the result reports — one-shot semantics.
            user_stats.merge(result.stats)
            result.stats = user_stats
        self.searches_served += 1
        return result


class SearchHandle:
    """One submitted search; :meth:`collect` finishes it.

    Returned by :meth:`DCCEngine.submit`.  Between submission and
    collection the shard tasks are in flight on the engine's worker
    pool; :meth:`waitables` exposes their futures so an async front-end
    can await completion without parking a thread inside
    :meth:`collect`.  Collection carries the engine's full delivery
    semantics — label translation, overhead charging, the collect-time
    staleness re-check with its single retry (the retry resubmits and
    blocks, so after awaiting the first attempt's futures a rare
    concurrent mutation still costs a synchronous re-run rather than a
    stale answer).

    The handle remembers the bind version it was submitted under.
    Other engine calls may land between submit and collect (the async
    dispatcher pipelines submissions) and one of them may *consume* a
    concurrent mutation by rebinding first — the engine then looks
    current again, but this handle's attempt still rode the old
    snapshot and the old (now closed) pool.  Comparing against the
    remembered version catches that: the attempt is discarded without
    touching its cancelled futures and the search re-runs against the
    live bind, so a stale answer is never delivered and a routine
    rebind is never misread as a worker crash.
    """

    __slots__ = ("_engine", "_spec", "_pending", "_user_stats",
                 "_bound_version", "_collected")

    def __init__(self, engine, spec, pending, user_stats, bound_version):
        self._engine = engine
        self._spec = spec
        self._pending = pending
        self._user_stats = user_stats
        self._bound_version = bound_version
        self._collected = False

    def waitables(self):
        """In-flight shard futures (empty when execution is inline)."""
        return self._pending.waitables()

    def collect(self):
        """Block for the results; the search's :class:`DCCSResult`.

        Bitwise identical — sets, labels, counters — to the equivalent
        :meth:`DCCEngine.search` call.  May be called once.
        """
        if self._collected:
            raise ParameterError(
                "this SearchHandle has already been collected"
            )
        self._collected = True
        engine = self._engine
        pending = self._pending
        bound = self._bound_version
        for attempt in range(2):
            if engine._closed:
                raise EngineClosedError()
            if engine._version == bound:
                with engine._arena:
                    result = pending.finish(engine._pool)
                # Deliver only if the source never mutated while this
                # attempt ran: the engine must still be on the attempt's
                # bind *and* that bind must still match the source.
                if not engine._rebind_if_stale() and \
                        engine._version == bound:
                    return engine._deliver(result, self._user_stats)
            if attempt == 0:
                # The attempt's snapshot is dead — either the graph
                # mutated while it was in flight, or another engine call
                # already rebound underneath it.  Resubmit against the
                # current bind and block for the retry.
                d, s, k, method, options = self._spec
                engine._ensure_current()
                pending = engine._start(d, s, k, method, options)
                bound = engine._version
        # Mutated during the original attempt *and* its retry: the
        # never-stale contract forbids delivering either result.  The
        # session is already rebound, so the caller can simply retry.
        raise StaleResultError()
