"""The persistent search engine: one graph, many queries.

:class:`DCCEngine` is the session layer the one-shot
:func:`repro.core.api.search_dccs` hides: it owns a graph for its
lifetime and keeps everything a repeated search would otherwise rebuild —
the resolved backend (one freeze, ever), a persistent worker pool whose
processes hold the deserialized graph between queries
(:class:`~repro.parallel.executor.WorkerPool`), a per-graph artifact
cache with counter replay (:class:`~repro.engine.cache.ArtifactCache`),
and a scratch arena the frozen peel kernels recycle buffers from
(:class:`~repro.graph.frozen.ScratchArena`).

**Result contract.** ``engine.search(...)`` is bitwise identical — sets,
labels and aggregated counters — to ``search_dccs(..., jobs=N)`` for any
``N``, warm or cold, on either backend (property-tested in
``tests/test_engine.py``).  The engine always runs the sharded execution
path; the classic sequential algorithms remain reachable through
``search_dccs(..., jobs=None)``.

**Invalidation contract.** The engine snapshots its source graph's
``mutation_version`` at bind time and re-checks it before every search.
Any mutation of the underlying :class:`MultiLayerGraph` — even one that
leaves the topology equivalent — rebinds the session: frozen conversion,
artifact cache and worker pool are discarded and rebuilt from the
mutated graph.  A stale answer is never returned; the cost of mutation
is a cold next query.

Engines are not thread-safe (one ambient scratch arena, one pool); share
the *graph* across engines, not an engine across threads.
"""

from repro.core.api import resolve_method
from repro.core.dcc import validate_search_params
from repro.engine.cache import ArtifactCache
from repro.graph.backend import check_backend, resolve_search_graph
from repro.graph.frozen import ScratchArena
from repro.parallel.executor import WorkerPool, check_jobs
from repro.parallel.plan import make_query
from repro.parallel.search import execute_query, execute_query_batch
from repro.utils.errors import EngineClosedError, ParameterError
from repro.utils.timer import Timer


class DCCEngine:
    """A reusable d-CC search session over one multi-layer graph.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.multilayer.MultiLayerGraph` or an
        already-frozen :class:`~repro.graph.frozen.FrozenMultiLayerGraph`.
        Results are reported in this graph's vocabulary, exactly like
        ``search_dccs``.
    backend:
        ``"auto"`` (default), ``"dict"`` or ``"frozen"`` — resolved once
        per session instead of once per call.
    jobs:
        Persistent pool size with the usual semantics (``0`` = one
        worker per CPU, default); ``None`` is accepted as an alias for
        ``1``, i.e. inline sharded execution with no worker processes.
        The pool spawns lazily; call :meth:`warm` to pay the spawn cost
        up front.
    cache_artifacts:
        Switch the per-graph artifact cache off (``False``) for
        memory-constrained sessions; results are identical either way.

    Use as a context manager (or call :meth:`close`) so the worker
    processes shut down deterministically::

        with DCCEngine(graph, jobs=2) as engine:
            first = engine.search(d=3, s=2, k=2)
            rest = engine.search_many([
                {"d": 3, "s": 2, "k": 4},
                {"d": 2, "s": 3, "k": 2, "method": "bottom-up"},
            ])
    """

    def __init__(self, graph, backend="auto", jobs=0, cache_artifacts=True):
        check_backend(backend)
        check_jobs(jobs)
        self._source = graph
        self._backend = backend
        self._jobs = jobs
        self._cache_enabled = cache_artifacts
        self._closed = False
        self.searches_served = 0
        self.invalidations = 0
        self._bind()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _bind(self):
        """(Re)derive every per-graph resource from the source graph.

        The backend-resolution cost (a possible O(n + m) freeze) is
        remembered and charged to the next search's elapsed time, so
        session timings stay comparable with one-shot ``search_dccs``.
        """
        with Timer() as overhead:
            search_graph, translate = resolve_search_graph(
                self._source, self._backend
            )
        self._graph = search_graph
        self._translate = translate
        self._pending_overhead = overhead.elapsed
        self._version = self._source.mutation_version
        self._pool = WorkerPool(self._graph, self._jobs)
        self._cache = ArtifactCache(self._graph) if self._cache_enabled \
            else None
        self._arena = ScratchArena()

    def _ensure_current(self):
        if self._closed:
            raise EngineClosedError()
        if self._source.mutation_version != self._version:
            # The source graph mutated under the session: the frozen
            # conversion, every cached artifact and the graphs held by
            # the worker processes all describe a graph that no longer
            # exists.  Rebind rather than ever answering stale.
            self._pool.close()
            self.invalidations += 1
            self._bind()

    def warm(self):
        """Spawn the worker pool now; returns whether workers are live.

        Sweeps and benchmarks call this so process-spawn cost lands
        outside per-query timers (see ``docs/experiments.md``).
        """
        self._ensure_current()
        return self._pool.warm()

    def close(self):
        """Shut down the worker pool; further searches raise."""
        if not self._closed:
            self._closed = True
            self._pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    @property
    def graph(self):
        """The resolved search graph (may be an internal frozen copy)."""
        return self._graph

    @property
    def source_graph(self):
        """The graph the engine was constructed over."""
        return self._source

    def search(self, d, s, k, method="auto", **options):
        """One search through the warm session; a :class:`DCCSResult`.

        Accepts exactly the ``search_dccs`` method/option surface
        (``seed`` for top-down, preprocessing and pruning switches,
        ``stats``) and reports sets in the source graph's vocabulary.
        """
        self._ensure_current()
        stats = options.pop("stats", None)
        query = self._query_for(d, s, k, method, options)
        with self._arena:
            result = execute_query(self._graph, query, self._pool,
                                   stats=stats, artifacts=self._cache)
        return self._deliver(result)

    def search_many(self, queries):
        """Pipeline a batch of query specs through the warm pool.

        ``queries`` is an iterable of dicts with keys ``d``, ``s``,
        ``k`` and optionally ``method`` plus any ``search`` options.
        Results come back in input order, each bitwise identical to the
        corresponding :meth:`search` call; shard tasks of query ``i+1``
        are already queued while query ``i`` executes.
        """
        self._ensure_current()
        specs = []
        for entry in queries:
            entry = dict(entry)
            try:
                d = entry.pop("d")
                s = entry.pop("s")
                k = entry.pop("k")
            except KeyError as missing:
                raise ParameterError(
                    "batch query {!r} is missing required key {}".format(
                        entry, missing
                    )
                ) from None
            method = entry.pop("method", "auto")
            entry.pop("stats", None)
            specs.append(self._query_for(d, s, k, method, entry))
        with self._arena:
            results = execute_query_batch(self._graph, specs, self._pool,
                                          artifacts=self._cache)
        return [self._deliver(result) for result in results]

    def info(self):
        """Pool and cache status for monitoring (and ``repro info``)."""
        cache_stats = self._cache.stats() if self._cache is not None else {
            "entries": 0, "hits": 0, "misses": 0,
        }
        return {
            "backend": "frozen-csr" if self._graph.is_frozen
            else "dict-of-sets",
            "translate_results": self._translate,
            "workers": self._pool.workers,
            "pool_spawned": self._pool.spawned,
            "pool_inline_fallback": self._pool.inline_fallback,
            "pool_queries_served": self._pool.queries_served,
            "pool_tasks_executed": self._pool.tasks_executed,
            "searches_served": self.searches_served,
            "cache_enabled": self._cache is not None,
            "cache_entries": cache_stats["entries"],
            "cache_hits": cache_stats["hits"],
            "cache_misses": cache_stats["misses"],
            "scratch_reuses": self._arena.reuses,
            "invalidations": self.invalidations,
            "mutation_version": self._version,
            "closed": self._closed,
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _query_for(self, d, s, k, method, options):
        # Validate eagerly — search_many must reject a malformed spec
        # before any query of its batch is submitted, not mid-pipeline
        # with completed work in flight.
        validate_search_params(self._graph, d, s, k)
        method = resolve_method(self._graph.num_layers, method, s, options)
        return make_query(method, d, s, k, **options)

    def _deliver(self, result):
        result.elapsed += self._pending_overhead
        self._pending_overhead = 0.0
        if self._translate:
            # The search ran on an internally frozen copy: convert the
            # dense ids back to the source graph's labels, on the clock,
            # exactly as the one-shot path does.
            with Timer() as translation:
                result.sets = [
                    self._graph.labels_for(members) for members in result.sets
                ]
            result.elapsed += translation.elapsed
        self.searches_served += 1
        return result
