"""Per-graph artifact cache: reuse across queries, replayed counters.

A search session asks many related questions of one graph, and the
expensive prefixes repeat: the per-layer d-core decomposition and its
vertex-deletion fixed point depend only on ``(d, s, vertex-deletion
flag)``, the InitTopK seeds add ``k``, the top-down hierarchy index and
the root d-CC depend on the surviving vertex set.  :class:`ArtifactCache`
memoises those artifacts per graph, keyed by their parameters plus the
layer-subset signature they were computed over (today always the full
layer set — the key shape is ready for sub-layer hosting).

**The counter-replay contract.** Reported :class:`SearchStats` are part
of this repo's bitwise-determinism guarantee, and a cache that silently
skipped work would make a warm query report fewer ``dcc_calls`` than a
cold one.  So every entry stores ``(value, stats delta)``: the build
runs against a private stats object, and *every* lookup — hit or miss —
hands the caller that delta to merge.  A warm query therefore reports
exactly the counters of a cold one, verified property-wise in
``tests/test_engine.py``.

Cached values are normalised to immutable shapes (frozensets, tuples) so
sharing across queries cannot alias mutable state.  Invalidation is the
owning engine's job: the cache itself trusts its graph never to change,
which :class:`repro.engine.DCCEngine` enforces through the graph's
``mutation_version``.
"""

from repro.core.dcc import coherent_core
from repro.core.index import CoreHierarchyIndex
from repro.core.initk import init_topk
from repro.core.preprocess import vertex_deletion
from repro.core.stats import SearchStats


class ArtifactCache:
    """Memoised per-graph search artifacts with stats-delta replay."""

    def __init__(self, graph):
        self.graph = graph
        # The layer-subset signature of every current key: engines serve
        # whole-graph queries today, so this is the full layer tuple;
        # sub-layer hosting will key finer without changing the scheme.
        self._layers_signature = tuple(graph.layers())
        self._entries = {}
        self.hits = 0
        self.misses = 0

    def __len__(self):
        return len(self._entries)

    def clear(self):
        self._entries.clear()

    def stats(self):
        """Hit/miss/size counters for ``engine.info()``."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }

    def _get(self, key, build):
        key = (self._layers_signature,) + key
        try:
            value, delta = self._entries[key]
        except KeyError:
            self.misses += 1
            delta = SearchStats()
            value = build(delta)
            self._entries[key] = (value, delta)
        else:
            self.hits += 1
        return value, delta

    # ------------------------------------------------------------------
    # the artifacts
    # ------------------------------------------------------------------

    def preprocess(self, d, s, enabled):
        """The vertex-deletion fixed point (cores, alive set, support).

        The cores are the per-layer d-core decomposition restricted to
        the surviving vertices — the artifact every method's planning
        starts from.  Normalised in place to immutable shapes before
        caching.
        """
        def build(delta):
            prep = vertex_deletion(self.graph, d, s, enabled=enabled,
                                   stats=delta)
            prep.alive = frozenset(prep.alive)
            prep.cores = [frozenset(core) for core in prep.cores]
            return prep

        return self._get(("preprocess", d, s, enabled), build)

    def init_sets(self, d, s, k, vd_enabled, prep):
        """The InitTopK seeds as replayable ``(label, frozenset)`` pairs."""
        def build(delta):
            topk = init_topk(self.graph, d, s, k, prep.cores,
                             within=prep.alive, stats=delta)
            return tuple(
                (label, frozenset(members))
                for label, members in topk.labelled_sets()
            )

        return self._get(("init-topk", d, s, k, vd_enabled), build)

    def hierarchy_index(self, d, s, vd_enabled, prep):
        """The top-down hierarchy index over the preprocessed graph.

        The index object is shared between queries; it is read-only
        after construction apart from its internal scope memo, whose
        values are themselves pure functions of the index.
        """
        def build(delta):
            return CoreHierarchyIndex(self.graph, d, within=prep.alive,
                                      stats=delta)

        return self._get(("index", d, s, vd_enabled), build)

    def root_core(self, d, s, vd_enabled, prep):
        """The all-layers d-CC the top-down search starts from."""
        def build(delta):
            return frozenset(coherent_core(
                self.graph, self.graph.layers(), d, within=prep.alive,
                stats=delta,
            ))

        return self._get(("root-core", d, s, vd_enabled), build)
