"""Per-graph artifact cache: reuse across queries, replayed counters.

A search session asks many related questions of one graph, and the
expensive prefixes repeat: the per-layer d-core decomposition and its
vertex-deletion fixed point depend only on ``(d, s, vertex-deletion
flag)``, the InitTopK seeds add ``k``, the top-down hierarchy index and
the root d-CC depend on the surviving vertex set.  :class:`ArtifactCache`
memoises those artifacts per graph, keyed by their parameters plus the
layer-subset signature they were computed over (today always the full
layer set — the key shape is ready for sub-layer hosting).

**The counter-replay contract.** Reported :class:`SearchStats` are part
of this repo's bitwise-determinism guarantee, and a cache that silently
skipped work would make a warm query report fewer ``dcc_calls`` than a
cold one.  So every entry stores ``(value, stats delta)``: the build
runs against a private stats object, and *every* lookup — hit or miss —
hands the caller that delta to merge.  A warm query therefore reports
exactly the counters of a cold one, verified property-wise in
``tests/test_engine.py``.

Cached values are normalised to immutable shapes (frozensets, tuples) so
sharing across queries cannot alias mutable state.  Invalidation is the
owning engine's job: the cache itself trusts its graph never to change,
which :class:`repro.engine.DCCEngine` enforces through the graph's
``mutation_version``.

**Bounds.** By default the cache is unbounded — correct for one graph's
parameter space, where an engine serves a handful of ``(d, s, k)``
combinations.  A multi-graph host keeps many caches alive at once, so
the constructor accepts ``max_entries`` (LRU discard beyond the cap) and
``ttl`` (entries older than ``ttl`` seconds are rebuilt on next lookup).
Eviction never affects results: a re-looked-up artifact is rebuilt by
the same pure function and charges the same stats delta, so warm results
stay bitwise identical to cold ones across any eviction schedule
(property-tested in ``tests/test_engine.py``).
"""

import time
from collections import OrderedDict

from repro.core.dcc import coherent_core
from repro.core.dcore import layer_core as _layer_core
from repro.core.index import CoreHierarchyIndex
from repro.core.initk import init_topk
from repro.core.preprocess import vertex_deletion
from repro.core.stats import SearchStats
from repro.utils.errors import ParameterError


class ArtifactCache:
    """Memoised per-graph search artifacts with stats-delta replay.

    Parameters
    ----------
    graph:
        The (never-mutating) graph every artifact is derived from.
    max_entries:
        Entry cap; the least-recently-used entry is discarded beyond it.
        ``None`` (default) keeps the classic unbounded behaviour.
    ttl:
        Seconds an entry stays servable; expired entries are rebuilt on
        their next lookup.  ``None`` (default) never expires.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.
    """

    def __init__(self, graph, max_entries=None, ttl=None,
                 clock=time.monotonic):
        if max_entries is not None and (
                isinstance(max_entries, bool)
                or not isinstance(max_entries, int) or max_entries < 1):
            raise ParameterError(
                "max_entries must be None or a positive integer, "
                "got {!r}".format(max_entries)
            )
        if ttl is not None and (
                isinstance(ttl, bool)
                or not isinstance(ttl, (int, float)) or not ttl > 0):
            raise ParameterError(
                "ttl must be None or a positive number of seconds, "
                "got {!r}".format(ttl)
            )
        self.graph = graph
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        # The layer-subset signature of every current key: engines serve
        # whole-graph queries today, so this is the full layer tuple;
        # sub-layer hosting will key finer without changing the scheme.
        self._layers_signature = tuple(graph.layers())
        self._entries = OrderedDict()
        # The per-layer seed artifacts live in a side table: one tiny
        # frozenset per (layer, d), never LRU-evicted or TTL-expired (a
        # handful of entries, dropped selectively by rebind()).  Keeping
        # them out of _entries preserves the classic artifact-level
        # hit/miss/eviction accounting.
        self._layer_entries = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.layer_core_hits = 0
        self.layer_core_misses = 0
        self.invalidations_kept = 0
        self.invalidations_dropped = 0

    def __len__(self):
        return len(self._entries)

    def clear(self):
        self._entries.clear()
        self._layer_entries.clear()

    def rebind(self, graph, touched_layers):
        """Retarget the cache at a post-delta graph, invalidating selectively.

        ``touched_layers`` names the layers whose edge sets the delta
        changed (the vertex set must be unchanged — structural deltas
        rebuild the whole session and never reach here).  Entries whose
        layer signature intersects the touched set are dropped; the rest
        — today, the per-layer :meth:`layer_core` artifacts of untouched
        layers — survive, because each is a pure function of the edge
        sets its signature names, all of which are unchanged.  The
        full-signature artifacts (``preprocess``, ``init-topk``,
        ``index``, ``root-core``) always intersect a non-empty touched
        set and are always dropped.
        """
        self.graph = graph
        self._layers_signature = tuple(graph.layers())
        touched = frozenset(touched_layers)
        if touched:
            entries = self._entries
            for key in list(entries):
                if touched.intersection(key[0]):
                    del entries[key]
                    self.invalidations_dropped += 1
                else:
                    self.invalidations_kept += 1
            layer_entries = self._layer_entries
            for key in list(layer_entries):
                if key[0] in touched:
                    del layer_entries[key]
                    self.invalidations_dropped += 1
                else:
                    self.invalidations_kept += 1

    def stats(self):
        """Hit/miss/size counters for ``engine.info()``."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "layer_core_hits": self.layer_core_hits,
            "layer_core_misses": self.layer_core_misses,
            "invalidations_kept": self.invalidations_kept,
            "invalidations_dropped": self.invalidations_dropped,
            "max_entries": self.max_entries,
            "ttl": self.ttl,
        }

    def _get(self, key, build):
        key = (self._layers_signature,) + key
        entries = self._entries
        try:
            value, delta, stamp = entries[key]
        except KeyError:
            pass
        else:
            if self.ttl is None or self._clock() - stamp <= self.ttl:
                self.hits += 1
                entries.move_to_end(key)
                return value, delta
            # Expired: rebuild below.  The rebuild recomputes the same
            # pure function, so the fresh value and delta are identical
            # to the ones just dropped.
            del entries[key]
            self.expirations += 1
        self.misses += 1
        delta = SearchStats()
        value = build(delta)
        entries[key] = (value, delta, self._clock())
        if self.max_entries is not None:
            while len(entries) > self.max_entries:
                entries.popitem(last=False)
                self.evictions += 1
        return value, delta

    # ------------------------------------------------------------------
    # the artifacts
    # ------------------------------------------------------------------

    def layer_core(self, d, layer):
        """The full-graph d-core of one layer, keyed by that layer alone.

        The finest-grained artifact: it depends on a single layer's edge
        set, so a delta-rebind (:meth:`rebind`) keeps it whenever the
        delta leaves the layer untouched, and the next
        :meth:`preprocess` rebuild seeds its maintainer from the
        survivors instead of re-peeling every layer.  No stats delta is
        carried by design — the consumer
        (``MultiLayerCoreMaintainer``) charges ``dcc_calls`` identically
        for seeded and computed layers, so the replay contract holds
        without double counting.
        """
        key = (layer, d)
        try:
            value = self._layer_entries[key]
        except KeyError:
            value = frozenset(_layer_core(self.graph, layer, d))
            self._layer_entries[key] = value
            self.layer_core_misses += 1
        else:
            self.layer_core_hits += 1
        return value

    def preprocess(self, d, s, enabled):
        """The vertex-deletion fixed point (cores, alive set, support).

        The cores are the per-layer d-core decomposition restricted to
        the surviving vertices — the artifact every method's planning
        starts from.  Normalised in place to immutable shapes before
        caching.  The build seeds its maintainer from the per-layer
        :meth:`layer_core` artifacts, so after a delta-rebind only the
        touched layers are re-peeled.
        """
        def build(delta):
            seeds = {
                layer: self.layer_core(d, layer)
                for layer in self.graph.layers()
            }
            prep = vertex_deletion(self.graph, d, s, enabled=enabled,
                                   stats=delta, seed_cores=seeds)
            prep.alive = frozenset(prep.alive)
            prep.cores = [frozenset(core) for core in prep.cores]
            return prep

        return self._get(("preprocess", d, s, enabled), build)

    def init_sets(self, d, s, k, vd_enabled, prep):
        """The InitTopK seeds as replayable ``(label, frozenset)`` pairs."""
        def build(delta):
            topk = init_topk(self.graph, d, s, k, prep.cores,
                             within=prep.alive, stats=delta)
            return tuple(
                (label, frozenset(members))
                for label, members in topk.labelled_sets()
            )

        return self._get(("init-topk", d, s, k, vd_enabled), build)

    def hierarchy_index(self, d, s, vd_enabled, prep):
        """The top-down hierarchy index over the preprocessed graph.

        The index object is shared between queries; it is read-only
        after construction apart from its internal scope memo, whose
        values are themselves pure functions of the index.
        """
        def build(delta):
            return CoreHierarchyIndex(self.graph, d, within=prep.alive,
                                      stats=delta)

        return self._get(("index", d, s, vd_enabled), build)

    def root_core(self, d, s, vd_enabled, prep):
        """The all-layers d-CC the top-down search starts from."""
        def build(delta):
            return frozenset(coherent_core(
                self.graph, self.graph.layers(), d, within=prep.alive,
                stats=delta,
            ))

        return self._get(("root-core", d, s, vd_enabled), build)
