"""repro — Diversified Coherent Core Search on multi-layer graphs.

A from-scratch reproduction of *Diversified Coherent Core Search on
Multi-Layer Graphs* (Rong Zhu, Zhaonian Zou, Jianzhong Li; ICDE 2018).

The package exposes:

* :mod:`repro.graph` — the multi-layer graph substrate, builders, I/O and
  synthetic generators;
* :mod:`repro.core` — d-coherent cores and the three DCCS algorithms
  (greedy, bottom-up, top-down) with :func:`repro.search_dccs` as the
  one-call entry point;
* :mod:`repro.engine` — the persistent search session
  (:class:`repro.DCCEngine`): one graph, a warm worker pool, per-graph
  artifact caching, and the ``search_many`` batch API;
* :mod:`repro.host` — multi-graph hosting (:class:`repro.DCCHost`): a
  registry of engine sessions with LRU admission control and a global
  memory budget;
* :mod:`repro.aio` — the async serving front-end
  (:class:`repro.AsyncDCCHost`): per-graph request queues, in-flight
  coalescing and backpressure over a hosted registry;
* :mod:`repro.baselines` — the exact solver and the quasi-clique
  (MiMAG-style) comparison baseline;
* :mod:`repro.metrics` — cover / similarity / recovery metrics;
* :mod:`repro.datasets` — synthetic stand-ins for the paper's datasets;
* :mod:`repro.experiments` — the harness that regenerates every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import search_dccs
    from repro.graph import paper_figure1_graph

    result = search_dccs(paper_figure1_graph(), d=3, s=2, k=2)
    print(result.cover_size)          # 13 = |C_{1,3} ∪ C_{2,4}| (Section II)
"""

from repro.core import (
    bu_dccs,
    coherent_core,
    gd_dccs,
    search_dccs,
    td_dccs,
)
from repro.graph import MultiLayerGraph

__version__ = "1.1.0"

__all__ = [
    "MultiLayerGraph",
    "search_dccs",
    "DCCEngine",
    "DCCHost",
    "AsyncDCCHost",
    "coherent_core",
    "gd_dccs",
    "bu_dccs",
    "td_dccs",
    "__version__",
]


def __getattr__(name):
    # DCCEngine and DCCHost are exported lazily: both pull in the
    # parallel subsystem's multiprocessing plumbing, which
    # `import repro` for a purely sequential script should not pay for.
    if name == "DCCEngine":
        from repro.engine import DCCEngine

        return DCCEngine
    if name == "DCCHost":
        from repro.host import DCCHost

        return DCCHost
    if name == "AsyncDCCHost":
        from repro.aio import AsyncDCCHost

        return AsyncDCCHost
    raise AttributeError(
        "module {!r} has no attribute {!r}".format(__name__, name)
    )
