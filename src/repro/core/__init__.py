"""The paper's core contribution: d-CCs and the three DCCS algorithms.

Backend protocol
----------------
Every algorithm in this package is written against the narrow graph
backend protocol of :mod:`repro.graph.backend` (``degree``,
``neighbors``, ``induced_degrees``, ``layers_of`` plus size accessors),
so the dict-of-sets reference backend and the frozen CSR backend execute
the same search code.  The peeling primitives —
:func:`~repro.core.dcore.layer_core`, :func:`~repro.core.dcc.coherent_core`
and :func:`~repro.core.dcc.enumerate_candidates` — dispatch to flat-array
fast paths when ``graph.is_frozen``; everything above them (pruning,
top-k maintenance, preprocessing, the hierarchical index) is
representation-blind.  Freeze before searching whenever the graph is
static and non-trivial, or let ``search_dccs(backend="auto")`` decide.
"""

from repro.core.api import choose_method, search_dccs
from repro.core.bottomup import bu_dccs
from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import (
    coherent_core,
    coherent_core_binsort,
    enumerate_candidates,
    is_coherent_dense,
    per_layer_cores,
)
from repro.core.dcore import (
    core_decomposition,
    core_sizes_by_threshold,
    d_core,
    layer_core,
    layer_core_decomposition,
    layer_core_sizes,
)
from repro.core.dynamic import CoherentCoreTracker
from repro.core.greedy import gd_dccs, greedy_max_k_cover
from repro.core.hierarchy import (
    coherent_core_hierarchy,
    coherent_core_numbers,
    coherent_degeneracy,
    densest_coherent_core,
    suggest_degree_threshold,
)
from repro.core.index import CoreHierarchyIndex
from repro.core.maintain import MultiLayerCoreMaintainer
from repro.core.initk import init_topk
from repro.core.preprocess import (
    PreprocessResult,
    compute_support,
    order_layers,
    vertex_deletion,
)
from repro.core.refine import refine_core, refine_potential, split_layer_classes
from repro.core.result import DCCSResult
from repro.core.stats import SearchStats
from repro.core.topdown import td_dccs

__all__ = [
    "search_dccs",
    "choose_method",
    "gd_dccs",
    "bu_dccs",
    "td_dccs",
    "coherent_core",
    "coherent_core_binsort",
    "is_coherent_dense",
    "per_layer_cores",
    "enumerate_candidates",
    "d_core",
    "layer_core",
    "layer_core_decomposition",
    "layer_core_sizes",
    "core_decomposition",
    "core_sizes_by_threshold",
    "DiversifiedTopK",
    "DCCSResult",
    "SearchStats",
    "CoreHierarchyIndex",
    "MultiLayerCoreMaintainer",
    "CoherentCoreTracker",
    "coherent_core_numbers",
    "coherent_core_hierarchy",
    "coherent_degeneracy",
    "densest_coherent_core",
    "suggest_degree_threshold",
    "init_topk",
    "vertex_deletion",
    "compute_support",
    "order_layers",
    "PreprocessResult",
    "refine_core",
    "refine_potential",
    "split_layer_classes",
    "greedy_max_k_cover",
]
