"""The bottom-up DCCS algorithm BU-DCCS (Section IV, Figs. 3 and 7).

Candidate d-CCs are organised in a prefix search tree over layer subsets
(Fig. 4): the node for subset ``L`` has one child per layer number greater
than ``max(L)``.  The tree is explored depth-first; at level ``s`` each
candidate is offered to the temporary top-k result set, and three pruning
rules cut subtrees once the result set is full:

* **search-tree pruning** (Lemma 2) — if ``C^d_L`` cannot pass the Eq. (1)
  replacement test, none of its descendants can (they are subsets);
* **order-based pruning** (Lemma 3) — children are visited in decreasing
  order of the intersection bound ``|C^d_L ∩ C^d(G_j)|``; once the bound
  drops below ``|Cov(R)|/k + |Δ(R, C*)|`` the remaining children are cut;
* **layer pruning** (Lemma 4) — a layer ``j`` whose child fails Eq. (1)
  is banned from the entire subtree below ``L``.

Every rule is individually switchable for the ablation benchmarks.
BU-DCCS attains the 1/4 approximation ratio of Theorem 3.

The search itself manipulates only vertex sets and the primitives of
:mod:`repro.core.dcc`, so it runs unchanged on either graph backend;
pass a frozen graph (or let ``search_dccs(backend="auto")`` freeze) to
route every peel through the CSR kernels.
"""

from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import coherent_core, validate_search_params
from repro.core.initk import init_topk
from repro.core.preprocess import order_layers, vertex_deletion
from repro.core.result import result_from_topk
from repro.core.stats import SearchStats
from repro.utils.timer import Timer


def bu_dccs(graph, d, s, k,
            use_vertex_deletion=True,
            use_layer_sorting=True,
            use_init_topk=True,
            use_order_pruning=True,
            use_layer_pruning=True,
            stats=None):
    """Run BU-DCCS; returns a :class:`~repro.core.result.DCCSResult`.

    The three ``use_*`` preprocessing flags correspond to the paper's
    No-VD / No-SL / No-IR ablations (Fig. 28); the two pruning flags expose
    Lemma 3 and Lemma 4 for the extra ablation benches in DESIGN.md.
    """
    validate_search_params(graph, d, s, k)
    if stats is None:
        stats = SearchStats()
    with Timer() as timer:
        prep = vertex_deletion(
            graph, d, s, enabled=use_vertex_deletion, stats=stats
        )
        topk = DiversifiedTopK(k)
        if use_init_topk:
            init_topk(
                graph, d, s, k, prep.cores,
                topk=topk, within=prep.alive, stats=stats,
            )
        order = order_layers(prep.cores, descending=True,
                             enabled=use_layer_sorting)
        search = _BottomUpSearch(
            graph=graph,
            d=d,
            s=s,
            order=order,
            cores=prep.cores,
            topk=topk,
            stats=stats,
            use_order_pruning=use_order_pruning,
            use_layer_pruning=use_layer_pruning,
        )
        search.run(prep.alive)
    return result_from_topk(topk, "bottom-up", (d, s, k), stats, timer.elapsed)


class _BottomUpSearch:
    """State shared across the BU-Gen recursion (Fig. 3)."""

    def __init__(self, graph, d, s, order, cores, topk, stats,
                 use_order_pruning, use_layer_pruning):
        self.graph = graph
        self.d = d
        self.s = s
        # `order[p]` is the layer id at search position p; the tree is
        # built over positions so the sorting-layers heuristic simply
        # permutes which child is explored first.
        self.order = order
        self.cores = cores
        self.topk = topk
        self.stats = stats
        self.use_order_pruning = use_order_pruning
        self.use_layer_pruning = use_layer_pruning

    def run(self, root_vertices):
        """Line 10 of Fig. 7: BU-Gen from the empty layer set."""
        self._generate(positions=(), core=frozenset(root_vertices), banned=frozenset())

    def run_subtree(self, position, root_vertices):
        """Explore only the first-position subtree rooted at ``position``.

        The shard entry point of the parallel subsystem
        (:mod:`repro.parallel`): the prefix search tree partitions
        cleanly by its root children — the subtree at ``position`` holds
        exactly the layer subsets whose smallest search position is
        ``position`` — so each shard replays the root-level handling of
        :meth:`run` for its single child (Lemma 1 bound, level-``s``
        offer, Lemma 2 expansion test) and then recurses as usual.
        Lemma 4 bans start empty per shard: root-level bans cannot cross
        shard boundaries.
        """
        child_positions, child = self._child_core(
            (), frozenset(root_vertices), position
        )
        if len(child_positions) == self.s:
            self._offer(child_positions, child)
        elif not self.topk.is_full or self.topk.satisfies_replacement(child):
            self._generate(child_positions, child, frozenset())
        else:
            # Lemma 2 at the root of the shard.
            self.stats.candidates_pruned += 1

    # ------------------------------------------------------------------

    def _layers_for(self, positions):
        """Map tree positions back to sorted actual layer ids."""
        return tuple(sorted(self.order[p] for p in positions))

    def _child_core(self, positions, core, position):
        """Compute ``C^d_{L ∪ {j}}`` on the Lemma 1 intersection bound."""
        bound = core & self.cores[self.order[position]]
        child_positions = positions + (position,)
        if not bound:
            # Lemma 1: empty bound, hence empty child d-CC.
            return child_positions, frozenset()
        child = coherent_core(
            self.graph,
            self._layers_for(child_positions),
            self.d,
            within=bound,
            stats=self.stats,
        )
        return child_positions, child

    def _offer(self, positions, candidate):
        """Hand a level-``s`` candidate to Update, tracking counters."""
        self.stats.candidates_generated += 1
        accepted = self.topk.try_update(candidate, label=self._layers_for(positions))
        if accepted:
            self.stats.updates_accepted += 1
        return accepted

    # ------------------------------------------------------------------

    def _generate(self, positions, core, banned):
        """The BU-Gen procedure (Fig. 3), over search positions."""
        highest = positions[-1] if positions else -1
        available = [p for p in range(highest + 1, len(self.order))
                     if p not in banned]
        expandable = []

        if not self.topk.is_full:
            # Cases 1 and 2: no pruning is possible yet.
            for position in available:
                child_positions, child = self._child_core(positions, core, position)
                if len(child_positions) == self.s:
                    self._offer(child_positions, child)
                else:
                    expandable.append((position, child))
        else:
            # Case 3 plus Lemma 3 ordering and Lemma 4 layer pruning.
            ordered = sorted(
                available,
                key=lambda p: len(core & self.cores[self.order[p]]),
                reverse=True,
            )
            for rank, position in enumerate(ordered):
                # Recomputed every iteration: accepted updates grow Cov(R)
                # and tighten the Lemma 3 bound for the remaining children.
                threshold = (
                    self.topk.cover_size + self.topk.k * self.topk.min_exclusive()
                )
                bound_size = len(core & self.cores[self.order[position]])
                if self.use_order_pruning and bound_size * self.topk.k < threshold:
                    # Lemma 3: this child and all later (smaller-bound)
                    # children cannot satisfy Eq. (1).
                    self.stats.candidates_pruned += len(ordered) - rank
                    break
                child_positions, child = self._child_core(positions, core, position)
                if len(child_positions) == self.s:
                    self._offer(child_positions, child)
                elif self.topk.satisfies_replacement(child):
                    expandable.append((position, child))
                else:
                    # Lemma 2 cuts the subtree; Lemma 4 additionally bans
                    # the layer from every deeper subtree below `positions`.
                    self.stats.candidates_pruned += 1

        if len(positions) + 1 < self.s and expandable:
            kept = {position for position, _ in expandable}
            if self.use_layer_pruning:
                child_banned = banned | (set(available) - kept)
            else:
                child_banned = banned
            for position, child in expandable:
                self._generate(positions + (position,), child, child_banned)
