"""Greedy initialisation of the top-k result set (Appendix D, Fig. 37).

``InitTopK`` fills ``R`` with ``k`` quickly computed d-CCs before the real
search begins, because the Eq. (1) pruning rules of both search algorithms
only fire once ``|R| = k``.  Each seed is built by

1. picking the layer whose d-core adds the most new vertices to the
   current cover,
2. greedily intersecting in ``s - 1`` further layers that keep the
   intersection largest,
3. peeling the intersection down to the exact d-CC of the chosen layer
   subset and offering it to ``Update``.
"""

from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import coherent_core


def init_topk(graph, d, s, k, cores, topk=None, within=None, stats=None):
    """Seed a :class:`DiversifiedTopK` with ``k`` greedy candidates.

    Parameters
    ----------
    cores:
        Per-layer d-cores (from preprocessing) — ``cores[i] = C^d(G_i)``.
    topk:
        An existing result holder to fill; a fresh one is created if absent.
    within:
        Optional vertex restriction (the preprocessing ``alive`` set).

    Returns the (possibly new) :class:`DiversifiedTopK`.
    """
    if topk is None:
        topk = DiversifiedTopK(k)
    num_layers = graph.num_layers
    for _ in range(k):
        covered = topk.cover()
        best_layer = None
        best_gain = -1
        for layer in range(num_layers):
            gain = len(cores[layer] - covered)
            if gain > best_gain:
                best_gain = gain
                best_layer = layer
        chosen = {best_layer}
        candidate = set(cores[best_layer])
        if within is not None:
            candidate &= within
        for _ in range(s - 1):
            best_layer = None
            best_size = -1
            for layer in range(num_layers):
                if layer in chosen:
                    continue
                size = len(candidate & cores[layer])
                if size > best_size:
                    best_size = size
                    best_layer = layer
            chosen.add(best_layer)
            candidate &= cores[best_layer]
        core = coherent_core(
            graph, sorted(chosen), d, within=candidate, stats=stats
        )
        accepted = topk.try_update(core, label=tuple(sorted(chosen)))
        if stats is not None and accepted:
            stats.updates_accepted += 1
    return topk
