"""The top-down DCCS algorithm TD-DCCS (Section V, Figs. 8 and 11).

TD-DCCS is the algorithm of choice for large support thresholds
(``s >= l/2``): the search tree of Fig. 5 starts from the d-CC w.r.t. *all*
layers and removes one layer per edge down to level ``s``, so only
``sum_{i=s}^{l} binom(l, i)`` nodes exist — few when ``s`` is large.

Each node carries, besides its d-CC ``C_L``, a *potential vertex set*
``U_L`` that over-approximates every descendant candidate (Fig. 6);
``U_L`` is shrunk along tree edges by RefineU and the exact child d-CC is
recovered inside it by RefineC over the hierarchical index.  Pruning:

* **search-tree pruning** (Lemma 5) — a node whose ``U_L`` fails the
  Eq. (1) replacement test can be cut entirely;
* **order-based pruning** (Lemma 6) — children visited in decreasing
  ``|U_{L−{j}}|``; once below ``|Cov(R)|/k + |Δ(R, C*)|`` the rest are cut;
* **potential-set pruning** (Lemma 7) — when ``C_L`` passes Eq. (1) and
  ``U_L`` is small enough (Eq. 2), at most one descendant can ever update
  ``R``; a random size-``s`` descendant is tried and the subtree skipped.

TD-DCCS attains the 1/4 approximation ratio of Theorem 4.

Like BU-DCCS, the recursion works with plain vertex sets through the
primitives of :mod:`repro.core.dcc`/:mod:`repro.core.refine` and the
hierarchical index, all of which speak the graph backend protocol — a
frozen CSR graph drops in transparently.
"""

from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import coherent_core, validate_search_params
from repro.core.index import CoreHierarchyIndex
from repro.core.initk import init_topk
from repro.core.preprocess import order_layers, vertex_deletion
from repro.core.refine import refine_core, refine_potential
from repro.core.result import result_from_topk
from repro.core.stats import SearchStats
from repro.utils.rng import make_rng
from repro.utils.timer import Timer


def td_dccs(graph, d, s, k,
            use_vertex_deletion=True,
            use_layer_sorting=True,
            use_init_topk=True,
            use_order_pruning=True,
            use_potential_pruning=True,
            use_index=True,
            seed=None,
            stats=None):
    """Run TD-DCCS; returns a :class:`~repro.core.result.DCCSResult`.

    ``use_index=False`` replaces RefineC by the plain dCC procedure (the
    No-index ablation); ``seed`` drives the random descendant choice of the
    Lemma 7 shortcut.
    """
    validate_search_params(graph, d, s, k)
    if stats is None:
        stats = SearchStats()
    rng = make_rng(seed)
    with Timer() as timer:
        prep = vertex_deletion(
            graph, d, s, enabled=use_vertex_deletion, stats=stats
        )
        topk = DiversifiedTopK(k)
        if use_init_topk:
            init_topk(
                graph, d, s, k, prep.cores,
                topk=topk, within=prep.alive, stats=stats,
            )
        # Ascending core size: small-core layers get large positions, so
        # the canonical top-down tree sheds them first (Section V-D).
        order = order_layers(prep.cores, descending=False,
                             enabled=use_layer_sorting)
        index = None
        if use_index:
            index = CoreHierarchyIndex(graph, d, within=prep.alive,
                                       stats=stats)
        search = _TopDownSearch(
            graph=graph,
            d=d,
            s=s,
            order=order,
            cores=prep.cores,
            topk=topk,
            index=index,
            rng=rng,
            stats=stats,
            use_order_pruning=use_order_pruning,
            use_potential_pruning=use_potential_pruning,
        )
        root_positions = frozenset(range(graph.num_layers))
        root_core = coherent_core(
            graph, graph.layers(), d, within=prep.alive, stats=stats
        )
        if s == graph.num_layers:
            # The root is the only candidate.
            stats.candidates_generated += 1
            if topk.try_update(root_core, label=tuple(graph.layers())):
                stats.updates_accepted += 1
        else:
            search.generate(root_positions, root_core, frozenset(prep.alive))
    return result_from_topk(topk, "top-down", (d, s, k), stats, timer.elapsed)


class _TopDownSearch:
    """State shared across the TD-Gen recursion (Fig. 8)."""

    def __init__(self, graph, d, s, order, cores, topk, index, rng, stats,
                 use_order_pruning, use_potential_pruning):
        self.graph = graph
        self.d = d
        self.s = s
        self.order = order
        self.cores = cores
        self.topk = topk
        self.index = index
        self.rng = rng
        self.stats = stats
        self.use_order_pruning = use_order_pruning
        self.use_potential_pruning = use_potential_pruning

    # ------------------------------------------------------------------

    def _layers_for(self, positions):
        return tuple(sorted(self.order[p] for p in positions))

    def _removable(self, positions):
        """``LR``: positions of ``L`` larger than the largest missing one."""
        missing_max = -1
        for position in range(len(self.order)):
            if position not in positions:
                missing_max = position
        return sorted(p for p in positions if p > missing_max)

    def _offer(self, positions, candidate):
        self.stats.candidates_generated += 1
        accepted = self.topk.try_update(
            candidate, label=self._layers_for(positions)
        )
        if accepted:
            self.stats.updates_accepted += 1
        return accepted

    def _make_child(self, positions, potential, drop):
        """Lines 3–5 of Fig. 8: RefineU then RefineC for ``L − {drop}``."""
        child_positions = frozenset(positions - {drop})
        child_potential = refine_potential(
            self.graph, self.d, self.s, potential, child_positions,
            self.order, self.cores, stats=self.stats,
        )
        child_core = refine_core(
            self.graph, self.d, child_positions, child_potential,
            self.order, self.index, stats=self.stats,
        )
        return child_positions, child_potential, child_core

    def _satisfies_eq2(self, potential_size):
        """Eq. (2) in exact integer arithmetic.

        ``|U| < (1/k + 1/k^2) |Cov| + (1 + 1/k) |Δ(R, C*)|`` becomes
        ``|U| k^2 < (k + 1) |Cov| + (k^2 + k) |Δ|``.
        """
        k = self.topk.k
        cover = self.topk.cover_size
        delta = self.topk.min_exclusive()
        return potential_size * k * k < (k + 1) * cover + (k * k + k) * delta

    def _random_descendant(self, positions):
        """Line 25 of Fig. 8: a random size-``s`` subset of ``L``.

        Only removable positions may be dropped; when they do not suffice
        to reach size ``s`` the caller falls back to recursion.
        """
        removable = self._removable(positions)
        surplus = len(positions) - self.s
        if surplus > len(removable):
            return None
        dropped = self.rng.sample(removable, surplus)
        return frozenset(positions - set(dropped))

    def generate_shard(self, root_positions, root_core, root_potential, drop):
        """Explore only the root child obtained by dropping ``drop``.

        The shard entry point of the parallel subsystem
        (:mod:`repro.parallel`): at the root every position is removable,
        so the tree partitions by which layer is shed first.  Each shard
        replays the root-level handling of :meth:`generate` for its
        single child — RefineU/RefineC, the level-``s`` offer, the
        Lemma 5 potential test — and then recurses as usual.  The
        cross-child Lemma 6 ordering cannot span shards and is skipped at
        this level (it applies unchanged inside the shard).
        """
        child_positions, child_potential, child_core = self._make_child(
            root_positions, root_potential, drop
        )
        if len(child_positions) == self.s:
            self._offer(child_positions, child_core)
        elif not self.topk.is_full or self.topk.satisfies_replacement(
            self.topk.gain_size(child_potential)
        ):
            self.generate(child_positions, child_core, child_potential)
        else:
            # Lemma 5 at the root of the shard.
            self.stats.candidates_pruned += 1

    # ------------------------------------------------------------------

    def generate(self, positions, core, potential):
        """The TD-Gen procedure (Fig. 8)."""
        removable = self._removable(positions)
        children = [
            self._make_child(positions, potential, drop)
            for drop in removable
        ]

        if not self.topk.is_full:
            for child_positions, child_potential, child_core in children:
                if len(child_positions) == self.s:
                    self._offer(child_positions, child_core)
                else:
                    self.generate(child_positions, child_core, child_potential)
            return

        children.sort(key=lambda child: len(child[1]), reverse=True)
        for rank, (child_positions, child_potential, child_core) in enumerate(children):
            threshold = (
                self.topk.cover_size + self.topk.k * self.topk.min_exclusive()
            )
            if (
                self.use_order_pruning
                and len(child_potential) * self.topk.k < threshold
            ):
                # Lemma 6: this child and all later (smaller-U) ones are out.
                self.stats.candidates_pruned += len(children) - rank
                break
            if len(child_positions) == self.s:
                self._offer(child_positions, child_core)
                continue
            if not self.topk.satisfies_replacement(
                self.topk.gain_size(child_potential)
            ):
                # Lemma 5: no descendant can pass Eq. (1).
                self.stats.candidates_pruned += 1
                continue
            if (
                self.use_potential_pruning
                and self.topk.satisfies_replacement(child_core)
                and self._satisfies_eq2(len(child_potential))
            ):
                descendant = self._random_descendant(child_positions)
                if descendant is not None:
                    # Lemma 7: a single random descendant suffices.
                    candidate = coherent_core(
                        self.graph, self._layers_for(descendant), self.d,
                        within=child_potential, stats=self.stats,
                    )
                    self._offer(descendant, candidate)
                    self.stats.candidates_pruned += 1
                    continue
            self.generate(child_positions, child_core, child_potential)
