"""Single-layer d-core computation (Batagelj & Zaversnik, reference [3]).

Three entry points:

* :func:`layer_core` — the backend-dispatching form: the d-core of one
  layer of a multi-layer graph, routed to the CSR kernel when the graph
  is frozen and to :func:`d_core` otherwise.  New code should call this.
* :func:`d_core` — the dict-backend peel: the maximal vertex set whose
  induced subgraph has minimum degree ``>= d``, computed by cascade
  peeling in ``O(n + m)`` over a raw adjacency dict
  ``{vertex: set(neighbours)}`` (what :meth:`MultiLayerGraph.adjacency`
  returns), optionally restricted to a vertex subset;
* :func:`core_decomposition` — the full core number of every vertex (the
  classic O(m) bin-sort algorithm), used by tests and by layer-ordering
  heuristics.  :func:`layer_core_decomposition` is its
  backend-dispatching form: on a frozen graph with the numpy kernel
  tier active it routes the membership/degree bookkeeping to the
  vectorised ascending-threshold cascade
  (:func:`repro.graph.kernels.np_core_decomposition`), identical
  result, flat-array cost.
"""

from repro.utils.errors import ParameterError


def layer_core(graph, layer, d, within=None):
    """The d-core of ``graph``'s ``layer`` through the backend protocol.

    Dispatches to the flat-array kernel for a frozen (CSR) graph and to
    the dict peel otherwise; both return the same set (of the graph's own
    vertex vocabulary).
    """
    if getattr(graph, "is_sharded", False):
        # The sharded coordinator validates its own arguments (this
        # dispatch runs before any frozen-path checks would).
        return graph.layer_core(layer, d, within=within)
    if graph.is_frozen:
        from repro.graph.frozen import frozen_layer_core

        return frozen_layer_core(graph, layer, d, within=within)
    return d_core(graph.adjacency(layer), d, within=within)


def d_core(adjacency, d, within=None):
    """The d-core of a single-layer graph as a :class:`set`.

    Parameters
    ----------
    adjacency:
        ``{vertex: set(neighbours)}`` for the layer.
    d:
        Minimum-degree threshold, ``d >= 0``.
    within:
        Optional vertex subset; the core is then computed on the induced
        subgraph, without copying it.

    The 0-core is the whole (restricted) vertex set.  Peeling repeatedly
    deletes any vertex whose remaining degree drops below ``d``; a FIFO of
    violating vertices makes each edge be touched O(1) times.
    """
    if d < 0:
        raise ParameterError("d must be non-negative, got {}".format(d))
    if within is None:
        alive = set(adjacency)
        degree = {v: len(neighbors) for v, neighbors in adjacency.items()}
    else:
        alive = set(within) & set(adjacency)
        degree = {v: len(adjacency[v] & alive) for v in alive}
    if d == 0:
        return alive
    queue = [v for v, deg in degree.items() if deg < d]
    in_queue = set(queue)
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        alive.discard(v)
        for u in adjacency[v]:
            if u in alive and u not in in_queue:
                degree[u] -= 1
                if degree[u] < d:
                    queue.append(u)
                    in_queue.add(u)
    return alive


def core_decomposition(adjacency, within=None):
    """Core numbers of every vertex via the O(m) bin-sort algorithm.

    Returns ``{vertex: core_number}``.  The implementation is the classic
    Batagelj–Zaversnik array scheme with ``bin``, ``ver`` (actually named
    ``order`` here) and ``pos`` arrays — the same bookkeeping the paper's
    Appendix B dCC procedure (Fig. 35) generalises to multiple layers.
    """
    if within is None:
        vertices = list(adjacency)
        member = set(vertices)
    else:
        member = set(within) & set(adjacency)
        vertices = list(member)
    if not vertices:
        return {}
    degree = {v: len(adjacency[v] & member) if within is not None else len(adjacency[v])
              for v in vertices}
    max_degree = max(degree.values())

    # bin[i] = index in `order` of the first vertex with current degree i.
    counts = [0] * (max_degree + 1)
    for v in vertices:
        counts[degree[v]] += 1
    bins = [0] * (max_degree + 2)
    start = 0
    for deg in range(max_degree + 1):
        bins[deg] = start
        start += counts[deg]
    order = [None] * len(vertices)
    pos = {}
    fill = list(bins[: max_degree + 1])
    for v in vertices:
        pos[v] = fill[degree[v]]
        order[pos[v]] = v
        fill[degree[v]] += 1

    core = dict(degree)
    for i in range(len(order)):
        v = order[i]
        for u in adjacency[v]:
            if u not in member:
                continue
            if core[u] > core[v]:
                # Move u one bin down: swap it with the first vertex of its
                # current bin, then advance that bin's start.
                deg_u = core[u]
                first_pos = bins[deg_u]
                first_vertex = order[first_pos]
                if first_vertex != u:
                    order[pos[u]], order[first_pos] = first_vertex, u
                    pos[first_vertex], pos[u] = pos[u], first_pos
                bins[deg_u] += 1
                core[u] -= 1
    return core


def layer_core_decomposition(graph, layer, within=None):
    """Core numbers of one layer through the backend protocol.

    Equal, key for key, to ``core_decomposition(graph.adjacency(layer),
    within)`` on every backend; a frozen graph running the numpy kernel
    tier skips the adjacency-dict materialisation entirely and peels
    thresholds over the CSR arrays instead.
    """
    if graph.is_frozen and graph.kernel == "numpy":
        from repro.graph.kernels import np_core_decomposition

        return np_core_decomposition(graph, layer, within=within)
    return core_decomposition(graph.adjacency(layer), within=within)


def core_sizes_by_threshold(adjacency, within=None):
    """``{d: |d-core|}`` for every achievable d, from one decomposition.

    The size of the d-core equals the number of vertices with core number
    ``>= d``; this helper materialises that histogram, which the layer
    sorting preprocessing (Section IV-C) consults repeatedly.
    """
    return _core_size_histogram(
        core_decomposition(adjacency, within=within)
    )


def layer_core_sizes(graph, layer, within=None):
    """``{d: |d-core|}`` of one layer through the backend protocol."""
    return _core_size_histogram(
        layer_core_decomposition(graph, layer, within=within)
    )


def _core_size_histogram(core):
    if not core:
        return {0: 0}
    max_core = max(core.values())
    sizes = {}
    count_at = [0] * (max_core + 2)
    for value in core.values():
        count_at[value] += 1
    running = 0
    for d in range(max_core, -1, -1):
        running += count_at[d]
        sizes[d] = running
    return sizes
