"""Dynamic maintenance of a d-coherent core under edge updates.

The paper computes d-CCs on static snapshots; its motivating
applications (story identification over a sliding window, interaction
networks growing over time) are naturally *dynamic*.  This module keeps
``C^d_L(G)`` current while edges arrive and depart, using two exact
locality rules:

* **Deletion** of an edge with at least one endpoint outside the core
  never changes the core (the peeling trace that eliminated the outside
  vertices is still valid, and the core itself lost nothing).  Deleting
  an edge *inside* the core can only shrink it, and the shrinkage is the
  cascade peel seeded at the two endpoints.
* **Insertion** of an edge between two core members never changes the
  core (outside vertices were peeled for reasons the new edge does not
  touch).  An insertion with an endpoint outside can only grow the core,
  and the old core never shrinks, so recomputation may start from the
  union of the old core with the affected region.

Both rules are proved by peeling confluence: the d-CC is the unique
fixed point of "delete any vertex violating the degree bound", so any
valid elimination order certifies the result.
"""

from repro.core.dcc import _normalize_layers, coherent_core
from repro.utils.errors import ParameterError


class CoherentCoreTracker:
    """Track ``C^d_L`` of a multi-layer graph across edge updates.

    The tracker owns its graph copy — mutate through :meth:`add_edge` /
    :meth:`remove_edge` only, otherwise the cached core goes stale (a
    :meth:`refresh` escape hatch recomputes from scratch).

    Parameters
    ----------
    graph:
        Initial multi-layer graph (deep-copied).
    layers:
        The layer subset ``L`` the tracked core refers to.
    d:
        The degree threshold.

    Examples
    --------
    >>> from repro.graph import replicate_layer
    >>> g = replicate_layer([(0, 1), (1, 2), (0, 2)], 2)
    >>> tracker = CoherentCoreTracker(g, [0, 1], 2)
    >>> sorted(tracker.core)
    [0, 1, 2]
    >>> tracker.remove_edge(0, 0, 1)
    >>> sorted(tracker.core)
    []
    """

    def __init__(self, graph, layers, d):
        if d < 0:
            raise ParameterError("d must be non-negative")
        self._layers = _normalize_layers(graph, layers)
        self._tracked = frozenset(self._layers)
        self._d = d
        self._graph = graph.copy()
        self._core = coherent_core(self._graph, self._layers, d)
        self.recomputations = 0
        self.incremental_updates = 0

    @property
    def core(self):
        """The current ``C^d_L`` as a frozenset."""
        return self._core

    @property
    def graph(self):
        """The tracked graph (treat as read-only)."""
        return self._graph

    # ------------------------------------------------------------------

    def add_edge(self, layer, u, v):
        """Insert an edge and update the core incrementally."""
        self._graph.add_edge(layer, u, v)
        if layer not in self._tracked:
            return
        if u in self._core and v in self._core:
            # Both endpoints already inside: the old peeling trace for
            # every outside vertex is untouched, so the core is stable.
            self.incremental_updates += 1
            return
        # The core can only grow under insertion, and every vertex it
        # gains is reachable from an endpoint through the affected
        # region, so recomputation restricted to ``old core ∪ region``
        # is exact (see _affected_region for the proof sketch).
        self.recomputations += 1
        seed = self._core | self._affected_region(u, v)
        new_core = coherent_core(self._graph, self._layers, self._d,
                                 within=seed)
        assert self._core <= new_core, (
            "insertion shrank the tracked core — seeded recomputation "
            "violated monotonicity"
        )
        self._core = new_core

    def remove_edge(self, layer, u, v):
        """Delete an edge and update the core incrementally."""
        self._graph.remove_edge(layer, u, v)
        if layer not in self._tracked:
            return
        if u not in self._core or v not in self._core:
            # The lost edge never supported the core's density, and
            # outside vertices only got weaker: nothing changes.
            self.incremental_updates += 1
            return
        # Cascade peel inside the old core, seeded at the endpoints.
        self.incremental_updates += 1
        self._core = self._peel_within_core()

    def refresh(self):
        """Recompute from scratch (after out-of-band graph mutation)."""
        self.recomputations += 1
        self._core = coherent_core(self._graph, self._layers, self._d)
        return self._core

    # ------------------------------------------------------------------

    def _affected_region(self, u, v):
        """Vertices the inserted edge ``(u, v)`` could pull into the core.

        Let ``C'`` be the true core after insertion and ``D = C' \\ C``.
        Deleting the edge back makes every vertex of ``C'`` except
        possibly ``u``/``v`` degree-valid, so peeling ``C'`` in the old
        graph cascades only from the endpoints — and the remainder is a
        valid old-graph core, hence a subset of ``C``.  Every vertex of
        ``D`` is therefore on a cascade path from an endpoint, and every
        cascade vertex is in ``C'``, so its *full-graph* degree is at
        least ``d`` on every tracked layer.  BFS from the endpoints
        through such vertices thus covers ``D``, and restricting the
        recomputation to ``C ∪ region`` is exact.
        """
        graph = self._graph
        d = self._d

        def qualifies(vertex):
            return all(
                graph.degree(layer, vertex) >= d for layer in self._layers
            )

        frontier = [w for w in (u, v) if qualifies(w)]
        region = set(frontier)
        while frontier:
            vertex = frontier.pop()
            for layer in self._layers:
                for neighbor in graph.neighbors(layer, vertex):
                    if neighbor not in region and qualifies(neighbor):
                        region.add(neighbor)
                        frontier.append(neighbor)
        return region

    def _peel_within_core(self):
        """Exact shrink: peel the old core down to the new fixed point.

        Deletion can only shrink the core, and the new core is a subset
        of the old one (the old core minus the cascade), so peeling
        restricted to the old core is exact.
        """
        alive = set(self._core)
        adjacencies = [self._graph.adjacency(layer) for layer in self._layers]
        degrees = [
            {vertex: len(adjacency[vertex] & alive) for vertex in alive}
            for adjacency in adjacencies
        ]
        queue = [
            vertex for vertex in alive
            if any(degree[vertex] < self._d for degree in degrees)
        ]
        queued = set(queue)
        head = 0
        while head < len(queue):
            vertex = queue[head]
            head += 1
            alive.discard(vertex)
            for adjacency, degree in zip(adjacencies, degrees):
                for neighbor in adjacency[vertex]:
                    if neighbor in alive and neighbor not in queued:
                        degree[neighbor] -= 1
                        if degree[neighbor] < self._d:
                            queue.append(neighbor)
                            queued.add(neighbor)
        return frozenset(alive)

    def check(self):
        """Verify the cached core against a scratch recomputation."""
        expected = coherent_core(self._graph, self._layers, self._d)
        if expected != self._core:
            raise AssertionError(
                "tracked core drifted: {} vs {}".format(
                    sorted(self._core, key=str), sorted(expected, key=str)
                )
            )
        return True

    def __repr__(self):
        return "CoherentCoreTracker(L={}, d={}, |core|={})".format(
            self._layers, self._d, len(self._core)
        )
