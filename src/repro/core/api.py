"""The unified public entry point for diversified coherent core search.

:func:`search_dccs` hides the choice between the three algorithms of the
paper behind one call.  The default ``method="auto"`` applies the paper's
own guidance (end of Section I): the bottom-up search wins for
``s < l/2``, the top-down search for ``s >= l/2``.
"""

from repro.core.bottomup import bu_dccs
from repro.core.greedy import gd_dccs
from repro.core.topdown import td_dccs
from repro.utils.errors import ParameterError

_METHODS = ("auto", "greedy", "bottom-up", "top-down")


def choose_method(num_layers, s):
    """The paper's dispatch rule: BU for ``s < l/2``, TD otherwise."""
    return "bottom-up" if s < num_layers / 2 else "top-down"


def search_dccs(graph, d, s, k, method="auto", **options):
    """Find the top-k diversified d-CCs of ``graph`` on ``s`` layers.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.multilayer.MultiLayerGraph`.
    d:
        Minimum degree inside the reported subgraphs.
    s:
        Minimum support — the number of layers each d-CC must recur on.
    k:
        Number of diversified d-CCs to report.
    method:
        ``"auto"`` (default), ``"greedy"``, ``"bottom-up"`` or
        ``"top-down"``.
    options:
        Forwarded to the chosen algorithm (preprocessing and pruning
        switches, ``seed`` for top-down, ``stats``).

    Returns
    -------
    :class:`~repro.core.result.DCCSResult`

    Examples
    --------
    >>> from repro.graph import paper_figure1_graph
    >>> result = search_dccs(paper_figure1_graph(), d=3, s=2, k=2)
    >>> result.cover_size    # the union of C_{1,3} and C_{2,4}
    13
    """
    if method not in _METHODS:
        raise ParameterError(
            "method must be one of {}, got {!r}".format(_METHODS, method)
        )
    if method == "auto":
        method = choose_method(graph.num_layers, s)
    if method == "greedy":
        options.pop("seed", None)
        return gd_dccs(graph, d, s, k, **options)
    if method == "bottom-up":
        options.pop("seed", None)
        return bu_dccs(graph, d, s, k, **options)
    return td_dccs(graph, d, s, k, **options)
