"""The unified public entry point for diversified coherent core search.

:func:`search_dccs` hides the choice between the three algorithms of the
paper behind one call.  The default ``method="auto"`` applies the paper's
own guidance (end of Section I): the bottom-up search wins for
``s < l/2``, the top-down search for ``s >= l/2``.

It also hides the choice of graph *backend* (see
:mod:`repro.graph.backend`): ``backend="auto"`` freezes the graph into
the flat-array CSR representation when the O(n + m) freeze cost is
profitable, runs the search there, and translates the reported vertex
sets back to the caller's labels — results are identical between
backends, bit for bit, only the wall clock differs.

Finally it hides the *execution mode*: ``jobs=None`` (default) runs the
classic single-process algorithms, while any other value wraps a
short-lived :class:`repro.engine.DCCEngine` session around the call —
the sharded parallel search of :mod:`repro.parallel` over one shared
graph.  Parallel results are bitwise identical for every worker count
(and, for the greedy method, identical to the sequential run as well);
callers issuing many searches over one graph should hold a ``DCCEngine``
open themselves and amortise the pool across queries.
"""

from repro.core.bottomup import bu_dccs
from repro.core.greedy import gd_dccs
from repro.core.topdown import td_dccs
from repro.graph.backend import resolve_search_graph
from repro.graph.kernels import resolve_kernel
from repro.utils.errors import ParameterError
from repro.utils.timer import Timer

_METHODS = ("auto", "greedy", "bottom-up", "top-down")


def choose_method(num_layers, s):
    """The paper's dispatch rule: BU for ``s < l/2``, TD otherwise."""
    return "bottom-up" if s < num_layers / 2 else "top-down"


def resolve_method(num_layers, method, s, options):
    """Validate and resolve ``method``, normalising ``options`` in place.

    The one copy of the dispatch rules both entry points share —
    :func:`search_dccs` and :meth:`repro.engine.DCCEngine.search` must
    agree on them exactly, or their bitwise-equality contract breaks:
    ``"auto"`` resolves via :func:`choose_method`, and a ``seed`` is
    dropped for every method but top-down (only the Lemma 7 shortcut is
    randomised; the other methods silently ignore a seed so callers can
    sweep methods with uniform arguments).
    """
    if method not in _METHODS:
        raise ParameterError(
            "method must be one of {}, got {!r}".format(_METHODS, method)
        )
    if method == "auto":
        method = choose_method(num_layers, s)
    if method != "top-down":
        options.pop("seed", None)
    return method


def _engine_one_shot(graph, d, s, k, method, backend, jobs, kernel,
                     shards, options):
    """Route one search through a short-lived :class:`DCCEngine`.

    ``search_dccs(..., jobs=N)`` *is* an engine session of length one:
    the engine resolves the backend, spawns the pool, runs the sharded
    search and translates the results, and is closed before returning —
    which is exactly what makes its output bitwise identical to a warm
    engine serving the same query.  ``shards=N`` (``N > 1``) selects a
    :class:`~repro.shard.engine.ShardedEngine` — the graph partitioned
    into N blocks, results still bitwise identical.  Imported lazily:
    the engine pulls in multiprocessing plumbing that purely sequential
    callers never need.
    """
    if shards is not None and shards > 1:
        from repro.shard.engine import ShardedEngine

        with ShardedEngine(graph, shards=shards, backend=backend,
                           jobs=jobs, kernel=kernel) as engine:
            return engine.search(d, s, k, method=method, **options)
    from repro.engine import DCCEngine

    with DCCEngine(graph, backend=backend, jobs=jobs,
                   kernel=kernel) as engine:
        return engine.search(d, s, k, method=method, **options)


def search_dccs(graph, d, s, k, method="auto", backend="auto", jobs=None,
                kernel="auto", shards=None, **options):
    """Find the top-k diversified d-CCs of ``graph`` on ``s`` layers.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.multilayer.MultiLayerGraph` or an
        already-frozen :class:`~repro.graph.frozen.FrozenMultiLayerGraph`.
    d:
        Minimum degree inside the reported subgraphs.
    s:
        Minimum support — the number of layers each d-CC must recur on.
    k:
        Number of diversified d-CCs to report.
    method:
        ``"auto"`` (default), ``"greedy"``, ``"bottom-up"`` or
        ``"top-down"``.
    backend:
        ``"auto"`` (default — freeze when profitable), ``"dict"`` or
        ``"frozen"``.  Reported sets are always in the vocabulary of the
        graph that was passed in.
    jobs:
        ``None`` (default) runs the classic single-process algorithms.
        Any other value routes through :mod:`repro.parallel`: ``0``
        shards across one worker process per CPU, a positive integer
        across exactly that many.  For a fixed ``seed``, results are
        bitwise identical — sets, labels and aggregated counters — for
        every ``jobs`` value (``jobs=1`` executes the same sharded
        search inline).  The greedy method additionally matches the
        sequential run exactly; the tree searches are documented shard
        variants (see :mod:`repro.parallel.search`).
    kernel:
        Peel-kernel tier for the frozen backend: ``"auto"`` (default —
        numpy when importable, pure Python otherwise), ``"python"`` or
        ``"numpy"``.  Results are bitwise identical between tiers, only
        the wall clock differs; a non-``"auto"`` choice is remembered on
        the resolved frozen graph for subsequent searches over it.  The
        dict backend has one implementation and ignores the flag.
    shards:
        ``None`` (default) serves the graph whole.  ``N > 1``
        partitions the frozen graph into ``N`` vertex-range blocks and
        runs the distributed scatter/gather peel over them (see
        :mod:`repro.shard`) — results are bitwise identical to the
        unsharded run for every ``N``.  Any non-``None`` value implies
        an engine session (``1`` is an unsharded engine, the baseline
        the sharded runs are bitwise equal to), so ``jobs=None`` is
        treated as ``jobs=1``; ``N > 1`` is incompatible with
        ``backend="dict"``.
    options:
        Forwarded to the chosen algorithm (preprocessing and pruning
        switches, ``seed`` for top-down, ``stats``).

    Returns
    -------
    :class:`~repro.core.result.DCCSResult`

    Examples
    --------
    >>> from repro.graph import paper_figure1_graph
    >>> result = search_dccs(paper_figure1_graph(), d=3, s=2, k=2)
    >>> result.cover_size    # the union of C_{1,3} and C_{2,4}
    13
    """
    if method not in _METHODS:
        raise ParameterError(
            "method must be one of {}, got {!r}".format(_METHODS, method)
        )
    # Validate eagerly (and fail an explicit "numpy" request in a
    # numpy-less interpreter) no matter which backend ends up serving.
    resolve_kernel(kernel)
    if shards is not None:
        from repro.shard.partition import check_shards

        check_shards(shards)
    if jobs is not None or shards is not None:
        from repro.parallel import check_jobs

        check_jobs(jobs)
        return _engine_one_shot(graph, d, s, k, method, backend,
                                1 if jobs is None else jobs,
                                kernel, shards, options)
    # Backend resolution (a possible O(n + m) freeze — cached on the
    # graph, so repeated searches pay it once) and the final id-to-label
    # translation are charged to the result's elapsed time: reported
    # timings must not get faster by moving work outside the clock.
    with Timer() as overhead:
        search_graph, translate = resolve_search_graph(graph, backend)
        if kernel != "auto" and search_graph.is_frozen:
            search_graph.set_kernel(kernel)
    method = resolve_method(search_graph.num_layers, method, s, options)
    if method == "greedy":
        result = gd_dccs(search_graph, d, s, k, **options)
    elif method == "bottom-up":
        result = bu_dccs(search_graph, d, s, k, **options)
    else:
        result = td_dccs(search_graph, d, s, k, **options)
    result.elapsed += overhead.elapsed
    if translate:
        # The search ran on an internally frozen copy: convert the dense
        # ids back to the labels of the graph the caller handed us.
        with Timer() as translation:
            result.sets = [
                search_graph.labels_for(members) for members in result.sets
            ]
        result.elapsed += translation.elapsed
    return result
