"""The greedy DCCS algorithm GD-DCCS (Section III, Fig. 2).

GD-DCCS materialises the entire candidate family ``F_{d,s}(G)`` — one d-CC
per layer subset of size ``s``, computed on the Lemma 1 intersection bound
— and then runs the classic greedy max-k-cover selection over it, which
carries the ``1 - 1/e`` approximation guarantee (Theorem 2).

Its cost is dominated by the ``binom(l, s)`` candidate computations and by
keeping all of ``F`` in memory, which is exactly the scalability weakness
the bottom-up and top-down algorithms remove.
"""

from repro.core.dcc import enumerate_candidates, validate_search_params
from repro.core.preprocess import vertex_deletion
from repro.core.result import DCCSResult
from repro.core.stats import SearchStats
from repro.utils.timer import Timer


def gd_dccs(graph, d, s, k, use_vertex_deletion=True, stats=None):
    """Run GD-DCCS; returns a :class:`~repro.core.result.DCCSResult`.

    Parameters
    ----------
    graph:
        The multi-layer graph.
    d, s, k:
        Minimum degree, minimum support (layer count), result count.
    use_vertex_deletion:
        The paper applies the Section IV-C vertex-deletion preprocessing to
        every algorithm "for fairness"; disable for the No-VD ablation.
    stats:
        Optional shared :class:`SearchStats`.
    """
    validate_search_params(graph, d, s, k)
    if stats is None:
        stats = SearchStats()
    with Timer() as timer:
        prep = vertex_deletion(
            graph, d, s, enabled=use_vertex_deletion, stats=stats
        )
        candidates = _generate_candidates(graph, d, s, prep, stats)
        chosen = greedy_max_k_cover(candidates, k)
    result = DCCSResult(
        sets=[members for _, members in chosen],
        labels=[label for label, _ in chosen],
        algorithm="greedy",
        params=(d, s, k),
        stats=stats,
        elapsed=timer.elapsed,
    )
    stats.extra["candidate_family_size"] = len(candidates)
    return result


def _generate_candidates(graph, d, s, prep, stats):
    """Lines 4–7 of Fig. 2: one d-CC per size-``s`` layer subset.

    Delegates to :func:`~repro.core.dcc.enumerate_candidates` (sharing the
    preprocessed per-layer cores), which applies the Lemma 1 intersection
    bound and — on the frozen backend — the bitmask signature fast path.
    """
    candidates = []
    for layer_subset, core in enumerate_candidates(
        graph, d, s, cores=prep.cores, stats=stats
    ):
        stats.candidates_generated += 1
        candidates.append((layer_subset, core))
    return candidates


def greedy_max_k_cover(candidates, k):
    """Greedy max-k-cover over ``(label, vertex-set)`` pairs (lines 8–10).

    Repeatedly picks the candidate with the largest marginal cover gain.
    Candidates with zero gain are only taken once nothing positive is left,
    and empty candidates are never taken — a set that adds nothing cannot
    help the cover, and returning fewer than ``k`` sets is more honest than
    padding with duplicates.
    """
    covered = set()
    remaining = list(candidates)
    chosen = []
    while remaining and len(chosen) < k:
        best_index = -1
        best_gain = -1
        for index, (_, members) in enumerate(remaining):
            gain = len(members - covered)
            if gain > best_gain:
                best_gain = gain
                best_index = index
        if best_gain <= 0:
            break
        label, members = remaining.pop(best_index)
        chosen.append((label, members))
        covered |= members
    return chosen
