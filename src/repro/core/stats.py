"""Instrumentation counters shared by every DCCS algorithm.

The paper's efficiency claims are about *search effort*: BU-DCCS "reduces
the search space by 80–90 %" relative to GD-DCCS, and TD-DCCS examines even
fewer candidates for large ``s``.  Wall-clock time in Python is noisy and
machine-bound, so every algorithm also reports these counters, which make
the claims checkable deterministically.
"""

from dataclasses import dataclass, field


@dataclass
class SearchStats:
    """Counters accumulated during one DCCS run.

    Attributes
    ----------
    dcc_calls:
        Number of d-CC (or RefineC) computations performed — the paper's
        notion of "candidate d-CCs examined".
    candidates_generated:
        Candidate d-CCs at level ``s`` that were handed to ``Update``.
    candidates_pruned:
        Subtrees cut by Lemmas 2–7 (each counted once at the cut point).
    updates_accepted:
        Calls to ``Update`` that changed the temporary result set.
    vertices_deleted:
        Vertices removed by the vertex-deletion preprocessing.
    peel_operations:
        Individual vertex removals inside peeling loops (a proxy for the
        ``O(n + m)`` work of the dCC procedure).
    """

    dcc_calls: int = 0
    candidates_generated: int = 0
    candidates_pruned: int = 0
    updates_accepted: int = 0
    vertices_deleted: int = 0
    peel_operations: int = 0
    extra: dict = field(default_factory=dict)

    def merge(self, other):
        """Accumulate another stats object into this one."""
        self.dcc_calls += other.dcc_calls
        self.candidates_generated += other.candidates_generated
        self.candidates_pruned += other.candidates_pruned
        self.updates_accepted += other.updates_accepted
        self.vertices_deleted += other.vertices_deleted
        self.peel_operations += other.peel_operations
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value
        return self

    def as_dict(self):
        """A flat dict (counters plus ``extra``) for table rendering."""
        payload = {
            "dcc_calls": self.dcc_calls,
            "candidates_generated": self.candidates_generated,
            "candidates_pruned": self.candidates_pruned,
            "updates_accepted": self.updates_accepted,
            "vertices_deleted": self.vertices_deleted,
            "peel_operations": self.peel_operations,
        }
        payload.update(self.extra)
        return payload
