"""Refinement of potential vertex sets and d-CCs (Sections V-B and V-C).

``refine_potential`` is the RefineU procedure (Fig. 9): it shrinks the
potential set ``U_L`` of a node of the top-down search tree to the
potential set ``U_{L'}`` of a child, alternating two sound filters until a
fixed point:

* **Method 1** — every Class-1 layer (a layer that can no longer be
  removed on the way down to level ``s``) must keep every vertex at degree
  ``>= d`` inside ``U``; this is exactly a coherent-core peel on those
  layers;
* **Method 2** — every surviving vertex must belong to the d-cores of at
  least ``s − |Class 1|`` of the Class-2 layers.

``refine_core`` plays the role of RefineC (Fig. 10): it computes the exact
``C^d_{L'}`` inside a potential set.  It applies the index filters of
Lemmas 8 and 9 (scope + level-monotone reachability — see
:meth:`CoreHierarchyIndex.reachable_scope`) and finishes with a linear
cascade peel.  **Deviation from the literal pseudocode:** Fig. 10's Case 2
discards every still-unexplored vertex on a mixed level, but such a vertex
can itself satisfy ``L' ⊆ L(v)`` and be a legitimate chain start (the
length-0 chain of Lemma 9), so the literal reading can discard true d-CC
members.  Our variant keeps exactly the vertices Lemmas 8 and 9 allow and
lets the final peel do the degree-based discarding that CascadeD performs
incrementally; the asymptotic cost is the same ``O(n'l' + m')``
(Lemma 10), and the property-based tests pin the output to the plain dCC
procedure.
"""

from repro.core.dcc import coherent_core


def split_layer_classes(positions, num_positions):
    """Split ``positions`` (a node of the TD tree) into Class 1 / Class 2.

    ``positions`` is the set of search positions still present in the node
    label ``L``.  Position ``p`` is Class 1 ("locked": never removable in
    any descendant) when ``p < max(missing positions)``; otherwise Class 2
    ("free").  At the root (nothing missing) every position is Class 2.
    """
    missing_max = -1
    member = set(positions)
    for position in range(num_positions):
        if position not in member:
            missing_max = position
    locked = {p for p in member if p < missing_max}
    free = member - locked
    return locked, free


def refine_potential(graph, d, s, potential, positions, order, cores,
                     stats=None):
    """RefineU (Fig. 9): shrink a parent's potential set for child ``L'``.

    Parameters
    ----------
    potential:
        ``U_L`` of the parent node (an iterable of vertices).
    positions:
        The child's layer-position set ``L'``.
    order:
        Position-to-layer mapping from the layer sorting preprocessing.
    cores:
        Global per-layer d-cores (within the preprocessed alive set).
    """
    locked, free = split_layer_classes(positions, len(order))
    locked_layers = tuple(sorted(order[p] for p in locked))
    free_layers = [order[p] for p in free]
    needed = s - len(locked)

    current = set(potential)
    if not current:
        return current

    # Method 2 first: free-layer core membership is static, so one pass
    # suffices and shrinks the set Method 1 has to peel.
    if needed > 0:
        current = {
            vertex
            for vertex in current
            if sum(1 for layer in free_layers
                   if vertex in cores[layer]) >= needed
        }

    # Method 1 as a single cascade peel on the locked layers.  The two
    # methods commute to the same fixed point because Method 2's test does
    # not depend on the surviving set, so re-running it after the peel
    # would remove nothing new.
    if locked_layers and current:
        current = set(
            coherent_core(graph, locked_layers, d, within=current,
                          stats=stats)
        )
    return current


def refine_core(graph, d, positions, potential, order, index, stats=None):
    """Compute the exact ``C^d_{L'}`` inside ``potential`` using the index.

    Steps: Lemma 8 scope cut, Lemma 9 reachability cut, then an exact
    cascade peel (the degree/CascadeD part of Fig. 10) on the survivors.
    ``index=None`` falls back to the plain dCC procedure — that is the
    No-index ablation of DESIGN.md.
    """
    layers = tuple(sorted(order[p] for p in positions))
    if index is None:
        return coherent_core(graph, layers, d, within=potential, stats=stats)
    zone = index.reachable_scope(layers, potential)
    return coherent_core(graph, layers, d, within=zone, stats=stats)
