"""Coherent-core decomposition: the full d-hierarchy for a layer subset.

Property 2 of the paper nests the d-CCs of a fixed layer subset ``L``:
``C^d_L ⊆ C^{d-1}_L ⊆ ... ⊆ C^0_L``.  This module computes the whole
chain in one pass by generalising the Batagelj–Zaversnik degeneracy
ordering to multiple layers:

* the **coherent core number** of a vertex w.r.t. ``L`` is the largest
  ``d`` such that the vertex belongs to ``C^d_L``;
* peeling vertices in ascending ``m(v) = min_{i in L} deg_i(v)`` order
  and recording the running maximum of ``m`` at removal yields exactly
  those numbers (the same argument as for single-layer cores: removals
  never increase any ``m``, so the running maximum at ``v``'s removal is
  both achievable and tight).

The paper computes one d-CC per ``(L, d)`` query; the decomposition
answers *every* ``d`` for a fixed ``L`` in ``O((n + m) |L| log n)`` and
is the natural building block for "choose d automatically" workflows
(see ``examples/parameter_explorer.py``).
"""

import heapq

from repro.core.dcc import _normalize_layers
from repro.utils.errors import ParameterError


def coherent_core_numbers(graph, layers, within=None):
    """``{vertex: max d with v ∈ C^d_L(G)}`` for every vertex considered.

    Parameters
    ----------
    graph:
        The multi-layer graph.
    layers:
        The layer subset ``L``.
    within:
        Optional vertex restriction.

    A vertex isolated on some layer of ``L`` gets core number 0.
    """
    layer_tuple = _normalize_layers(graph, layers)
    adjacencies = [graph.adjacency(layer) for layer in layer_tuple]
    if within is None:
        alive = graph.vertices()
    else:
        alive = {v for v in set(within) if graph.has_vertex(v)}

    degrees = []
    for adjacency in adjacencies:
        degrees.append({v: len(adjacency[v] & alive) for v in alive})
    m_value = {
        v: min(degree[v] for degree in degrees) for v in alive
    }

    # Lazy-deletion heap over m(v); stale entries are skipped on pop.
    heap = [(m, v) for v, m in m_value.items()]
    heapq.heapify(heap)
    core = {}
    running_max = 0
    removed = set()
    while heap:
        m, v = heapq.heappop(heap)
        if v in removed or m != m_value[v]:
            continue
        removed.add(v)
        running_max = max(running_max, m)
        core[v] = running_max
        for adjacency, degree in zip(adjacencies, degrees):
            for u in adjacency[v]:
                if u in alive and u not in removed:
                    degree[u] -= 1
        for adjacency in adjacencies:
            for u in adjacency[v]:
                if u in alive and u not in removed:
                    new_m = min(d[u] for d in degrees)
                    if new_m != m_value[u]:
                        m_value[u] = new_m
                        heapq.heappush(heap, (new_m, u))
    return core


def coherent_core_hierarchy(graph, layers, within=None):
    """The nested chain ``{d: C^d_L(G)}`` for every achievable ``d``.

    Derived from :func:`coherent_core_numbers`: ``C^d_L`` is the set of
    vertices with core number at least ``d``.  The returned dict covers
    ``d = 0 .. max core number``; Property 2 guarantees the chain nests.
    """
    numbers = coherent_core_numbers(graph, layers, within=within)
    if not numbers:
        return {0: frozenset()}
    top = max(numbers.values())
    chain = {}
    members = [set() for _ in range(top + 1)]
    for vertex, number in numbers.items():
        members[number].add(vertex)
    running = set()
    for d in range(top, -1, -1):
        running |= members[d]
        chain[d] = frozenset(running)
    return chain


def coherent_degeneracy(graph, layers, within=None):
    """The largest ``d`` for which ``C^d_L(G)`` is non-empty."""
    numbers = coherent_core_numbers(graph, layers, within=within)
    return max(numbers.values(), default=0)


def densest_coherent_core(graph, layers, within=None):
    """``(d_max, C^{d_max}_L)`` — the innermost non-empty core of the chain.

    The multi-layer analogue of the degeneracy core; a convenient
    parameter-free summary of the densest coherent region.
    """
    numbers = coherent_core_numbers(graph, layers, within=within)
    if not numbers:
        return 0, frozenset()
    top = max(numbers.values())
    return top, frozenset(
        v for v, number in numbers.items() if number >= top
    )


def suggest_degree_threshold(graph, layers, min_size=3, within=None):
    """The largest ``d`` whose coherent core still has ``min_size`` members.

    A pragmatic knob-turner: pick the strictest degree constraint that
    keeps a usable module, instead of guessing ``d`` by hand.
    """
    if min_size < 1:
        raise ParameterError("min_size must be positive")
    chain = coherent_core_hierarchy(graph, layers, within=within)
    best = 0
    for d in sorted(chain):
        if len(chain[d]) >= min_size:
            best = d
    return best
