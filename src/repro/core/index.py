"""The hierarchical vertex index of the top-down algorithm (Section V-C).

The index records the order in which vertices fall out of the graph as the
support threshold ``h`` grows:

* ``J_h`` — vertices iteratively removed because their support ``Num(v)``
  (the number of layers whose d-core contains ``v``) is at most ``h``;
* ``I_h = J_h − J_{h-1}`` — the slice removed at threshold ``h``;
* within one ``I_h``, vertices removed in the same cascading *batch* share
  a **level**, and later batches sit on higher levels;
* ``L(v)`` — the set of layers whose d-core contained ``v`` just before
  its batch was removed.

Lemma 8 then bounds any d-CC w.r.t. ``L'`` inside
``∪_{h >= |L'|} I_h``, and Lemma 9 states that every member of the d-CC is
reachable by a level-ascending chain of index edges from a vertex ``w``
with ``L' ⊆ L(w)``.  :meth:`CoreHierarchyIndex.reachable_scope` implements
both filters.
"""

from repro.core.maintain import MultiLayerCoreMaintainer


class CoreHierarchyIndex:
    """The level/label index over a multi-layer graph (Fig. 10's substrate).

    Parameters
    ----------
    graph:
        The multi-layer graph to index.
    d:
        The degree threshold of the search.
    within:
        Optional vertex restriction (the preprocessing ``alive`` set; the
        index then describes the preprocessed graph, which is what TD-DCCS
        searches).
    stats:
        Optional :class:`~repro.core.stats.SearchStats`; d-core
        recomputations are charged to ``dcc_calls``.

    Attributes
    ----------
    levels:
        ``[(threshold, [vertices])]`` in removal order (ascending levels).
    level_of / threshold_of / label:
        Per-vertex lookups; ``label[v]`` is the frozenset ``L(v)``.
    """

    def __init__(self, graph, d, within=None, stats=None):
        self.graph = graph
        self.d = d
        self.levels = []
        self.level_of = {}
        self.threshold_of = {}
        self.label = {}
        self._build(within, stats)
        self._scope_cache = {}
        # The index edges of Section V-C: one union-adjacency set per
        # indexed vertex ("we add an edge between u and v in the index if
        # (u, v) is an edge on a layer of G").
        self.union_adj = {}
        indexed = self.level_of
        for vertex in indexed:
            neighbors = set()
            for layer in graph.layers():
                # update() (not |=) so backends may return any iterable.
                neighbors.update(graph.neighbors(layer, vertex))
            neighbors &= indexed.keys()
            neighbors.discard(vertex)
            self.union_adj[vertex] = neighbors

    def _build(self, within, stats):
        maintainer = MultiLayerCoreMaintainer(
            self.graph, self.d, within=within, stats=stats
        )
        num_layers = self.graph.num_layers
        level_index = 0
        for threshold in range(1, num_layers + 1):
            while maintainer.alive:
                batch = [
                    v for v in maintainer.alive
                    if maintainer.support.get(v, 0) <= threshold
                ]
                if not batch:
                    break
                for vertex in batch:
                    self.level_of[vertex] = level_index
                    self.threshold_of[vertex] = threshold
                    self.label[vertex] = maintainer.layers_containing(vertex)
                self.levels.append((threshold, batch))
                maintainer.remove(batch)
                level_index += 1
            if not maintainer.alive:
                break

    # ------------------------------------------------------------------

    def __contains__(self, vertex):
        return vertex in self.level_of

    def __len__(self):
        return len(self.level_of)

    @property
    def num_levels(self):
        """The number of batches recorded."""
        return len(self.levels)

    def scope(self, min_support):
        """``∪_{h >= min_support} I_h`` — the Lemma 8 search scope."""
        cached = self._scope_cache.get(min_support)
        if cached is None:
            cached = frozenset(
                vertex
                for vertex, threshold in self.threshold_of.items()
                if threshold >= min_support
            )
            self._scope_cache[min_support] = cached
        return cached

    def reachable_scope(self, layer_subset, candidates):
        """Vertices of ``candidates`` not excluded by Lemmas 8 and 9.

        A vertex survives iff its removal threshold is at least
        ``|layer_subset|`` (Lemma 8) and it is reachable by a
        level-monotone chain of graph edges (any layer) from a vertex
        ``w`` with ``layer_subset ⊆ L(w)`` (Lemma 9; a valid-label vertex
        is its own length-0 chain).  Chains are allowed to step across
        equal levels, a strictly weaker — therefore still sound — filter
        than the paper's strictly-ascending chains.

        The result still over-approximates ``C^d_{L'}``; callers finish
        with an exact peel (see :func:`repro.core.refine.refine_core`).
        """
        wanted = frozenset(layer_subset)
        scope = self.scope(len(wanted))
        zone = {v for v in candidates if v in scope}
        if not zone:
            return zone

        by_level = {}
        for vertex in zone:
            by_level.setdefault(self.level_of[vertex], []).append(vertex)

        union_adj = self.union_adj
        reachable = set()
        for level in sorted(by_level):
            # Seed with valid-label vertices, then close under same-level
            # adjacency from anything already reachable (lower levels have
            # been fully processed, so cross-level promotion is implicit in
            # `reachable`).
            stack = []
            for vertex in by_level[level]:
                if wanted <= self.label[vertex] or union_adj[vertex] & reachable:
                    reachable.add(vertex)
                    stack.append(vertex)
            while stack:
                vertex = stack.pop()
                for neighbor in union_adj[vertex]:
                    if (
                        neighbor in zone
                        and neighbor not in reachable
                        and self.level_of[neighbor] == level
                    ):
                        reachable.add(neighbor)
                        stack.append(neighbor)
        return reachable

    def __repr__(self):
        return "CoreHierarchyIndex(d={}, vertices={}, levels={})".format(
            self.d, len(self.level_of), self.num_levels
        )
