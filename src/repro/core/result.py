"""The common result object returned by every DCCS algorithm."""

from dataclasses import dataclass, field

from repro.core.stats import SearchStats


@dataclass
class DCCSResult:
    """Top-k diversified d-CCs plus provenance.

    Attributes
    ----------
    sets:
        The reported d-CCs (list of frozensets, at most ``k``).
    labels:
        For each set, the layer subset ``L`` it is the d-CC of (a sorted
        tuple of layer indices), or ``None`` when unknown.
    algorithm:
        ``"greedy"``, ``"bottom-up"``, ``"top-down"`` or ``"exact"``.
    params:
        The ``(d, s, k)`` triple the search ran with.
    stats:
        The :class:`~repro.core.stats.SearchStats` counters of the run.
    elapsed:
        Wall-clock seconds of the run.
    """

    sets: list
    labels: list
    algorithm: str
    params: tuple
    stats: SearchStats = field(default_factory=SearchStats)
    elapsed: float = 0.0

    @property
    def cover(self):
        """``Cov(R)`` — the union of the reported sets."""
        covered = set()
        for members in self.sets:
            covered |= members
        return covered

    @property
    def cover_size(self):
        """``|Cov(R)|`` — the paper's accuracy metric."""
        return len(self.cover)

    def __repr__(self):
        d, s, k = self.params
        return (
            "DCCSResult({}, d={}, s={}, k={}, sets={}, cover={}, "
            "{:.3f}s)".format(
                self.algorithm, d, s, k, len(self.sets), self.cover_size,
                self.elapsed,
            )
        )


def result_from_topk(topk, algorithm, params, stats, elapsed):
    """Assemble a :class:`DCCSResult` from a populated DiversifiedTopK.

    Duplicate sets (admitted under Rule 1 to keep the pruning machinery
    armed) are collapsed here: they contribute nothing to the cover and
    would only confuse downstream consumers.
    """
    seen = set()
    sets = []
    labels = []
    for label, members in topk.labelled_sets():
        if members in seen:
            continue
        seen.add(members)
        sets.append(members)
        labels.append(label)
    return DCCSResult(
        sets=sets,
        labels=labels,
        algorithm=algorithm,
        params=params,
        stats=stats,
        elapsed=elapsed,
    )
