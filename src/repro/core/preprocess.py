"""Preprocessing shared by all DCCS algorithms (Section IV-C).

Three methods, each individually switchable so the Fig. 28 ablation can
disable them one at a time:

* **vertex deletion** — iteratively drop every vertex contained in the
  d-core of fewer than ``s`` layers (its support ``Num(v)`` is below the
  threshold, so no size-``s`` d-CC can contain it), recomputing the cores
  until a fixed point;
* **sorting layers** — order layers by their d-core size (descending for
  the bottom-up search, ascending for the top-down search);
* **result initialisation** — seed the temporary top-k set greedily
  (:mod:`repro.core.initk`) so Eq. (1) pruning applies from the start.

All three run against the graph backend protocol: the vertex-deletion
fixed point goes through :class:`MultiLayerCoreMaintainer`, which peels
dict and frozen CSR graphs with the same code.
"""

from dataclasses import dataclass, field

from repro.core.dcore import d_core
from repro.core.maintain import MultiLayerCoreMaintainer
from repro.utils.errors import ParameterError


@dataclass
class PreprocessResult:
    """Outcome of the vertex-deletion fixed point.

    Attributes
    ----------
    alive:
        Vertices surviving deletion (all have ``Num(v) >= s``).
    cores:
        Per-layer d-cores **within** ``alive`` (``cores[i] ⊆ alive``).
    support:
        ``Num(v)`` — for each surviving vertex, the number of layers whose
        d-core contains it.
    deleted:
        Number of vertices removed.
    rounds:
        Number of recomputation rounds until the fixed point.
    """

    alive: set
    cores: list
    support: dict
    deleted: int = 0
    rounds: int = 0
    extra: dict = field(default_factory=dict)


def compute_support(cores):
    """``Num(v)`` for every vertex appearing in at least one core."""
    support = {}
    for core in cores:
        for vertex in core:
            support[vertex] = support.get(vertex, 0) + 1
    return support


def vertex_deletion(graph, d, s, enabled=True, stats=None, seed_cores=None):
    """Run the vertex-deletion fixed point (lines 1–7 of BU-DCCS, Fig. 7).

    With ``enabled=False`` (the No-VD ablation) the cores are computed once
    on the full graph and nothing is deleted; the returned ``support`` is
    still correct for the full graph so the top-down index stays valid.

    ``seed_cores`` optionally maps layer ids to precomputed *full-graph*
    d-cores of those layers (the engine's artifact cache keeps them
    across deltas that do not touch a layer); missing layers are
    computed as usual.  Seeding changes no result and no counter.
    """
    if s < 1 or s > graph.num_layers:
        raise ParameterError(
            "s must be in [1, {}], got {}".format(graph.num_layers, s)
        )
    maintainer = MultiLayerCoreMaintainer(graph, d, stats=stats,
                                          seed_cores=seed_cores)
    result = PreprocessResult(
        alive=maintainer.alive,
        cores=maintainer.cores,
        support=maintainer.support,
    )
    if not enabled:
        return result

    while True:
        result.rounds += 1
        doomed = [
            v for v in maintainer.alive
            if maintainer.support.get(v, 0) < s
        ]
        if not doomed:
            break
        maintainer.remove(doomed)
        result.deleted += len(doomed)
        if stats is not None:
            stats.vertices_deleted += len(doomed)
    result.alive = maintainer.alive
    result.cores = maintainer.cores
    result.support = maintainer.support
    return result


def order_layers(cores, descending=True, enabled=True):
    """Layer ids sorted by d-core size (Section IV-C / Section V-D).

    The bottom-up algorithm prefers big-core layers first
    (``descending=True``); the top-down algorithm removes layers from the
    tail of the order, so it sorts ascending to shed small-core layers
    first.  With ``enabled=False`` (the No-SL ablation) the natural order
    is returned.
    """
    layer_ids = list(range(len(cores)))
    if not enabled:
        return layer_ids
    layer_ids.sort(key=lambda layer: len(cores[layer]), reverse=descending)
    return layer_ids
