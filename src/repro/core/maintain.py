"""Incremental maintenance of per-layer d-cores under vertex deletion.

Both the vertex-deletion preprocessing (Fig. 7, lines 1–7) and the
hierarchical index construction (Section V-C) repeatedly delete vertex
batches and need the d-core of every layer of the *remaining* graph.
Recomputing each core from scratch per round costs
``O(rounds · l · (n + m))``; because d-cores only ever shrink under
deletion, cascade peeling from the deleted vertices gives the same result
— peeling is confluent, so the order of removals does not matter — for a
total of ``O(l (n + m))`` over the whole deletion sequence.

:class:`MultiLayerCoreMaintainer` packages that: it owns the per-layer
core sets, their internal degree counters, and the support counters
``Num(v)`` (the number of layers whose core contains ``v``).  It speaks
only the backend protocol — ``induced_degrees``, ``neighbor_row`` and
the dispatching :func:`~repro.core.dcore.layer_core` — so both the dict
and the frozen CSR backend are maintained by the same code.
"""

from repro.core.dcore import layer_core


class MultiLayerCoreMaintainer:
    """Per-layer d-cores and support counts under batched vertex deletion.

    Parameters
    ----------
    graph:
        The multi-layer graph (never mutated).
    d:
        The degree threshold.
    within:
        Optional initial vertex restriction.

    Attributes
    ----------
    alive:
        The current vertex set (shrinks via :meth:`remove`).
    cores:
        ``cores[i]`` — the current d-core of layer ``i`` within ``alive``.
    support:
        ``Num(v)`` for every alive vertex (0 when in no core).
    """

    def __init__(self, graph, d, within=None, stats=None, seed_cores=None):
        self.graph = graph
        self.d = d
        self.alive = graph.vertices() if within is None else set(within)
        self.cores = []
        self._degrees = []
        for layer in graph.layers():
            if seed_cores is not None and seed_cores.get(layer) is not None:
                # Precomputed elsewhere (the engine's selective artifact
                # cache keeps per-layer cores across deltas that do not
                # touch the layer).  The stats charge stays identical to
                # the computing path so cached and uncached runs report
                # bitwise-equal counters.
                core = set(seed_cores[layer])
            else:
                core = layer_core(graph, layer, d, within=self.alive)
            if stats is not None:
                stats.dcc_calls += 1
            self.cores.append(core)
            self._degrees.append(graph.induced_degrees(layer, core))
        self.support = {v: 0 for v in self.alive}
        for core in self.cores:
            for vertex in core:
                self.support[vertex] += 1

    def layers_containing(self, vertex):
        """The label ``L(v)``: layers whose current d-core contains ``v``."""
        return frozenset(
            layer for layer, core in enumerate(self.cores) if vertex in core
        )

    def remove(self, vertices):
        """Delete ``vertices`` from the graph view; cascade all cores.

        Each deleted vertex leaves ``alive`` and every core containing it;
        neighbours whose within-core degree drops below ``d`` are peeled
        out of that core (not out of ``alive``), decrementing their
        support.  Degenerate input (already-dead vertices) is ignored.
        """
        doomed = [v for v in vertices if v in self.alive]
        for vertex in doomed:
            self.alive.discard(vertex)
            self.support.pop(vertex, None)
        for layer, core in enumerate(self.cores):
            # One protocol row accessor per layer instead of a checked
            # neighbors() call per queue pop; on the frozen backend it
            # walks raw CSR rows without materialising any set view.
            row = self.graph.neighbor_row(layer)
            degrees = self._degrees[layer]
            queue = []
            for vertex in doomed:
                if vertex in core:
                    core.discard(vertex)
                    degrees.pop(vertex, None)
                    queue.extend(u for u in row(vertex) if u in core)
            # Cascade peel: decrement each affected neighbour once per
            # removed edge; vertices falling below d leave this core only.
            head = 0
            while head < len(queue):
                u = queue[head]
                head += 1
                if u not in core:
                    continue
                degrees[u] -= 1
                if degrees[u] < self.d:
                    core.discard(u)
                    degrees.pop(u, None)
                    self.support[u] -= 1
                    queue.extend(w for w in row(u) if w in core)
        return doomed

    def check_consistency(self):
        """Recompute cores/support from scratch and compare (test hook)."""
        for layer in self.graph.layers():
            expected = layer_core(
                self.graph, layer, self.d, within=self.alive
            )
            if expected != self.cores[layer]:
                raise AssertionError(
                    "layer {} core drifted: {} vs {}".format(
                        layer, sorted(self.cores[layer]), sorted(expected)
                    )
                )
        for vertex in self.alive:
            true_support = sum(
                1 for core in self.cores if vertex in core
            )
            if self.support.get(vertex, 0) != true_support:
                raise AssertionError(
                    "support[{!r}] = {} but should be {}".format(
                        vertex, self.support.get(vertex), true_support
                    )
                )
        return True
