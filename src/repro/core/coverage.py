"""Maintenance of the temporary top-k diversified d-CCs (Sec. IV-A, App. C).

:class:`DiversifiedTopK` implements the paper's ``Update`` procedure
(Fig. 36) together with its two index structures:

* ``M`` — a hash table mapping each covered vertex ``v`` to the ids of the
  result sets containing ``v`` (so ``|Cov(R)| = len(M)``);
* ``H`` — a hash table keyed by the exclusive-coverage count
  ``|Δ(R, C')|``, from which the weakest member ``C*(R)`` (the one that
  exclusively covers the fewest vertices) is retrieved in O(1) expected
  time.

The two update rules of Section IV-A:

* **Rule 1** — while fewer than ``k`` sets are held, every candidate is
  admitted;
* **Rule 2** — once full, candidate ``C`` replaces ``C*(R)`` iff
  ``|Cov((R − {C*}) ∪ {C})| >= (1 + 1/k) |Cov(R)|``   (Eq. 1).

The threshold test is done in integer arithmetic (``size * k >= (k + 1) *
cover``) to avoid any floating-point edge cases.

``try_update`` runs in ``O(max(|C|, |C*|))`` as shown in Appendix C.
"""

from repro.utils.errors import ParameterError


class DiversifiedTopK:
    """The temporary result set ``R`` with Update/Size/Delete/Insert.

    Parameters
    ----------
    k:
        Capacity — the number of diversified d-CCs requested.

    Examples
    --------
    >>> top = DiversifiedTopK(2)
    >>> top.try_update(frozenset({1, 2, 3}))
    True
    >>> top.try_update(frozenset({4, 5}))
    True
    >>> top.cover_size
    5
    """

    def __init__(self, k):
        if k < 1:
            raise ParameterError("k must be at least 1, got {}".format(k))
        self.k = k
        self._members = {}
        self._labels = {}
        self._delta = {}
        self._coverers = {}
        self._by_delta = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # read access
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._members)

    @property
    def is_full(self):
        """Whether ``|R| == k`` (Rule 2 territory)."""
        return len(self._members) >= self.k

    @property
    def cover_size(self):
        """``|Cov(R)|`` — the number of the distinct covered vertices."""
        return len(self._coverers)

    def cover(self):
        """The cover set ``Cov(R)`` as a new set."""
        return set(self._coverers)

    def sets(self):
        """The current result sets as a list of frozensets."""
        return list(self._members.values())

    def labelled_sets(self):
        """``(label, set)`` pairs; labels are whatever callers attached."""
        return [
            (self._labels[set_id], members)
            for set_id, members in self._members.items()
        ]

    def exclusive_count(self, set_id):
        """``|Δ(R, C')|`` for a member id — its exclusively covered vertices."""
        return self._delta[set_id]

    def weakest(self):
        """``(id, |Δ(R, C*)|)`` of the weakest member; requires non-empty R."""
        if not self._members:
            raise ParameterError("the result set is empty")
        min_delta = min(value for value in self._by_delta if self._by_delta[value])
        set_id = next(iter(self._by_delta[min_delta]))
        return set_id, min_delta

    def min_exclusive(self):
        """``|Δ(R, C*(R))|`` — 0 for an empty result set.

        This quantity appears in the order-based pruning bounds of
        Lemmas 3 and 6.
        """
        if not self._members:
            return 0
        return self.weakest()[1]

    # ------------------------------------------------------------------
    # the Size / Delete / Insert operations of Fig. 36
    # ------------------------------------------------------------------

    def gain_size(self, candidate):
        """``|Cov((R − {C*(R)}) ∪ {candidate})|`` — the Size procedure.

        Decomposes the target cover into the three disjoint parts of the
        appendix: vertices of the candidate outside ``Cov(R)``, candidate
        vertices exclusively covered by ``C*``, and ``Cov(R − {C*})``.
        """
        if not self._members:
            return len(set(candidate))
        weakest_id, weakest_delta = self.weakest()
        gained = 0
        for vertex in candidate:
            owners = self._coverers.get(vertex)
            if owners is None:
                gained += 1
            elif len(owners) == 1 and weakest_id in owners:
                gained += 1
        return gained + self.cover_size - weakest_delta

    def satisfies_replacement(self, candidate_size_or_set):
        """Eq. (1) test: would this candidate (or candidate-size bound) pass?

        Accepts either a vertex collection or an integer upper bound on
        ``|Cov((R − {C*}) ∪ {C})|`` — the pruning lemmas apply the same
        inequality to supersets (``C_L ∩ C^d(G_j)``, ``U_L``), so the
        integer form is what the search algorithms call.
        """
        if isinstance(candidate_size_or_set, int):
            size = candidate_size_or_set
        else:
            size = self.gain_size(candidate_size_or_set)
        return size * self.k >= (self.k + 1) * self.cover_size

    def try_update(self, candidate, label=None):
        """The Update procedure: apply Rule 1 or Rule 2; report acceptance.

        Empty candidates are rejected outright: they can never enlarge the
        cover, and admitting them under Rule 1 would waste result slots the
        approximation argument assumes are usable.
        """
        candidate = frozenset(candidate)
        if not candidate:
            return False
        if not self.is_full:
            # Rule 1 admits duplicates, exactly as the paper states: a
            # full R is what arms the Eq. (1) pruning rules, and duplicate
            # members have delta = 0, so they are the first to be replaced.
            # Result assembly deduplicates the final output.
            self._insert(candidate, label)
            return True
        size = self.gain_size(candidate)
        if size * self.k >= (self.k + 1) * self.cover_size:
            self._delete_weakest()
            self._insert(candidate, label)
            return True
        return False

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _insert(self, candidate, label):
        set_id = self._next_id
        self._next_id += 1
        self._members[set_id] = candidate
        self._labels[set_id] = label
        delta = 0
        for vertex in candidate:
            owners = self._coverers.get(vertex)
            if owners is None:
                self._coverers[vertex] = {set_id}
                delta += 1
            else:
                if len(owners) == 1:
                    # The sole owner loses exclusivity over this vertex.
                    (other_id,) = owners
                    self._move_delta(other_id, self._delta[other_id] - 1)
                owners.add(set_id)
        self._delta[set_id] = delta
        self._by_delta.setdefault(delta, set()).add(set_id)

    def _delete_weakest(self):
        set_id, delta = self.weakest()
        self._by_delta[delta].discard(set_id)
        members = self._members.pop(set_id)
        self._labels.pop(set_id)
        self._delta.pop(set_id)
        for vertex in members:
            owners = self._coverers[vertex]
            owners.discard(set_id)
            if len(owners) == 1:
                # The survivor now exclusively covers this vertex.
                (other_id,) = owners
                self._move_delta(other_id, self._delta[other_id] + 1)
            elif not owners:
                del self._coverers[vertex]
        return members

    def _move_delta(self, set_id, new_delta):
        old_delta = self._delta[set_id]
        self._by_delta[old_delta].discard(set_id)
        self._by_delta.setdefault(new_delta, set()).add(set_id)
        self._delta[set_id] = new_delta

    # ------------------------------------------------------------------
    # verification (tests call this after every mutation sequence)
    # ------------------------------------------------------------------

    def check_consistency(self):
        """Recompute every index from scratch and compare; raises on drift."""
        cover = set()
        for members in self._members.values():
            cover |= members
        if cover != set(self._coverers):
            raise AssertionError("M is out of sync with the member sets")
        for vertex, owners in self._coverers.items():
            true_owners = {
                set_id
                for set_id, members in self._members.items()
                if vertex in members
            }
            if owners != true_owners:
                raise AssertionError(
                    "M[{!r}] = {} but should be {}".format(vertex, owners, true_owners)
                )
        for set_id, members in self._members.items():
            exclusive = sum(
                1 for vertex in members if len(self._coverers[vertex]) == 1
            )
            if exclusive != self._delta[set_id]:
                raise AssertionError(
                    "delta[{}] = {} but should be {}".format(
                        set_id, self._delta[set_id], exclusive
                    )
                )
            if set_id not in self._by_delta.get(self._delta[set_id], ()):
                raise AssertionError("H bucket missing set {}".format(set_id))
        return True

    def __repr__(self):
        return "DiversifiedTopK(k={}, held={}, cover={})".format(
            self.k, len(self), self.cover_size
        )
