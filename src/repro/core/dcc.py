"""The d-coherent core (d-CC) of a multi-layer graph (Section II, App. B).

Given a multi-layer graph ``G``, a layer subset ``L`` and a degree threshold
``d``, the d-CC ``C^d_L(G)`` is the unique maximal vertex set ``S`` such
that every vertex of ``S`` has degree at least ``d`` inside ``G_i[S]`` for
every layer ``i`` in ``L``.

Two equivalent implementations are provided:

* :func:`coherent_core` — cascade peeling with a FIFO of violating
  vertices; the fastest in CPython and the default everywhere;
* :func:`coherent_core_binsort` — a faithful port of the paper's dCC
  procedure (Fig. 35), which buckets vertices by
  ``m(v) = min_{i in L} deg_i(v)`` and peels in ascending ``m(v)`` order.

Property-based tests assert the two always agree; the bin-sort variant also
doubles as the reference for the RefineC correctness tests.

Both entry points run on either graph backend (see
:mod:`repro.graph.backend`): :func:`coherent_core` dispatches to the
flat-array kernel of :mod:`repro.graph.frozen` when the graph is frozen,
and :func:`coherent_core_binsort` is written against the protocol
(``induced_degrees`` + ``neighbors``) directly.  :func:`enumerate_candidates`
additionally uses bitmask layer-signature grouping on the frozen backend to
compute every Lemma 1 intersection bound in one pass over the vertices.
"""

from itertools import combinations

from repro.core.dcore import layer_core
from repro.utils.errors import LayerIndexError, ParameterError


def _normalize_layers(graph, layers):
    """Validate and deduplicate a layer subset, returning a sorted tuple."""
    layer_tuple = tuple(sorted(set(layers)))
    if not layer_tuple:
        raise ParameterError("the layer subset L must be non-empty")
    for layer in layer_tuple:
        if not 0 <= layer < graph.num_layers:
            raise LayerIndexError(layer, graph.num_layers)
    return layer_tuple


def validate_search_params(graph, d, s, k):
    """Validate a DCCS ``(d, s, k)`` triple against ``graph``.

    The shared entry check of every search implementation — the three
    sequential algorithms and the parallel orchestrators all enforce the
    same contract, so it lives once, here with the core primitives.
    """
    if d < 0:
        raise ParameterError("d must be non-negative, got {}".format(d))
    if not 1 <= s <= graph.num_layers:
        raise ParameterError(
            "s must be in [1, {}], got {}".format(graph.num_layers, s)
        )
    if k < 1:
        raise ParameterError("k must be positive, got {}".format(k))


def coherent_core(graph, layers, d, within=None, stats=None):
    """Compute ``C^d_L(G)`` by cascade peeling; returns a :class:`frozenset`.

    Parameters
    ----------
    graph:
        A :class:`~repro.graph.multilayer.MultiLayerGraph`.
    layers:
        The layer subset ``L`` (iterable of layer indices).
    d:
        The minimum-degree threshold.
    within:
        Optional vertex subset to restrict the computation to (callers pass
        the Lemma 1 intersection bound here, so the d-CC is found on the
        small induced subgraph instead of on all of ``G``).
    stats:
        Optional :class:`~repro.core.stats.SearchStats` to increment.

    Complexity is ``O((n' + m') |L|)`` where ``n'``/``m'`` count the
    restricted subgraph, matching the paper's Appendix B analysis.
    """
    layer_tuple = _normalize_layers(graph, layers)
    if d < 0:
        raise ParameterError("d must be non-negative, got {}".format(d))
    if stats is not None:
        stats.dcc_calls += 1
    if getattr(graph, "is_sharded", False):
        # Scatter/gather peel across the shard executors; same unique
        # fixed point and the same per-removal peel count as the
        # single-engine kernels below (see repro.shard.graph).
        return graph.coherent_core(layer_tuple, d, within=within,
                                   stats=stats)
    if graph.is_frozen:
        from repro.graph.frozen import frozen_coherent_core

        return frozen_coherent_core(
            graph, layer_tuple, d, within=within, stats=stats
        )
    adjacencies = [graph.adjacency(layer) for layer in layer_tuple]
    if within is None:
        alive = graph.vertices()
    else:
        alive = set(within) & graph.vertex_set()
    if d == 0:
        return frozenset(alive)

    degrees = []
    for adjacency in adjacencies:
        degrees.append({v: len(adjacency[v] & alive) for v in alive})

    queue = []
    queued = set()
    for v in alive:
        for degree in degrees:
            if degree[v] < d:
                queue.append(v)
                queued.add(v)
                break
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        alive.discard(v)
        if stats is not None:
            stats.peel_operations += 1
        for adjacency, degree in zip(adjacencies, degrees):
            for u in adjacency[v]:
                if u in alive and u not in queued:
                    degree[u] -= 1
                    if degree[u] < d:
                        queue.append(u)
                        queued.add(u)
    return frozenset(alive)


def coherent_core_binsort(graph, layers, d, within=None, stats=None):
    """The paper's dCC procedure (Fig. 35): bucket peeling by ``m(v)``.

    Vertices are kept in buckets indexed by
    ``m(v) = min_{i in L} d_{G_i}(v)`` (within the alive set); each round
    removes a vertex of minimum ``m`` while ``m(v) < d``.  Removing one
    vertex decreases each neighbour's ``m`` by at most one, so bucket moves
    are O(1) amortised and the whole procedure runs in ``O((n + m) |L|)``.

    Functionally identical to :func:`coherent_core`; retained because it is
    the textual algorithm of Appendix B and anchors the equivalence tests.
    Written against the backend protocol (``induced_degrees`` +
    ``neighbors``), so it runs unchanged on both backends.
    """
    layer_tuple = _normalize_layers(graph, layers)
    if d < 0:
        raise ParameterError("d must be non-negative, got {}".format(d))
    if stats is not None:
        stats.dcc_calls += 1
    if within is None:
        alive = graph.vertices()
    else:
        alive = {v for v in set(within) if graph.has_vertex(v)}
    if d == 0 or not alive:
        return frozenset(alive)

    degrees = [
        graph.induced_degrees(layer, alive) for layer in layer_tuple
    ]
    m_value = {v: min(degree[v] for degree in degrees) for v in alive}

    buckets = {}
    for v, m in m_value.items():
        buckets.setdefault(m, set()).add(v)
    floor = min(buckets)

    while alive:
        while floor not in buckets or not buckets[floor]:
            buckets.pop(floor, None)
            floor += 1
            if floor > max(buckets, default=-1):
                return frozenset(alive)
        if floor >= d:
            break
        v = buckets[floor].pop()
        alive.discard(v)
        del m_value[v]
        if stats is not None:
            stats.peel_operations += 1
        touched = set()
        for layer, degree in zip(layer_tuple, degrees):
            for u in graph.neighbors(layer, v):
                if u in alive:
                    degree[u] -= 1
                    touched.add(u)
        for u in touched:
            new_m = min(degree[u] for degree in degrees)
            if new_m != m_value[u]:
                buckets[m_value[u]].discard(u)
                buckets.setdefault(new_m, set()).add(u)
                if new_m < floor:
                    floor = new_m
                m_value[u] = new_m
    return frozenset(alive)


def is_coherent_dense(graph, vertices, layers, d):
    """Whether ``G[vertices]`` is d-dense w.r.t. ``layers`` (definition check).

    Used pervasively in tests: every set an algorithm reports must pass this
    predicate, and adding any outside vertex must break it (maximality).
    """
    layer_tuple = _normalize_layers(graph, layers)
    requested = set(vertices)
    members = {v for v in requested if graph.has_vertex(v)}
    if len(members) != len(requested):
        return False
    for layer in layer_tuple:
        degrees = graph.induced_degrees(layer, members)
        for v in members:
            if degrees.get(v, 0) < d:
                return False
    return True


def per_layer_cores(graph, d, within=None, stats=None):
    """``C^d(G_i)`` for every layer ``i`` as a list of sets.

    By definition ``C^d_{{i}}(G) = C^d(G_i)``; these single-layer cores seed
    both search algorithms and the Lemma 1 intersection bound.
    """
    cores = []
    for layer in graph.layers():
        if stats is not None:
            stats.dcc_calls += 1
        cores.append(layer_core(graph, layer, d, within=within))
    return cores


def layer_signature_groups(cores):
    """Group vertices by the bitmask of the d-cores containing them.

    ``cores[i]`` contributes bit ``i``; the returned list holds
    ``(mask, vertices)`` pairs.  The Lemma 1 bound for a layer subset with
    mask ``m`` is then the union of the groups whose mask contains ``m`` —
    one pass over at most ``n`` signature groups per subset, instead of
    ``s`` set intersections over full cores.
    """
    signature = {}
    for i, core in enumerate(cores):
        bit = 1 << i
        for v in core:
            signature[v] = signature.get(v, 0) | bit
    groups = {}
    for v, mask in signature.items():
        groups.setdefault(mask, []).append(v)
    return list(groups.items())


def subset_bound(cores, layer_subset, groups=None):
    """The Lemma 1 intersection bound ``∩_{i in L} C^d(G_i)`` as a set.

    With ``groups`` (from :func:`layer_signature_groups`) the bound is
    assembled in one sweep over the signature groups — the frozen-backend
    fast path; otherwise it is the plain running intersection of the
    per-layer cores with an early exit on empty.
    """
    if groups is not None:
        want = 0
        for layer in layer_subset:
            want |= 1 << layer
        bound = set()
        for mask, members in groups:
            if mask & want == want:
                bound.update(members)
        return bound
    bound = set(cores[layer_subset[0]])
    for layer in layer_subset[1:]:
        bound &= cores[layer]
        if not bound:
            break
    return bound


def candidate_for_subset(graph, d, layer_subset, cores, groups=None,
                         within_set=None, stats=None):
    """``C^d_L(G)`` for one layer subset via the Lemma 1 bound.

    The per-subset body of :func:`enumerate_candidates`, exposed so the
    parallel subsystem's greedy shards do byte-for-byte the same work
    (same bound, same restricted peel, same counter increments) as the
    sequential enumeration they partition.
    """
    bound = subset_bound(cores, layer_subset, groups)
    if within_set is not None:
        bound &= within_set
    if bound:
        return coherent_core(graph, layer_subset, d, within=bound,
                             stats=stats)
    # Lemma 1: empty intersection bound, hence empty d-CC.
    return frozenset()


def enumerate_candidates(graph, d, s, within=None, cores=None, stats=None):
    """Yield ``(L, C^d_L(G))`` for every layer subset of size ``s``.

    This materialises the candidate family ``F_{d,s}(G)`` used by the
    greedy algorithm and the exact solver.  ``cores`` may carry
    precomputed per-layer d-cores to share work across calls.
    """
    if not 1 <= s <= graph.num_layers:
        raise ParameterError(
            "s must be in [1, {}], got {}".format(graph.num_layers, s)
        )
    if cores is None:
        cores = per_layer_cores(graph, d, within=within, stats=stats)
    within_set = None if within is None else set(within)
    groups = layer_signature_groups(cores) if graph.is_frozen else None
    for layer_subset in combinations(range(graph.num_layers), s):
        yield layer_subset, candidate_for_subset(
            graph, d, layer_subset, cores, groups=groups,
            within_set=within_set, stats=stats,
        )
