"""Experiment configuration (the paper's Fig. 13 parameter table).

``DEFAULTS`` and ``RANGES`` transcribe Fig. 13 verbatim.  ``BENCH_SCALE``
sets the per-dataset stand-in scale used by the benchmark harness: the
paper's graphs have up to 2.6M vertices and a C++ implementation; the
stand-ins are sized so a full pure-Python sweep of every figure finishes
in minutes while preserving every relative comparison (see DESIGN.md).
"""

DEFAULTS = {
    "k": 10,
    "d": 4,
    "s_small": 3,
    # s_large is relative to the layer count: l(G) - 2.
    "s_large_offset": 2,
    "p": 1.0,
    "q": 1.0,
}

RANGES = {
    "k": (5, 10, 15, 20, 25),
    "d": (2, 3, 4, 5, 6),
    "s_small": (1, 2, 3, 4, 5),
    # s_large values are l(G) - offset for offset in 4..0.
    "s_large_offsets": (4, 3, 2, 1, 0),
    "p": (0.2, 0.4, 0.6, 0.8, 1.0),
    "q": (0.2, 0.4, 0.6, 0.8, 1.0),
}

# Stand-in scale per dataset for benchmarks (1.0 = the registry size).
BENCH_SCALE = {
    "ppi": 1.0,
    "author": 1.0,
    "german": 0.5,
    "wiki": 0.4,
    "english": 0.5,
    "stack": 0.35,
}


def s_large(num_layers, offset=None):
    """The paper's large-s default ``l(G) - 2`` (or another offset)."""
    if offset is None:
        offset = DEFAULTS["s_large_offset"]
    return max(1, num_layers - offset)


def s_large_values(num_layers):
    """The Fig. 13 large-s range ``{l-4, ..., l}`` clamped to valid values."""
    return tuple(
        max(1, num_layers - offset) for offset in RANGES["s_large_offsets"]
    )
