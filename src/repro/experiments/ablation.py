"""Preprocessing and pruning ablations (Fig. 28 and DESIGN.md extras).

The paper's Fig. 28 disables each preprocessing method of Section IV-C in
turn — No-VD (vertex deletion), No-SL (sorting layers), No-IR (result
initialisation) and No-Pre (all three) — and compares BU-DCCS at small
``s`` and TD-DCCS at large ``s``.  DESIGN.md additionally calls for
ablations of the pruning lemmas themselves (order-based pruning, the
potential-set shortcut) and of the RefineC index, which this module also
provides.
"""

from repro.core.api import search_dccs
from repro.datasets import load
from repro.experiments.config import BENCH_SCALE, DEFAULTS, s_large
from repro.experiments.runner import result_row

PREPROCESS_VARIANTS = {
    "full": {},
    "No-SL": {"use_layer_sorting": False},
    "No-IR": {"use_init_topk": False},
    "No-VD": {"use_vertex_deletion": False},
    "No-Pre": {
        "use_vertex_deletion": False,
        "use_layer_sorting": False,
        "use_init_topk": False,
    },
}

PRUNING_VARIANTS_BU = {
    "full": {},
    "No-OrderPrune": {"use_order_pruning": False},
    "No-LayerPrune": {"use_layer_pruning": False},
}

PRUNING_VARIANTS_TD = {
    "full": {},
    "No-OrderPrune": {"use_order_pruning": False},
    "No-PotentialPrune": {"use_potential_pruning": False},
    "No-Index": {"use_index": False},
}


def _run_variants(graph, method, s, variants, seed=0, k=None, d=None):
    rows = []
    for variant, options in variants.items():
        result = search_dccs(
            graph,
            DEFAULTS["d"] if d is None else d,
            s,
            DEFAULTS["k"] if k is None else k,
            method=method,
            seed=seed,
            **options
        )
        row = result_row(result, variant=variant, s=s)
        rows.append(row)
    return rows


def preprocessing_ablation(dataset_name, large_s=False, scale=None, seed=0):
    """Fig. 28: BU at small ``s`` (a) or TD at large ``s`` (b)."""
    dataset = load(
        dataset_name,
        scale=BENCH_SCALE.get(dataset_name, 1.0) if scale is None else scale,
        seed=seed,
    )
    if large_s:
        method = "top-down"
        s = s_large(dataset.graph.num_layers)
    else:
        method = "bottom-up"
        s = DEFAULTS["s_small"]
    rows = _run_variants(dataset.graph, method, s, PREPROCESS_VARIANTS,
                         seed=seed)
    for row in rows:
        row["dataset"] = dataset_name
        row["method"] = method
    return rows


def pruning_ablation(dataset_name, large_s=False, scale=None, seed=0):
    """Extra ablation: switch the pruning lemmas / index off one by one."""
    dataset = load(
        dataset_name,
        scale=BENCH_SCALE.get(dataset_name, 1.0) if scale is None else scale,
        seed=seed,
    )
    if large_s:
        method = "top-down"
        s = s_large(dataset.graph.num_layers)
        variants = PRUNING_VARIANTS_TD
    else:
        method = "bottom-up"
        s = DEFAULTS["s_small"]
        variants = PRUNING_VARIANTS_BU
    rows = _run_variants(dataset.graph, method, s, variants, seed=seed)
    for row in rows:
        row["dataset"] = dataset_name
        row["method"] = method
    return rows


def search_space_reduction(dataset_name, s=None, scale=None, seed=0):
    """The Section IV claim: BU prunes 80–90 % of GD's candidate space.

    Returns the candidate d-CCs examined by GD and BU at the same
    parameter point and the reduction fraction.
    """
    dataset = load(
        dataset_name,
        scale=BENCH_SCALE.get(dataset_name, 1.0) if scale is None else scale,
        seed=seed,
    )
    if s is None:
        s = DEFAULTS["s_small"]
    greedy = search_dccs(dataset.graph, DEFAULTS["d"], s, DEFAULTS["k"],
                         method="greedy")
    bottom_up = search_dccs(dataset.graph, DEFAULTS["d"], s, DEFAULTS["k"],
                            method="bottom-up")
    # d-CC computations are the unit of search effort: GD performs one per
    # layer subset, BU one per surviving tree node (plus shared
    # preprocessing/seeding, identical on both sides).
    examined_gd = greedy.stats.dcc_calls
    examined_bu = bottom_up.stats.dcc_calls
    return {
        "dataset": dataset_name,
        "s": s,
        "gd_candidates": examined_gd,
        "bu_candidates": examined_bu,
        "reduction": 1.0 - (examined_bu / examined_gd) if examined_gd else 0.0,
        "gd_cover": greedy.cover_size,
        "bu_cover": bottom_up.cover_size,
    }
