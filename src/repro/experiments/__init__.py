"""The evaluation harness: one function per table/figure of Section VI."""

from repro.experiments.ablation import (
    preprocessing_ablation,
    pruning_ablation,
    search_space_reduction,
)
from repro.experiments.config import (
    BENCH_SCALE,
    DEFAULTS,
    RANGES,
    s_large,
    s_large_values,
)
from repro.experiments.quasiclique_cmp import (
    compare_mimag,
    figure29,
    figure30,
    figure31,
    figure32,
)
from repro.experiments.io import (
    read_csv,
    read_jsonl,
    to_markdown,
    write_csv,
    write_jsonl,
    write_markdown,
)
from repro.experiments.runner import measure_point, result_row, sweep
from repro.experiments.sweeps import (
    vary_d,
    vary_k,
    vary_large_s,
    vary_p,
    vary_q,
    vary_small_s,
)
from repro.experiments.tables import (
    figure12_table,
    figure13_table,
    figure30_table,
    format_series,
    format_table,
    pivot_series,
)

__all__ = [
    "DEFAULTS",
    "RANGES",
    "BENCH_SCALE",
    "s_large",
    "s_large_values",
    "measure_point",
    "result_row",
    "sweep",
    "vary_small_s",
    "vary_large_s",
    "vary_d",
    "vary_k",
    "vary_p",
    "vary_q",
    "preprocessing_ablation",
    "pruning_ablation",
    "search_space_reduction",
    "compare_mimag",
    "figure29",
    "figure30",
    "figure31",
    "figure32",
    "format_table",
    "format_series",
    "pivot_series",
    "write_csv",
    "read_csv",
    "write_jsonl",
    "read_jsonl",
    "to_markdown",
    "write_markdown",
    "figure12_table",
    "figure13_table",
    "figure30_table",
]
