"""Writers for experiment results: CSV, JSON lines, and Markdown.

Every sweep in :mod:`repro.experiments` returns a list of flat row
dicts; these writers turn those rows into files other tooling can
consume — CSV for spreadsheets, JSONL for pipelines, Markdown for
reports (EXPERIMENTS.md tables were produced this way).
"""

import csv
import json

from repro.utils.errors import ParameterError


def columns_of(rows, columns=None):
    """The column list: explicit, or the union of keys in row order."""
    if columns is not None:
        return list(columns)
    seen = []
    for row in rows:
        for key in row:
            if key not in seen:
                seen.append(key)
    return seen


def write_csv(rows, path, columns=None):
    """Write rows to ``path`` as CSV; missing cells become empty."""
    fields = columns_of(rows, columns)
    if not fields:
        raise ParameterError("cannot write a CSV with no columns")
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields,
                                extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({key: row.get(key, "") for key in fields})
    return path


def read_csv(path):
    """Read back a CSV written by :func:`write_csv` (values as strings)."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))


def write_jsonl(rows, path):
    """Write rows to ``path`` as JSON lines."""
    with open(path, "w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
    return path


def read_jsonl(path):
    """Read back a JSONL file written by :func:`write_jsonl`."""
    rows = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def to_markdown(rows, columns=None, floatfmt="{:.3f}"):
    """Render rows as a GitHub-flavoured Markdown table."""
    fields = columns_of(rows, columns)
    if not fields:
        raise ParameterError("cannot render a table with no columns")

    def cell(row, key):
        value = row.get(key, "")
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    lines = [
        "| " + " | ".join(fields) + " |",
        "| " + " | ".join("---" for _ in fields) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(cell(row, key) for key in fields) + " |"
        )
    return "\n".join(lines)


def write_markdown(rows, path, columns=None, title=None):
    """Write a Markdown table (with optional heading) to ``path``."""
    text = to_markdown(rows, columns)
    with open(path, "w") as handle:
        if title:
            handle.write("## {}\n\n".format(title))
        handle.write(text + "\n")
    return path
