"""Comparison with quasi-clique mining: Figs. 29, 30, 31 and 32.

The paper runs MiMAG [4] and BU-DCCS on the two small datasets (PPI,
Author) with γ = 0.8, ``s = l/2``, ``k = 10`` and ``d' = d + 1``, then
reports execution time, result sizes, precision/recall/F1 of the covers
(Fig. 29), the distribution of how much of each quasi-clique the d-CC
cover contains (Fig. 30), the three-way cover difference (Fig. 31) and
protein-complex recovery on PPI (Fig. 32).
"""

from repro.baselines.mimag import mimag
from repro.core.api import search_dccs
from repro.datasets import load
from repro.metrics.complexes import complex_recovery_rate
from repro.metrics.containment import (
    class_densities,
    containment_distribution,
    cover_difference_classes,
    fully_contained_fraction,
)
from repro.metrics.cover import f1_score, precision, recall

GAMMA = 0.8


def _paper_setting(graph, d):
    """γ = 0.8, s = l/2, k = 10, d' = d + 1 (Section VI)."""
    return {
        "gamma": GAMMA,
        "s": max(1, graph.num_layers // 2),
        "k": 10,
        "min_size": d + 1,
    }


def compare_mimag(dataset_name, d, scale=1.0, seed=0, node_budget=20000):
    """One Fig. 29 block: MiMAG vs BU-DCCS on one dataset at one ``d``.

    Returns a dict with both algorithms' time, result size and the
    precision/recall/F1 between the covers; the raw results ride along for
    the Fig. 30/31 post-processing.
    """
    dataset = load(dataset_name, scale=scale, seed=seed)
    graph = dataset.graph
    setting = _paper_setting(graph, d)

    quasi = mimag(
        graph,
        gamma=setting["gamma"],
        min_size=setting["min_size"],
        min_support=setting["s"],
        node_budget=node_budget,
    )
    dcc = search_dccs(
        graph, d, setting["s"], setting["k"], method="bottom-up"
    )
    row = {
        "dataset": dataset_name,
        "d": d,
        "mimag_time_s": quasi.elapsed,
        "bu_time_s": dcc.elapsed,
        "mimag_size": quasi.cover_size,
        "bu_size": dcc.cover_size,
        "precision": precision(quasi.clusters, dcc.sets),
        "recall": recall(quasi.clusters, dcc.sets),
        "f1": f1_score(quasi.clusters, dcc.sets),
        "mimag_truncated": quasi.truncated,
    }
    return row, quasi, dcc


def figure29(dataset_names=("ppi", "author"), d_values=(2, 3, 4),
             scale=1.0, seed=0, node_budget=20000):
    """The full Fig. 29 table."""
    rows = []
    for name in dataset_names:
        for d in d_values:
            row, _, _ = compare_mimag(
                name, d, scale=scale, seed=seed, node_budget=node_budget
            )
            rows.append(row)
    return rows


def figure30(dataset_name, d=3, sizes=(3, 4, 5), scale=1.0, seed=0,
             node_budget=20000):
    """Fig. 30: distribution of ``|Q ∩ Cov(R_C)|`` by quasi-clique size.

    Quasi-cliques of other sizes are ignored, exactly as the paper's table
    only lists |Q| ∈ {3, 4, 5}.
    """
    _, quasi, dcc = compare_mimag(
        dataset_name, d, scale=scale, seed=seed, node_budget=node_budget
    )
    relevant = [q for q in quasi.all_maximal if len(q) in sizes]
    distribution = containment_distribution(relevant, dcc.cover)
    return {
        "dataset": dataset_name,
        "d": d,
        "distribution": distribution,
        "fully_contained": fully_contained_fraction(relevant, dcc.cover),
    }


def figure31(dataset_name="author", d=3, scale=1.0, seed=0,
             node_budget=20000):
    """Fig. 31: the red/green/blue cover-difference classes, quantified.

    The paper shows a drawing; the reproducible content is (a) the three
    vertex classes and (b) the qualitative density claims, which
    :func:`repro.metrics.containment.class_densities` turns into numbers.
    """
    _, quasi, dcc = compare_mimag(
        dataset_name, d, scale=scale, seed=seed, node_budget=node_budget
    )
    both, only_dcc, only_quasi = cover_difference_classes(
        dcc.cover, quasi.cover
    )
    dataset = load(dataset_name, scale=scale, seed=seed)
    densities = class_densities(dataset.graph, dcc.cover, quasi.cover)
    return {
        "dataset": dataset_name,
        "d": d,
        "both": len(both),
        "only_dcc": len(only_dcc),
        "only_quasi": len(only_quasi),
        "densities": densities,
    }


def figure32(d_values=(2, 3, 4), scale=1.0, seed=0, node_budget=20000):
    """Fig. 32: protein-complex recovery on the PPI stand-in.

    Ground truth is the planted complexes of the dataset (the MIPS
    substitution of DESIGN.md).  Returns one row per ``d`` with the
    recovery rates of both algorithms.
    """
    rows = []
    dataset = load("ppi", scale=scale, seed=seed)
    for d in d_values:
        row, quasi, dcc = compare_mimag(
            "ppi", d, scale=scale, seed=seed, node_budget=node_budget
        )
        rows.append({
            "d": d,
            "mimag_recovery": complex_recovery_rate(
                dataset.complexes, quasi.clusters
            ),
            "bu_recovery": complex_recovery_rate(
                dataset.complexes, dcc.sets
            ),
            "complexes": len(dataset.complexes),
        })
    return rows
