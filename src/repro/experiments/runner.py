"""Shared measurement plumbing for the experiment harness.

Every figure-reproduction function boils down to: take a dataset, sweep
one parameter, run one or more algorithms per point, and record
``(time, cover size, search counters)`` rows.  :func:`measure_point` is
that inner loop; the sweep modules compose it.
"""

from repro.core.api import search_dccs
from repro.graph.backend import resolve_search_graph


def measure_point(graph, d, s, k, methods, seed=0, backend="auto",
                  jobs=None, **options):
    """Run each method once and return one row per method.

    ``options`` are forwarded to :func:`repro.core.search_dccs` (pruning
    and preprocessing switches for the ablations).  ``backend`` selects
    the graph representation; with ``"auto"`` mid-sized sweeps run on the
    frozen CSR backend, so the recorded times reflect it.  ``jobs``
    selects the execution mode the same way it does on ``search_dccs``:
    ``None`` measures the sequential algorithms, anything else the
    sharded parallel variants (worker-pool spawn cost lands inside each
    row's timer — parallel rows report what a caller would actually
    get).  The backend conversion cache is warmed up front: these rows
    compare *methods*, so the one-time freeze/thaw cost must not land on
    whichever method happens to run first.
    """
    resolve_search_graph(graph, backend)
    rows = []
    for method in methods:
        result = search_dccs(
            graph, d, s, k, method=method, seed=seed, backend=backend,
            jobs=jobs, **options
        )
        rows.append(result_row(result, method=method, d=d, s=s, k=k))
    return rows


def result_row(result, **extra):
    """Flatten a :class:`DCCSResult` into a table row dict."""
    row = {
        "algorithm": result.algorithm,
        "time_s": result.elapsed,
        "cover": result.cover_size,
        "sets": len(result.sets),
        "dcc_calls": result.stats.dcc_calls,
        "candidates": result.stats.candidates_generated,
        "pruned": result.stats.candidates_pruned,
    }
    row.update(extra)
    return row


def sweep(graph, parameter, values, base, methods, backend="auto",
          jobs=None, **options):
    """Sweep ``parameter`` over ``values`` with other params from ``base``.

    ``base`` maps ``d``/``s``/``k`` to their fixed values; the swept
    parameter overrides its entry.  Returns a flat list of rows with the
    swept value recorded under the parameter name.  When the backend
    resolves to frozen, the freeze is paid once per graph (cached) and
    excluded from every row: :func:`measure_point` warms the conversion
    cache before its timers start, so rows compare methods only.
    ``jobs`` is forwarded to every point (see :func:`measure_point`).
    """
    rows = []
    for value in values:
        point = dict(base)
        point[parameter] = value
        for row in measure_point(
            graph, point["d"], point["s"], point["k"], methods,
            backend=backend, jobs=jobs, **options
        ):
            row[parameter] = value
            rows.append(row)
    return rows
