"""Shared measurement plumbing for the experiment harness.

Every figure-reproduction function boils down to: take a dataset, sweep
one parameter, run one or more algorithms per point, and record
``(time, cover size, search counters)`` rows.  :func:`measure_point` is
that inner loop; the sweep modules compose it.
"""

from repro.core.api import search_dccs


def measure_point(graph, d, s, k, methods, seed=0, **options):
    """Run each method once and return one row per method.

    ``options`` are forwarded to :func:`repro.core.search_dccs` (pruning
    and preprocessing switches for the ablations).
    """
    rows = []
    for method in methods:
        result = search_dccs(
            graph, d, s, k, method=method, seed=seed, **options
        )
        rows.append(result_row(result, method=method, d=d, s=s, k=k))
    return rows


def result_row(result, **extra):
    """Flatten a :class:`DCCSResult` into a table row dict."""
    row = {
        "algorithm": result.algorithm,
        "time_s": result.elapsed,
        "cover": result.cover_size,
        "sets": len(result.sets),
        "dcc_calls": result.stats.dcc_calls,
        "candidates": result.stats.candidates_generated,
        "pruned": result.stats.candidates_pruned,
    }
    row.update(extra)
    return row


def sweep(graph, parameter, values, base, methods, **options):
    """Sweep ``parameter`` over ``values`` with other params from ``base``.

    ``base`` maps ``d``/``s``/``k`` to their fixed values; the swept
    parameter overrides its entry.  Returns a flat list of rows with the
    swept value recorded under the parameter name.
    """
    rows = []
    for value in values:
        point = dict(base)
        point[parameter] = value
        for row in measure_point(
            graph, point["d"], point["s"], point["k"], methods, **options
        ):
            row[parameter] = value
            rows.append(row)
    return rows
