"""Shared measurement plumbing for the experiment harness.

Every figure-reproduction function boils down to: take a dataset, sweep
one parameter, run one or more algorithms per point, and record
``(time, cover size, search counters)`` rows.  :func:`measure_point` is
that inner loop; the sweep modules compose it.
"""

from repro.core.api import search_dccs
from repro.graph.backend import resolve_search_graph
from repro.utils.errors import ParameterError


def measure_point(graph, d, s, k, methods, seed=0, backend="auto",
                  jobs=None, engine=None, **options):
    """Run each method once and return one row per method.

    ``options`` are forwarded to :func:`repro.core.search_dccs` (pruning
    and preprocessing switches for the ablations).  ``backend`` selects
    the graph representation; with ``"auto"`` mid-sized sweeps run on the
    frozen CSR backend, so the recorded times reflect it.  ``jobs``
    selects the execution mode the same way it does on ``search_dccs``:
    ``None`` measures the sequential algorithms, anything else the
    sharded parallel variants.

    ``engine`` reuses a warm :class:`repro.engine.DCCEngine` that owns
    ``graph`` (``backend``/``jobs`` are then the engine's own).  Timer
    semantics differ deliberately between the two parallel modes:
    without an engine each row's timer *includes* the worker-pool spawn,
    because that is what a one-shot caller actually pays; with an engine
    the pool is warmed before the first timed row, so rows record the
    amortised per-query latency of a session — see
    ``docs/experiments.md``.  Either way the one-time backend
    conversion is warmed up front: these rows compare *methods*, so the
    freeze/thaw cost must not land on whichever method runs first.
    """
    if engine is not None:
        if engine.source_graph is not graph:
            raise ParameterError(
                "the supplied engine owns a different graph than the one "
                "being measured"
            )
        engine.warm()

        def run(method):
            return engine.search(d, s, k, method=method, seed=seed,
                                 **options)
    else:
        resolve_search_graph(graph, backend)

        def run(method):
            return search_dccs(graph, d, s, k, method=method, seed=seed,
                               backend=backend, jobs=jobs, **options)
    rows = []
    for method in methods:
        rows.append(result_row(run(method), method=method, d=d, s=s, k=k))
    return rows


def result_row(result, **extra):
    """Flatten a :class:`DCCSResult` into a table row dict."""
    row = {
        "algorithm": result.algorithm,
        "time_s": result.elapsed,
        "cover": result.cover_size,
        "sets": len(result.sets),
        "dcc_calls": result.stats.dcc_calls,
        "candidates": result.stats.candidates_generated,
        "pruned": result.stats.candidates_pruned,
    }
    row.update(extra)
    return row


def sweep(graph, parameter, values, base, methods, backend="auto",
          jobs=None, engine=None, host=None, graph_name=None, **options):
    """Sweep ``parameter`` over ``values`` with other params from ``base``.

    ``base`` maps ``d``/``s``/``k`` to their fixed values; the swept
    parameter overrides its entry.  Returns a flat list of rows with the
    swept value recorded under the parameter name.  When the backend
    resolves to frozen, the freeze is paid once per graph (cached) and
    excluded from every row: :func:`measure_point` warms the conversion
    cache before its timers start, so rows compare methods only.

    Parallel sweeps run through one engine session: with ``jobs`` set
    (and no ``engine`` supplied) a :class:`repro.engine.DCCEngine` is
    created once and serves **every point**, so the pool spawns once per
    sweep instead of once per row and per-graph artifacts carry across
    points.  Pass ``engine=`` to share a session across sweeps.

    ``host`` shares a :class:`repro.host.DCCHost` across sweeps over
    *different* graphs: the sweep attaches ``graph`` under
    ``graph_name`` (default: the graph's own name; auto-suffixed when
    the name is already serving a different graph object, e.g. the same
    dataset at another scale) on first use and serves every row through
    the host's engine for it, re-acquired per row so host-level
    eviction between rows only costs a cold query, never a crash.  The host outlives the sweep — closing it (and its
    pools) stays the caller's job, which is the point: one warm host
    amortises engines across a whole table of dataset rows.

    ``host`` may also be an :class:`repro.aio.AsyncDCCHost`: each
    point's methods are then served as **one async batch**
    (:meth:`~repro.aio.AsyncDCCHost.run_batch`), so a point's rows
    pipeline through the engine and duplicate specs coalesce.  Results
    are bitwise identical to the synchronous host path — only the
    serving topology changes.  Per-row times are the engine-measured
    per-query windows; batch windows overlap, so do not sum them.
    Closing the async host (``aclose``/``run_batch``'s own drain) stays
    the caller's job, exactly like the sync host.  Not usable from
    inside a running event loop.
    """
    own_engine = None
    use_host = engine is None and host is not None
    async_host = None
    if use_host and hasattr(host, "run_batch"):
        async_host, host = host, host.host
    if use_host:
        if graph_name is None:
            graph_name = getattr(graph, "name", "") \
                or "sweep-graph-{:x}".format(id(graph))
        if host.is_attached(graph_name) and \
                host.graph(graph_name) is not graph:
            # Same name, different graph object — the vary_* wrappers
            # reuse the dataset name, so this is the same dataset at
            # another scale/seed.  Derive a unique name instead of
            # aborting; identical graphs still share one session
            # because the dataset loader memoises by (name, scale,
            # seed).
            graph_name = "{}@{:x}".format(graph_name, id(graph))
        if not host.is_attached(graph_name):
            host.attach(graph_name, graph, backend=backend, jobs=jobs)
    elif engine is None and jobs is not None:
        from repro.engine import DCCEngine

        own_engine = engine = DCCEngine(graph, backend=backend, jobs=jobs)
    rows = []
    try:
        for value in values:
            point = dict(base)
            point[parameter] = value
            if async_host is not None:
                point_rows = _async_point(async_host, graph_name, point,
                                          methods, options)
            else:
                if use_host:
                    engine = host.engine(graph_name)
                point_rows = measure_point(
                    graph, point["d"], point["s"], point["k"], methods,
                    backend=backend, jobs=jobs, engine=engine, **options
                )
            for row in point_rows:
                row[parameter] = value
                rows.append(row)
    finally:
        if own_engine is not None:
            own_engine.close()
    return rows


def _async_point(async_host, graph_name, point, methods, options):
    """One sweep point served as a single async batch; rows per method.

    Mirrors :func:`measure_point`'s engine path spec-for-spec (same
    default ``seed=0``, same option forwarding, same warm-pool timer
    semantics — the engine is admitted and warmed before the timed
    batch, so rows record amortised per-query latency, not pool spawn)
    and the recorded rows are bitwise comparable — the methods of the
    point just travel together through the queues and coalescer instead
    of one blocking call each.
    """
    async_host.host.engine(graph_name).warm()
    specs = []
    for method in methods:
        spec = dict(options, graph=graph_name, d=point["d"], s=point["s"],
                    k=point["k"], method=method)
        spec.setdefault("seed", 0)
        specs.append(spec)
    results = async_host.run_batch(specs)
    return [
        result_row(result, method=method, d=point["d"], s=point["s"],
                   k=point["k"])
        for method, result in zip(methods, results)
    ]
