"""Plain-text rendering of experiment results in the paper's layouts.

The benchmark harness prints these tables so that the pytest-benchmark
output doubles as the figure reproduction; EXPERIMENTS.md pastes them.
"""

from repro.datasets import dataset_statistics
from repro.experiments.config import DEFAULTS, RANGES


def format_table(rows, columns, title=None, floatfmt="{:.3f}"):
    """Render ``rows`` (dicts) with the given columns as aligned text."""
    def cell(row, column):
        value = row.get(column, "")
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    header = [str(column) for column in columns]
    body = [[cell(row, column) for column in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body
        else len(header[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def pivot_series(rows, x, series="algorithm", y="time_s"):
    """Reshape sweep rows into ``{series: [(x, y), ...]}`` — one line per
    algorithm, the exact content of the paper's line plots."""
    lines = {}
    for row in rows:
        lines.setdefault(row[series], []).append((row[x], row[y]))
    for points in lines.values():
        points.sort()
    return lines


def format_series(rows, x, y="time_s", title=None):
    """Render sweep rows as one text line per algorithm (plot stand-in)."""
    lines = pivot_series(rows, x, y=y)
    out = []
    if title:
        out.append(title)
    for name in sorted(lines):
        points = "  ".join(
            "{}={:.3g}".format(px, py) for px, py in lines[name]
        )
        out.append("{:>10s}: {}".format(name, points))
    return "\n".join(out)


def figure12_table(scale=1.0, seed=0):
    """Fig. 12: dataset statistics — stand-in vs paper original."""
    rows = []
    for entry in dataset_statistics(scale=scale, seed=seed):
        paper = entry.pop("paper")
        rows.append({
            "graph": entry["name"],
            "|V|": entry["vertices"],
            "sum|Ei|": entry["total_edges"],
            "|U Ei|": entry["union_edges"],
            "l": entry["layers"],
            "paper |V|": paper["vertices"],
            "paper sum|Ei|": paper["total_edges"],
            "paper l": paper["layers"],
        })
    return format_table(
        rows,
        ["graph", "|V|", "sum|Ei|", "|U Ei|", "l",
         "paper |V|", "paper sum|Ei|", "paper l"],
        title="Fig. 12 — dataset statistics (stand-in | paper)",
    )


def figure13_table():
    """Fig. 13: the parameter configuration table, verbatim."""
    rows = [
        {"parameter": "k", "range": str(RANGES["k"]),
         "default": DEFAULTS["k"]},
        {"parameter": "d", "range": str(RANGES["d"]),
         "default": DEFAULTS["d"]},
        {"parameter": "s (small)", "range": str(RANGES["s_small"]),
         "default": DEFAULTS["s_small"]},
        {"parameter": "s (large)",
         "range": "l(G)-4 .. l(G)",
         "default": "l(G)-{}".format(DEFAULTS["s_large_offset"])},
        {"parameter": "p", "range": str(RANGES["p"]), "default": DEFAULTS["p"]},
        {"parameter": "q", "range": str(RANGES["q"]), "default": DEFAULTS["q"]},
    ]
    return format_table(
        rows, ["parameter", "range", "default"],
        title="Fig. 13 — parameter configuration",
    )


def figure30_table(payload):
    """Render a :func:`figure30` result in the paper's matrix layout."""
    lines = [
        "Fig. 30 — |Q ∩ Cov(Rc)| distribution on {} (d={})".format(
            payload["dataset"], payload["d"]
        )
    ]
    for size in sorted(payload["distribution"]):
        fractions = payload["distribution"][size]
        cells = "  ".join(
            "{}:{:.4f}".format(overlap, fractions.get(overlap, 0.0))
            for overlap in range(size + 1)
        )
        lines.append("|Q|={}  {}".format(size, cells))
    lines.append(
        "fully contained: {:.4f}".format(payload["fully_contained"])
    )
    return "\n".join(lines)
