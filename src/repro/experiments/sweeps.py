"""Parameter-sweep experiments: Figs. 14–27.

One function per paper figure.  Each returns a list of row dicts that
:mod:`repro.experiments.tables` renders in the paper's layout; the
benchmark modules under ``benchmarks/`` call the same functions, so the
printed bench output *is* the figure reproduction.

Figure map
----------
* Figs. 14/16 — time / cover vs small ``s`` (GD vs BU);
* Figs. 15/17 — time / cover vs large ``s`` (GD vs BU vs TD);
* Figs. 18/20 — time / cover vs ``d`` at small ``s`` (GD vs BU);
* Figs. 19/21 — time / cover vs ``d`` at large ``s`` (GD vs TD);
* Figs. 22/24 — time / cover vs ``k`` at small ``s`` (GD vs BU);
* Figs. 23/25 — time / cover vs ``k`` at large ``s`` (GD vs TD);
* Fig. 26 — time vs vertex fraction ``p`` (all three);
* Fig. 27 — time vs layer fraction ``q`` (all three).
"""

from repro.datasets import load
from repro.experiments.config import BENCH_SCALE, DEFAULTS, RANGES, s_large
from repro.experiments.runner import sweep
from repro.utils.rng import make_rng


def _dataset(name, scale=None, seed=0):
    if scale is None:
        scale = BENCH_SCALE.get(name, 1.0)
    return load(name, scale=scale, seed=seed)


def _base(graph, s=None):
    return {
        "d": DEFAULTS["d"],
        "s": DEFAULTS["s_small"] if s is None else s,
        "k": DEFAULTS["k"],
    }


def vary_small_s(dataset_name, methods=("greedy", "bottom-up"),
                 s_values=None, scale=None, seed=0, host=None):
    """Figs. 14 and 16: sweep the small-s range on one dataset.

    ``host`` reuses a caller-owned :class:`repro.host.DCCHost` across
    dataset rows — the graph is attached under ``dataset_name`` and its
    engine session survives for the next figure over the same dataset.
    """
    dataset = _dataset(dataset_name, scale, seed)
    values = RANGES["s_small"] if s_values is None else s_values
    rows = sweep(dataset.graph, "s", values, _base(dataset.graph),
                 methods, seed=seed, host=host, graph_name=dataset_name)
    for row in rows:
        row["dataset"] = dataset_name
    return rows


def vary_large_s(dataset_name, methods=("greedy", "bottom-up", "top-down"),
                 s_values=None, scale=None, seed=0, host=None):
    """Figs. 15 and 17: sweep the large-s range on one dataset."""
    dataset = _dataset(dataset_name, scale, seed)
    num_layers = dataset.graph.num_layers
    if s_values is None:
        s_values = tuple(
            max(1, num_layers - offset)
            for offset in RANGES["s_large_offsets"]
        )
    rows = sweep(dataset.graph, "s", s_values, _base(dataset.graph),
                 methods, seed=seed, host=host, graph_name=dataset_name)
    for row in rows:
        row["dataset"] = dataset_name
    return rows


def vary_d(dataset_name, large_s=False, d_values=None, methods=None,
           scale=None, seed=0, host=None):
    """Figs. 18–21: sweep ``d`` at small or large ``s``.

    The paper pairs GD with BU at small ``s`` (Figs. 18/20) and GD with TD
    at large ``s`` (Figs. 19/21).
    """
    dataset = _dataset(dataset_name, scale, seed)
    if methods is None:
        methods = ("greedy", "top-down") if large_s else ("greedy", "bottom-up")
    s = s_large(dataset.graph.num_layers) if large_s \
        else DEFAULTS["s_small"]
    values = RANGES["d"] if d_values is None else d_values
    rows = sweep(dataset.graph, "d", values, _base(dataset.graph, s=s),
                 methods, seed=seed, host=host, graph_name=dataset_name)
    for row in rows:
        row["dataset"] = dataset_name
        row["s"] = s
    return rows


def vary_k(dataset_name, large_s=False, k_values=None, methods=None,
           scale=None, seed=0, host=None):
    """Figs. 22–25: sweep ``k`` at small or large ``s``."""
    dataset = _dataset(dataset_name, scale, seed)
    if methods is None:
        methods = ("greedy", "top-down") if large_s else ("greedy", "bottom-up")
    s = s_large(dataset.graph.num_layers) if large_s \
        else DEFAULTS["s_small"]
    values = RANGES["k"] if k_values is None else k_values
    rows = sweep(dataset.graph, "k", values, _base(dataset.graph, s=s),
                 methods, seed=seed, host=host, graph_name=dataset_name)
    for row in rows:
        row["dataset"] = dataset_name
        row["s"] = s
    return rows


def vary_p(dataset_name="stack", p_values=None, large_s=False,
           methods=None, scale=None, seed=0):
    """Fig. 26: scalability in the vertex fraction ``p``.

    A fraction ``p`` of vertices is sampled uniformly and the induced
    multi-layer subgraph searched; the paper runs this on its largest
    dataset (Stack) and observes near-linear growth.

    The backend is pinned to ``"frozen"`` for every sample point: the
    sweep compares *sizes*, and letting ``backend="auto"`` flip small
    samples to the dict representation (or the kernel tier off) would
    fold a representation switch into the scaling curve.
    """
    dataset = _dataset(dataset_name, scale, seed)
    if methods is None:
        methods = ("top-down",) if large_s else ("greedy", "bottom-up")
    s = s_large(dataset.graph.num_layers) if large_s \
        else DEFAULTS["s_small"]
    values = RANGES["p"] if p_values is None else p_values
    rng = make_rng(seed)
    vertices = sorted(dataset.graph.vertices())
    rows = []
    for p in values:
        count = max(1, int(len(vertices) * p))
        sample = set(rng.sample(vertices, count))
        graph = dataset.graph.induced_subgraph(
            sample, name="{}-p{}".format(dataset_name, p)
        )
        for row in sweep(graph, "p", (p,), _base(graph, s=s),
                         methods, backend="frozen", seed=seed):
            row["dataset"] = dataset_name
            row["s"] = s
            rows.append(row)
    return rows


def vary_q(dataset_name="stack", q_values=None, large_s=False,
           methods=None, scale=None, seed=0):
    """Fig. 27: scalability in the layer fraction ``q``.

    A fraction ``q`` of layers is sampled; ``s`` is clamped to stay valid
    on the reduced layer count.  The backend is pinned to ``"frozen"``
    for the same reason as :func:`vary_p`.
    """
    dataset = _dataset(dataset_name, scale, seed)
    if methods is None:
        methods = ("top-down",) if large_s else ("greedy", "bottom-up")
    values = RANGES["q"] if q_values is None else q_values
    rng = make_rng(seed)
    num_layers = dataset.graph.num_layers
    rows = []
    for q in values:
        count = max(1, int(num_layers * q))
        layer_ids = sorted(rng.sample(range(num_layers), count))
        graph = dataset.graph.subgraph_of_layers(
            layer_ids, name="{}-q{}".format(dataset_name, q)
        )
        s = s_large(graph.num_layers) if large_s else \
            min(DEFAULTS["s_small"], graph.num_layers)
        for row in sweep(graph, "q", (q,), _base(graph, s=s),
                         methods, backend="frozen", seed=seed):
            row["dataset"] = dataset_name
            row["s"] = s
            rows.append(row)
    return rows
