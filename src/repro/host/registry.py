"""The multi-graph engine host: a registry of sessions under one roof.

:class:`DCCHost` is the layer above :class:`repro.engine.DCCEngine` the
ROADMAP's serving track calls for: one process serving d-CC queries over
*many* graphs.  Each attached graph gets a named registration; an engine
session (backend resolution, worker pool, artifact cache, scratch arena)
is **admitted** lazily on first use and stays resident until admission
control pushes it out.

Admission control has two levers, both enforced at admission time:

* ``max_engines`` — at most this many engine sessions are resident at
  once.  Admitting one more evicts the least-recently-used session
  first, and eviction *closes* the victim's engine, shutting its worker
  pool down — an evicted graph holds no processes, no artifact cache
  and no frozen conversion, only its registration.
* ``memory_budget_bytes`` — a global cap on the summed
  ``engine.memory_bytes()`` of resident sessions (the resolved search
  graphs plus whatever lazy caches queries actually built).  While the
  total exceeds the budget, LRU sessions are evicted — except the one
  being admitted, because evicting the session about to serve would
  just thrash.  The budget is therefore best-effort by design: a single
  graph larger than the budget still serves, with every *other* session
  evicted around it.

Re-admission is cold but **exact**: a re-admitted graph gets a fresh
engine over the same registered graph object, and the engine layer's
determinism contract (see ``repro/engine/session.py``) makes its
results and counters bitwise identical to the pre-eviction session and
to a fresh single-graph :class:`DCCEngine` — eviction can cost latency,
never correctness (property-tested in ``tests/test_host.py``).

Host-owned engines run with a *bounded* artifact cache
(``cache_max_entries`` / ``cache_ttl`` forwarded to
:class:`repro.engine.cache.ArtifactCache`), unlike a standalone engine,
whose cache stays unbounded by default — one graph's parameter space is
self-limiting, a fleet of them is not.

Like the engine, a host is not thread-safe; it is the synchronous
substrate the planned async front-end will wrap.
"""

from collections import OrderedDict
from contextlib import contextmanager

from repro.engine import DCCEngine
from repro.graph.backend import check_backend
from repro.graph.kernels import resolve_kernel
from repro.parallel.executor import check_jobs
from repro.utils.errors import (
    HostClosedError,
    ParameterError,
    UnknownGraphError,
)

# Default cap on resident engine sessions.  Deliberately small: every
# resident session can hold a worker pool (processes!) plus a frozen
# conversion, and re-admission is exact, so erring low costs latency on
# cold graphs rather than memory on hot ones.
DEFAULT_MAX_ENGINES = 4

# Default artifact-cache entry cap for host-owned engines.  Each entry
# is one preprocess fixed point / seed list / hierarchy index; a few
# hundred covers any realistic parameter sweep over one graph.
DEFAULT_CACHE_MAX_ENTRIES = 256


def _check_host_shards(shards, backend):
    """Normalise a host/attach ``shards`` setting (``None`` = unsharded).

    Validation is shared with the shard subsystem (positive int, capped)
    but imported lazily so an unsharded host never touches that layer.
    A dict-backend registration cannot shard — shards are CSR slices —
    and the conflict is reported here, at registration time, not at
    admission with an eviction already paid.
    """
    if shards is None:
        return None
    from repro.shard.partition import check_shards

    check_shards(shards)
    if shards > 1 and backend == "dict":
        raise ParameterError(
            "shards={} requires the frozen backend; backend='dict' "
            "cannot be partitioned".format(shards)
        )
    return shards


class _Registration:
    """One attached graph plus its per-graph engine overrides."""

    __slots__ = ("graph", "backend", "jobs", "cache_artifacts", "kernel",
                 "shards")

    def __init__(self, graph, backend, jobs, cache_artifacts, kernel,
                 shards):
        self.graph = graph
        self.backend = backend
        self.jobs = jobs
        self.cache_artifacts = cache_artifacts
        self.kernel = kernel
        self.shards = shards


class DCCHost:
    """A registry of named :class:`DCCEngine` sessions over many graphs.

    Parameters
    ----------
    max_engines:
        Resident-session cap (default :data:`DEFAULT_MAX_ENGINES`);
        admission beyond it evicts LRU sessions, closing their pools.
    memory_budget_bytes:
        Optional global cap on summed resident ``memory_bytes()``; LRU
        sessions are evicted while the total exceeds it (the session
        being admitted is never the victim).
    backend / jobs / cache_artifacts / kernel / shards:
        Host-wide engine defaults, overridable per graph at
        :meth:`attach` time (``kernel`` picks the frozen backend's peel
        tier — ``"auto"`` / ``"python"`` / ``"numpy"``; results are
        bitwise identical between tiers; ``shards=N`` with ``N > 1``
        admits graphs as sharded sessions budgeted per shard — see
        :meth:`attach`).
    cache_max_entries / cache_ttl:
        Artifact-cache bounds every host-owned engine runs with
        (default: :data:`DEFAULT_CACHE_MAX_ENTRIES` entries, no TTL).

    Use as a context manager (or call :meth:`close`) so every resident
    pool shuts down deterministically::

        with DCCHost(max_engines=2, jobs=2) as host:
            host.attach("ppi", ppi_graph)
            host.attach("wiki", wiki_graph, backend="frozen")
            a = host.search("ppi", d=3, s=2, k=2)
            rest = host.search_many([
                {"graph": "wiki", "d": 2, "s": 2, "k": 4},
                {"graph": "ppi", "d": 3, "s": 2, "k": 2},
            ])
    """

    def __init__(self, max_engines=DEFAULT_MAX_ENGINES,
                 memory_budget_bytes=None, backend="auto", jobs=0,
                 cache_artifacts=True,
                 cache_max_entries=DEFAULT_CACHE_MAX_ENTRIES,
                 cache_ttl=None, kernel="auto", shards=None):
        if isinstance(max_engines, bool) or not isinstance(max_engines, int) \
                or max_engines < 1:
            raise ParameterError(
                "max_engines must be a positive integer, got {!r}".format(
                    max_engines
                )
            )
        if memory_budget_bytes is not None and (
                isinstance(memory_budget_bytes, bool)
                or not isinstance(memory_budget_bytes, (int, float))
                or not memory_budget_bytes > 0):
            raise ParameterError(
                "memory_budget_bytes must be None or a positive number "
                "of bytes, got {!r}".format(memory_budget_bytes)
            )
        check_backend(backend)
        check_jobs(jobs)
        resolve_kernel(kernel)
        shards = _check_host_shards(shards, backend)
        self.max_engines = max_engines
        self.memory_budget_bytes = memory_budget_bytes
        self._backend = backend
        self._kernel = kernel
        self._jobs = jobs
        self._shards = shards
        self._cache_artifacts = cache_artifacts
        self._cache_max_entries = cache_max_entries
        self._cache_ttl = cache_ttl
        self._registry = OrderedDict()
        self._resident = OrderedDict()  # name -> DCCEngine, LRU order
        self._pins = {}  # name -> lease count; pinned sessions never evict
        self._closed = False
        self.admissions = 0
        self.evictions = 0
        self.searches_served = 0

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def attach(self, name, graph, backend=None, jobs=None,
               cache_artifacts=None, kernel=None, shards=None):
        """Register ``graph`` under ``name``; no session is admitted yet.

        Engine overrides left as ``None`` inherit the host-wide
        defaults.  ``shards=N`` (with ``N > 1``) admits the graph as a
        :class:`~repro.shard.engine.ShardedEngine` — the graph is cut
        into ``N`` vertex-range blocks and admission control charges the
        session for its largest single shard instead of the whole graph
        (see :meth:`budget_bytes`); results stay bitwise identical to
        the unsharded session.  Names are unique — re-attaching a live
        name raises (detach first, which also closes any resident
        session).
        """
        self._check_open()
        if not isinstance(name, str) or not name:
            raise ParameterError(
                "graph name must be a non-empty string, got {!r}".format(name)
            )
        if name in self._registry:
            raise ParameterError(
                "a graph named {!r} is already attached; detach it "
                "first".format(name)
            )
        # Validate overrides now, not at admission: a poison
        # registration discovered mid-eviction would already have
        # closed the LRU victim's warm pool for nothing.
        if backend is not None:
            check_backend(backend)
        if jobs is not None:
            check_jobs(jobs)
        if kernel is not None:
            resolve_kernel(kernel)
        effective_backend = self._backend if backend is None else backend
        effective_shards = _check_host_shards(
            self._shards if shards is None else shards, effective_backend
        )
        self._registry[name] = _Registration(
            graph,
            effective_backend,
            self._jobs if jobs is None else jobs,
            self._cache_artifacts if cache_artifacts is None
            else cache_artifacts,
            self._kernel if kernel is None else kernel,
            effective_shards,
        )
        return self

    def detach(self, name):
        """Drop a registration, closing its resident session if any."""
        self._check_open()
        if name not in self._registry:
            raise UnknownGraphError(name, self._registry)
        if self._pins.get(name):
            raise ParameterError(
                "graph {!r} is pinned (its session is serving); detach "
                "after the lease is released".format(name)
            )
        if name in self._resident:
            self._evict(name)
        del self._registry[name]

    def is_attached(self, name):
        """Whether a graph is registered under ``name``."""
        return name in self._registry

    def graph(self, name):
        """The registered source graph behind ``name``."""
        try:
            return self._registry[name].graph
        except KeyError:
            raise UnknownGraphError(name, self._registry) from None

    def names(self):
        """The attached graph names, in attachment order."""
        return tuple(self._registry)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------

    def engine(self, name):
        """The resident engine for ``name``, admitting it if needed.

        Touching an engine marks it most-recently-used.  The returned
        session stays valid until the host evicts it (a later admission
        under pressure) — callers holding one across other host calls
        should re-acquire rather than cache it.
        """
        self._check_open()
        try:
            registration = self._registry[name]
        except KeyError:
            raise UnknownGraphError(name, self._registry) from None
        engine = self._resident.get(name)
        if engine is not None:
            self._resident.move_to_end(name)
            return engine
        # Admission: make room first, so the resident count never
        # transiently exceeds the cap (pools are processes).  Pinned
        # sessions are skipped — evicting one would close a pool with
        # requests in flight.  If *every* resident session is pinned the
        # cap is transiently exceeded instead (sync callers never pin,
        # and the async front-end bounds concurrently-leased graphs by
        # this same cap, so overshoot is at most one session and
        # :meth:`unpin` shrinks back).
        while len(self._resident) >= self.max_engines:
            victim = self._eviction_candidate()
            if victim is None:
                break
            self._evict(victim)
        if registration.shards is not None and registration.shards > 1:
            from repro.shard.engine import ShardedEngine

            engine = ShardedEngine(
                registration.graph,
                shards=registration.shards,
                backend=registration.backend,
                jobs=registration.jobs,
                cache_artifacts=registration.cache_artifacts,
                cache_max_entries=self._cache_max_entries,
                cache_ttl=self._cache_ttl,
                kernel=registration.kernel,
            )
        else:
            engine = DCCEngine(
                registration.graph,
                backend=registration.backend,
                jobs=registration.jobs,
                cache_artifacts=registration.cache_artifacts,
                cache_max_entries=self._cache_max_entries,
                cache_ttl=self._cache_ttl,
                kernel=registration.kernel,
            )
        self._resident[name] = engine
        self.admissions += 1
        self._enforce_budget(keep=name)
        return engine

    def _eviction_candidate(self, keep=None):
        """The LRU resident session that may be evicted, or ``None``.

        Pinned sessions (and ``keep``) are never candidates: a pin marks
        an engine with requests in flight, and eviction *closes* pools.
        """
        for name in self._resident:
            if name != keep and not self._pins.get(name):
                return name
        return None

    def _evict(self, name):
        """Close and drop one resident session; its registration stays."""
        engine = self._resident.pop(name)
        engine.close()
        self.evictions += 1

    def _enforce_budget(self, keep):
        """Evict LRU sessions while over the global memory budget.

        The budget compares against :meth:`budget_bytes` — identical to
        :meth:`memory_bytes` for unsharded sessions, but a sharded
        session is charged only its largest single shard, which is what
        lets a graph *bigger than the whole budget* serve under it.
        ``keep`` (the session just admitted or touched) is never the
        victim: evicting the engine about to serve would thrash.  With
        only ``keep`` (or only pinned sessions) left the loop stops —
        the budget is best-effort for a single oversized graph.
        """
        if self.memory_budget_bytes is None:
            return
        while len(self._resident) > 1 and \
                self.budget_bytes() > self.memory_budget_bytes:
            victim = self._eviction_candidate(keep=keep)
            if victim is None:
                break
            self._evict(victim)

    # ------------------------------------------------------------------
    # pinning (the async front-end's eviction guard)
    # ------------------------------------------------------------------

    def pin(self, name):
        """Exempt ``name``'s session from eviction until :meth:`unpin`.

        Pins are counted leases on the *name* (pinning does not admit;
        combine with :meth:`engine`, or use :meth:`lease` which does
        both in the right order).  A pinned session is never an eviction
        victim — the guard the async front-end relies on so admitting
        graph B cannot close graph A's pool while A still has shard
        futures in flight.
        """
        self._check_open()
        if name not in self._registry:
            raise UnknownGraphError(name, self._registry)
        self._pins[name] = self._pins.get(name, 0) + 1

    def unpin(self, name):
        """Release one pin; on the last release, re-enforce the cap."""
        count = self._pins.get(name, 0)
        if count <= 0:
            raise ParameterError(
                "graph {!r} is not pinned".format(name)
            )
        if count == 1:
            del self._pins[name]
            # Pay back any overshoot admission ran up while every
            # resident session was pinned.
            while len(self._resident) > self.max_engines:
                victim = self._eviction_candidate()
                if victim is None:
                    break
                self._evict(victim)
        else:
            self._pins[name] = count - 1

    @contextmanager
    def lease(self, name):
        """Pin ``name``, admit its engine, yield it, unpin on exit.

        The serving idiom for callers that must hold an engine across
        other host activity (the async dispatchers)::

            with host.lease("wiki") as engine:
                handle = engine.submit(d=2, s=2, k=4)
                ...  # other graphs may be admitted meanwhile

        The pin lands *before* admission so a concurrent admission
        cannot evict the session between :meth:`engine` returning and
        the caller using it.
        """
        self.pin(name)
        try:
            yield self.engine(name)
        finally:
            self.unpin(name)

    def resident(self):
        """Names of resident sessions, least recently used first."""
        return tuple(self._resident)

    def memory_bytes(self):
        """Summed resident bytes of every admitted session's graph."""
        return sum(
            engine.memory_bytes() for engine in self._resident.values()
        )

    def budget_bytes(self):
        """What the resident sessions cost against the memory budget.

        Equal to :meth:`memory_bytes` when nothing is sharded; sharded
        sessions are charged their largest single shard (see
        :meth:`DCCEngine.budget_bytes
        <repro.engine.session.DCCEngine.budget_bytes>`).
        """
        return sum(
            engine.budget_bytes() for engine in self._resident.values()
        )

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def search(self, name, d, s, k, method="auto", **options):
        """One search against the named graph's (possibly cold) session.

        Exactly :meth:`DCCEngine.search` after admission — same surface,
        same bitwise-determinism contract.
        """
        result = self.engine(name).search(d, s, k, method=method, **options)
        self.searches_served += 1
        return result

    def search_many(self, queries):
        """Serve a batch of specs spanning any number of graphs.

        ``queries`` is an iterable of dicts, each a
        :meth:`DCCEngine.search_many` spec plus a ``"graph"`` key naming
        an attached graph.  Results come back in input order, each
        bitwise identical to the corresponding :meth:`search` call.
        Specs are grouped by graph and each group pipelines through its
        engine's batch API, so a mixed batch pays one admission per
        distinct graph, not one per query — under a tight
        ``max_engines`` this is also what keeps eviction churn at one
        admission per group rather than per alternation.
        """
        self._check_open()
        parsed = []
        for number, entry in enumerate(queries, 1):
            entry = dict(entry)
            name = entry.pop("graph", None)
            if name is None:
                raise ParameterError(
                    "batch query {} ({!r}) is missing the \"graph\" key "
                    "naming an attached graph".format(number, entry)
                )
            if name not in self._registry:
                raise UnknownGraphError(name, self._registry)
            parsed.append((name, entry))
        groups = OrderedDict()
        for index, (name, entry) in enumerate(parsed):
            groups.setdefault(name, []).append((index, entry))
        results = [None] * len(parsed)
        for name, members in groups.items():
            batch = self.engine(name).search_many(
                [entry for _, entry in members]
            )
            for (index, _), result in zip(members, batch):
                results[index] = result
        self.searches_served += len(parsed)
        return results

    # ------------------------------------------------------------------
    # lifecycle / status
    # ------------------------------------------------------------------

    def close(self):
        """Evict every resident session; further host calls raise."""
        if not self._closed:
            self._closed = True
            while self._resident:
                engine = self._resident.popitem(last=False)[1]
                engine.close()
                self.evictions += 1

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _check_open(self):
        if self._closed:
            raise HostClosedError()

    def info(self):
        """Registry, admission and per-session status for monitoring."""
        engines = {}
        for name, engine in self._resident.items():
            status = engine.info()
            engines[name] = {
                "kernel": status["kernel"],
                "workers": status["workers"],
                "pool_spawned": status["pool_spawned"],
                "searches_served": status["searches_served"],
                "cache_entries": status["cache_entries"],
                "cache_hits": status["cache_hits"],
                "cache_misses": status["cache_misses"],
                "cache_evictions": status["cache_evictions"],
                "memory_bytes": status["memory_bytes"],
                "invalidations": status["invalidations"],
                # Streaming-update picture: patch-vs-rebuild rebinds,
                # what the selective artifact invalidation kept, and
                # how the source's freeze() amortised.
                "rebinds_patched": status["rebinds_patched"],
                "rebinds_full": status["rebinds_full"],
                "cache_layer_core_hits": status["cache_layer_core_hits"],
                "cache_layer_core_misses":
                    status["cache_layer_core_misses"],
                "cache_invalidations_kept":
                    status["cache_invalidations_kept"],
                "cache_invalidations_dropped":
                    status["cache_invalidations_dropped"],
                "freeze_patches": status["freeze_patches"],
                "freeze_rebuilds": status["freeze_rebuilds"],
            }
            if "shards" in status:
                # Sharded sessions: per-shard sizes, halo widths and
                # merge counts, so shard skew is observable.
                engines[name]["shards"] = status["shards"]
        return {
            "attached": len(self._registry),
            "attached_names": tuple(self._registry),
            "resident_engines": tuple(self._resident),
            "pinned": tuple(sorted(self._pins)),
            "max_engines": self.max_engines,
            "memory_budget_bytes": self.memory_budget_bytes,
            "memory_bytes": self.memory_bytes(),
            "budget_bytes": self.budget_bytes(),
            "admissions": self.admissions,
            "evictions": self.evictions,
            "searches_served": self.searches_served,
            "cache_max_entries": self._cache_max_entries,
            "cache_ttl": self._cache_ttl,
            "engines": engines,
            "closed": self._closed,
        }
