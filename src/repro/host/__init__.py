"""Multi-graph hosting: a registry of engine sessions under one roof.

One :class:`DCCHost` serves d-CC queries over many named graphs from a
single process, admitting :class:`repro.engine.DCCEngine` sessions
lazily and evicting them LRU-first under a resident-engine cap and an
optional global memory budget — eviction closes the victim's worker
pool, and re-admission is cold but bitwise exact.  Host-owned engines
run with bounded artifact caches; standalone engines stay unbounded by
default.

``repro host`` drives one from a JSON batch spec
(:func:`~repro.host.spec.parse_host_spec`); ``docs/architecture.md``
documents the admission-control and eviction policy.
"""

from repro.host.registry import (
    DEFAULT_CACHE_MAX_ENTRIES,
    DEFAULT_MAX_ENGINES,
    DCCHost,
)
from repro.host.spec import parse_host_spec

__all__ = [
    "DCCHost",
    "DEFAULT_MAX_ENGINES",
    "DEFAULT_CACHE_MAX_ENTRIES",
    "parse_host_spec",
]
