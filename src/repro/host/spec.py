"""Batch-spec parsing for multi-graph host runs.

The ``repro host`` CLI subcommand (and anything else that wants to
drive a :class:`~repro.host.registry.DCCHost` from a file) describes a
run as one JSON document::

    {
      "graphs": {"quickstart": "figure1", "english": "english"},
      "max_engines": 1,
      "queries": [
        {"graph": "quickstart", "d": 3, "s": 2, "k": 2},
        {"graph": "english", "d": 2, "s": 2, "k": 3},
        {"graph": "quickstart", "d": 2, "s": 2, "k": 2,
         "method": "greedy"}
      ]
    }

``graphs`` maps host-local names to graph *sources* (dataset names,
``figure1``, or graph-file paths — whatever the caller's loader
accepts); ``queries`` is a list of :meth:`DCCHost.search_many` specs,
each naming its graph.  A queries entry may also be a streaming
mutation — ``{"op": "update", "graph": ..., "add": [[layer, u, v],
...], "remove": [...]}`` — applied at its position in the sequence, so
every later query answers against the mutated graph.  Optional top-level settings
(:data:`SETTINGS_KEYS`) feed admission control, the async layer's
backpressure, its cross-time result cache, the peel-kernel tier and the
per-graph shard count; command-line flags override them.  Any *other*
top-level key is rejected by name — a typo like ``"kernal"`` must fail
loudly, not silently configure nothing.
``repro serve`` reuses the same document shape with ``queries``
optional (``require_queries=False``).

:func:`parse_host_spec` only validates shape and cross-references — it
never loads graphs, so it stays importable and testable without any
dataset machinery.
"""

from collections import OrderedDict

from repro.utils.errors import ParameterError

# The recognised top-level settings knobs, in documentation order.
SETTINGS_KEYS = (
    "max_engines",
    "memory_budget_bytes",
    "max_pending",
    "result_cache_entries",
    "result_cache_ttl",
    "kernel",
    "shards",
)

# Top-level keys that are structure, not settings.
_STRUCTURAL_KEYS = ("graphs", "queries")


def _require(condition, message):
    if not condition:
        raise ParameterError(message)


def parse_host_spec(payload, require_queries=True):
    """Validate a host batch-spec document.

    Returns ``(graphs, queries, settings)``: an ordered ``name ->
    source`` mapping, the query list (each a dict that still carries its
    ``"graph"`` key), and a settings dict holding any recognised
    top-level admission-control knobs.  Raises
    :class:`~repro.utils.errors.ParameterError` on any shape problem,
    including a query naming a graph the spec never declares.

    ``require_queries=False`` admits a spec with no ``"queries"`` list —
    the ``repro serve`` shape, where the document only declares graphs
    and settings and the queries arrive later, one JSON line at a time.
    """
    _require(isinstance(payload, dict),
             "host spec must be a JSON object, got {!r}".format(
                 type(payload).__name__))
    accepted = _STRUCTURAL_KEYS + SETTINGS_KEYS
    for key in payload:
        _require(key in accepted,
                 "unknown host-spec key {!r}; accepted keys are "
                 "{}".format(key, ", ".join(accepted)))
    graphs_field = payload.get("graphs")
    _require(isinstance(graphs_field, dict) and graphs_field,
             "host spec needs a non-empty \"graphs\" object mapping "
             "names to graph sources")
    graphs = OrderedDict()
    for name, source in graphs_field.items():
        _require(isinstance(name, str) and name,
                 "graph names must be non-empty strings, got "
                 "{!r}".format(name))
        _require(isinstance(source, str) and source,
                 "graph source for {!r} must be a non-empty string, got "
                 "{!r}".format(name, source))
        graphs[name] = source
    queries_field = payload.get("queries")
    if queries_field is None and not require_queries:
        queries_field = []
    _require(isinstance(queries_field, list) and
             (queries_field or not require_queries),
             "host spec needs a non-empty \"queries\" list")
    queries = []
    for number, entry in enumerate(queries_field, 1):
        _require(isinstance(entry, dict),
                 "query {} is not a JSON object: {!r}".format(number, entry))
        entry = dict(entry)
        name = entry.get("graph")
        _require(isinstance(name, str) and name,
                 "query {} is missing a \"graph\" name".format(number))
        _require(name in graphs,
                 "query {} names graph {!r}, which the spec's \"graphs\" "
                 "object does not declare".format(number, name))
        if entry.get("op") == "update":
            # A streaming mutation riding the query list: applied in
            # sequence position, so later queries see the new graph.
            _require(entry.get("add") or entry.get("remove"),
                     "update {} needs a non-empty \"add\" and/or "
                     "\"remove\" edge list".format(number))
            queries.append(entry)
            continue
        _require(entry.get("op") is None,
                 "query {} has unknown op {!r} (only \"update\" may "
                 "appear in a query list)".format(number, entry.get("op")))
        for key in ("d", "s", "k"):
            _require(key in entry,
                     "query {} is missing required key {!r}".format(
                         number, key))
        queries.append(entry)
    settings = {}
    for key in SETTINGS_KEYS:
        if payload.get(key) is not None:
            settings[key] = payload[key]
    return graphs, queries, settings
