"""Containment of quasi-cliques in d-CC covers (Fig. 30) and the cover
difference classes of Fig. 31.

Fig. 30 reports, for every quasi-clique ``Q`` that MiMAG finds, how many of
its vertices fall inside the d-CC cover ``Cov(R_C)`` — bucketed by ``|Q|``
and normalised to a distribution.  Fig. 31 colours vertices by which cover
they belong to (both / only d-CC / only quasi-clique).
"""


def containment_distribution(quasi_cliques, dcc_cover):
    """``{|Q|: {overlap: fraction}}`` — the Fig. 30 table.

    For each quasi-clique size class, the fraction of quasi-cliques whose
    intersection with ``dcc_cover`` has each possible cardinality
    ``0..|Q|``.
    """
    dcc_cover = set(dcc_cover)
    histogram = {}
    for clique in quasi_cliques:
        clique = set(clique)
        size = len(clique)
        overlap = len(clique & dcc_cover)
        by_overlap = histogram.setdefault(size, {})
        by_overlap[overlap] = by_overlap.get(overlap, 0) + 1
    distribution = {}
    for size, by_overlap in histogram.items():
        total = sum(by_overlap.values())
        distribution[size] = {
            overlap: count / total for overlap, count in by_overlap.items()
        }
    return distribution


def fully_contained_fraction(quasi_cliques, dcc_cover):
    """Fraction of quasi-cliques entirely inside the d-CC cover.

    The headline of the paper's observation 3 on Fig. 30: "the
    quasi-cliques in R_Q are largely contained in the d-CCs in R_C".
    """
    quasi_cliques = list(quasi_cliques)
    if not quasi_cliques:
        return 0.0
    dcc_cover = set(dcc_cover)
    contained = sum(1 for clique in quasi_cliques if set(clique) <= dcc_cover)
    return contained / len(quasi_cliques)


def cover_difference_classes(dcc_cover, quasi_cover):
    """The three vertex classes of Fig. 31.

    Returns ``(both, only_dcc, only_quasi)`` — the red, green and blue
    vertex sets of the figure.
    """
    dcc_cover = set(dcc_cover)
    quasi_cover = set(quasi_cover)
    return (
        dcc_cover & quasi_cover,
        dcc_cover - quasi_cover,
        quasi_cover - dcc_cover,
    )


def class_densities(graph, dcc_cover, quasi_cover):
    """Average within-class degree (over layers) for the Fig. 31 classes.

    The paper's qualitative claims — blue vertices are sparsely connected,
    green vertices densely connected with themselves and with red ones —
    become numbers here: for each class, the mean over vertices and layers
    of the degree restricted to (class ∪ both).
    """
    both, only_dcc, only_quasi = cover_difference_classes(dcc_cover, quasi_cover)
    summary = {}
    for name, members in (
        ("both", both), ("only_dcc", only_dcc), ("only_quasi", only_quasi),
    ):
        scope = members | both
        total = 0
        samples = 0
        for vertex in members:
            for layer in graph.layers():
                total += len(graph.neighbors(layer, vertex) & scope)
                samples += 1
        summary[name] = total / samples if samples else 0.0
    return summary
