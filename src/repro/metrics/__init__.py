"""Evaluation metrics for covers, containment and complex recovery."""

from repro.metrics.complexes import (
    complex_recovery_rate,
    complexes_found,
    recovery_by_cover,
)
from repro.metrics.containment import (
    class_densities,
    containment_distribution,
    cover_difference_classes,
    fully_contained_fraction,
)
from repro.metrics.cover import (
    cover,
    cover_size,
    exclusive_counts,
    f1_score,
    jaccard,
    overlap_matrix,
    precision,
    recall,
)

__all__ = [
    "cover",
    "cover_size",
    "precision",
    "recall",
    "f1_score",
    "jaccard",
    "overlap_matrix",
    "exclusive_counts",
    "containment_distribution",
    "fully_contained_fraction",
    "cover_difference_classes",
    "class_densities",
    "complexes_found",
    "complex_recovery_rate",
    "recovery_by_cover",
]
