"""Cover-based evaluation metrics (Section VI, Fig. 29).

The paper scores every algorithm by the size of the cover of its result
and compares two result collections by precision / recall / F1 over their
covers.  All functions here take plain collections of vertex sets, so they
work for DCCS results, MiMAG results and ground-truth communities alike.
"""


def cover(sets):
    """The union of a collection of vertex sets."""
    covered = set()
    for members in sets:
        covered |= set(members)
    return covered


def cover_size(sets):
    """``|Cov(R)|`` — the paper's accuracy measure."""
    return len(cover(sets))


def precision(reference_sets, candidate_sets):
    """``|Cov(R_Q) ∩ Cov(R_C)| / |Cov(R_C)|`` (Fig. 29, metric 3).

    ``reference_sets`` plays the role of MiMAG's output ``R_Q`` and
    ``candidate_sets`` that of BU-DCCS's ``R_C``.  Returns 0.0 for an
    empty candidate cover.
    """
    reference = cover(reference_sets)
    candidate = cover(candidate_sets)
    if not candidate:
        return 0.0
    return len(reference & candidate) / len(candidate)


def recall(reference_sets, candidate_sets):
    """``|Cov(R_Q) ∩ Cov(R_C)| / |Cov(R_Q)|`` (Fig. 29, metric 4)."""
    reference = cover(reference_sets)
    candidate = cover(candidate_sets)
    if not reference:
        return 0.0
    return len(reference & candidate) / len(reference)


def f1_score(reference_sets, candidate_sets):
    """Harmonic mean of precision and recall (Fig. 29, metric 5)."""
    p = precision(reference_sets, candidate_sets)
    r = recall(reference_sets, candidate_sets)
    if p + r == 0.0:
        return 0.0
    return 2.0 * p * r / (p + r)


def jaccard(first_sets, second_sets):
    """Jaccard similarity of two covers — an extra symmetric summary."""
    first = cover(first_sets)
    second = cover(second_sets)
    union = first | second
    if not union:
        return 1.0
    return len(first & second) / len(union)


def overlap_matrix(sets):
    """Pairwise ``|A ∩ B| / |A ∪ B|`` matrix over one collection.

    Quantifies the "significant overlaps" observation that motivates
    diversification (Section I, and the k-sweep discussion of Fig. 24).
    """
    sets = [set(members) for members in sets]
    matrix = []
    for a in sets:
        row = []
        for b in sets:
            union = a | b
            row.append(len(a & b) / len(union) if union else 1.0)
        matrix.append(row)
    return matrix


def exclusive_counts(sets):
    """For each set, how many vertices only it covers.

    This is ``|Δ(R, C')|`` of Section IV-A computed offline; tests compare
    it against the incremental bookkeeping of
    :class:`~repro.core.coverage.DiversifiedTopK`.
    """
    sets = [set(members) for members in sets]
    counts = []
    for index, members in enumerate(sets):
        others = set()
        for other_index, other in enumerate(sets):
            if other_index != index:
                others |= other
        counts.append(len(members - others))
    return counts
