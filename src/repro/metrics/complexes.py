"""Protein-complex recovery (Fig. 32).

The paper checks, against the MIPS complex catalogue, what fraction of
known protein complexes is *entirely contained* in some reported dense
subgraph.  The MIPS database is not available offline, so the PPI
stand-in dataset plants synthetic complexes at generation time and this
module measures the same recovery statistic against them (see the
substitution notes in DESIGN.md).
"""


def complexes_found(complexes, dense_subgraphs):
    """The complexes entirely contained in at least one dense subgraph."""
    dense_subgraphs = [set(members) for members in dense_subgraphs]
    found = []
    for complex_members in complexes:
        complex_set = set(complex_members)
        if any(complex_set <= subgraph for subgraph in dense_subgraphs):
            found.append(frozenset(complex_set))
    return found


def complex_recovery_rate(complexes, dense_subgraphs):
    """Fraction of complexes found (the Fig. 32 numbers)."""
    complexes = list(complexes)
    if not complexes:
        return 0.0
    return len(complexes_found(complexes, dense_subgraphs)) / len(complexes)


def recovery_by_cover(complexes, dense_subgraphs):
    """A softer variant: fraction contained in the overall cover.

    Useful as a sanity upper bound — a complex inside the cover but split
    across subgraphs counts here but not in
    :func:`complex_recovery_rate`.
    """
    complexes = list(complexes)
    if not complexes:
        return 0.0
    covered = set()
    for members in dense_subgraphs:
        covered |= set(members)
    inside = sum(1 for members in complexes if set(members) <= covered)
    return inside / len(complexes)
