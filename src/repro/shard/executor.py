"""Per-shard execution: the primitive server behind one :class:`GraphShard`.

A :class:`ShardExecutor` answers the handful of row-level questions the
scatter/gather pipeline of :mod:`repro.shard.graph` asks of a shard:
serve one CSR row, bulk-fill induced degrees for the owned block, and
walk a peel frontier emitting degree decrements for the coordinator to
apply (the *scatter* half of a peel round).  Executors never hold peel
state — the alive/queued flags and degree tables live with the
coordinator — so an executor is a pure function of its shard, which is
what would make it relocatable behind the socket transport later.

Every executor keeps three monotone counters for the observability
surface (``shards`` sections of ``repro info`` and the serving stats):

* ``rows_served`` — single-row lookups answered;
* ``degree_fills`` — bulk induced-degree passes over the owned block;
* ``scatter_ops`` — decrement messages emitted across peel rounds.
"""


class ShardExecutor:
    """Serves one shard's rows and peel primitives in-process."""

    __slots__ = ("shard", "rows_served", "degree_fills", "scatter_ops")

    def __init__(self, shard):
        self.shard = shard
        self.rows_served = 0
        self.degree_fills = 0
        self.scatter_ops = 0

    @property
    def index(self):
        return self.shard.index

    def serves(self, layer):
        """Whether this executor owns ``layer``'s rows (for its range)."""
        return self.shard.serves(layer)

    def owns_vertex(self, vertex):
        """Whether ``vertex`` falls in the owned range ``[lo, hi)``."""
        return self.shard.lo <= vertex < self.shard.hi

    def row(self, layer, vertex):
        """The full (halo-complete) neighbour row of one owned vertex.

        Global ids in, global ids out; the caller routed ``vertex`` here
        because this shard owns ``(layer, vertex)``.
        """
        ptr, nbrs = self.shard.row_lists(layer)
        i = vertex - self.shard.lo
        self.rows_served += 1
        return nbrs[ptr[i]:ptr[i + 1]]

    def degree(self, layer, vertex):
        """O(1) degree of one owned vertex on one owned layer."""
        ptr, _ = self.shard.row_lists(layer)
        i = vertex - self.shard.lo
        return ptr[i + 1] - ptr[i]

    def fill_degrees(self, layer, out, alive, members, full):
        """Write owned vertices' induced degrees into the global table.

        ``out`` is the coordinator's length-``n`` degree list for
        ``layer``; only entries this shard owns are written.  With
        ``full`` (no restriction, everything alive) degrees are plain
        row lengths; otherwise each owned member's row is counted
        against the shared ``alive`` flags — exact at the boundary
        because rows are halo-complete.
        """
        ptr, nbrs = self.shard.row_lists(layer)
        lo, hi = self.shard.lo, self.shard.hi
        self.degree_fills += 1
        if full:
            for v in range(lo, hi):
                i = v - lo
                out[v] = ptr[i + 1] - ptr[i]
            return
        flag = alive.__getitem__
        for v in members:
            if lo <= v < hi:
                i = v - lo
                out[v] = sum(map(flag, nbrs[ptr[i]:ptr[i + 1]]))

    def scatter(self, layer, frontier, alive):
        """Walk the owned slice of one peel frontier; decrement targets.

        For every frontier vertex this shard owns, emits each still-alive
        neighbour once per connecting edge — exactly the decrements the
        single-engine kernel applies when that vertex is removed.  The
        coordinator applies them to its degree table (the *gather*).
        """
        ptr, nbrs = self.shard.row_lists(layer)
        lo, hi = self.shard.lo, self.shard.hi
        hits = []
        extend = hits.extend
        for v in frontier:
            if lo <= v < hi:
                i = v - lo
                extend(u for u in nbrs[ptr[i]:ptr[i + 1]] if alive[u])
        self.scatter_ops += len(hits)
        return hits

    def counters(self):
        """The observability counters as a dict."""
        return {
            "rows_served": self.rows_served,
            "degree_fills": self.degree_fills,
            "scatter_ops": self.scatter_ops,
        }

    def __repr__(self):
        return "ShardExecutor({!r})".format(self.shard)
