"""Cutting a frozen CSR graph into independently shippable shards.

The unit of distribution is a :class:`GraphShard`: a contiguous block of
the frozen representation defined by a vertex range ``[lo, hi)`` and a
layer tuple.  For every owned ``(layer, vertex)`` pair the shard stores
the *complete* CSR row, rebased so row lookups index a local ``indptr``
while the ``indices`` keep their **global** vertex ids.  The out-of-range
endpoints sitting in those rows are the shard's *halo*: the boundary
vertices it can name but does not own.  Because rows are never truncated
at the cut, a shard computes the exact induced degree of any owned vertex
against any global alive-set — degree exactness at shard boundaries is
what makes the scatter/gather peel of :mod:`repro.shard.graph` bitwise
equal to the single-engine kernels.

Two partitioning rules, selected by ``strategy``:

* ``"vertex-range"`` (default) — vertices are cut into ``shards``
  near-equal contiguous id ranges (``bounds[i] = n * i // shards``, the
  same arithmetic every process derives independently); every shard
  carries every layer for its range.  This is the rule that shrinks the
  largest single block, so it is what the host's per-shard admission
  budget is about.
* ``"layer-subset"`` — layers are cut into ``shards`` contiguous groups
  and every shard carries the full vertex range for its layers.  Rows
  are whole layers, so there is no halo at all; requires
  ``shards <= num_layers``.

Partitioning is deterministic: the same ``(graph, shards, strategy)``
always yields byte-identical shards, on the orchestrator and in every
worker process that rebuilds the sharded graph from its payload.
"""

from array import array

from repro.graph.kernels import buffer_nbytes
from repro.utils.errors import ParameterError

STRATEGIES = ("vertex-range", "layer-subset")

# Upper bound on the shard count: far above any useful fan-out on one
# machine, low enough that a typo'd shards=10**9 fails fast instead of
# allocating a billion empty blocks.
MAX_SHARDS = 64


def check_shards(shards):
    """Validate a ``shards=`` argument, returning it unchanged."""
    if isinstance(shards, bool) or not isinstance(shards, int) \
            or shards < 1:
        raise ParameterError(
            "shards must be a positive integer, got {!r}".format(shards)
        )
    if shards > MAX_SHARDS:
        raise ParameterError(
            "shards must be at most {}, got {}".format(MAX_SHARDS, shards)
        )
    return shards


def check_strategy(strategy):
    """Validate a partitioning ``strategy=``, returning it unchanged."""
    if strategy not in STRATEGIES:
        raise ParameterError(
            "strategy must be one of {}, got {!r}".format(
                STRATEGIES, strategy
            )
        )
    return strategy


class GraphShard:
    """One contiguous, self-contained block of a frozen CSR graph.

    Attributes
    ----------
    index:
        Position in the canonical shard order (= merge order).
    lo / hi:
        The owned vertex-id range ``[lo, hi)``.
    layers:
        The owned layer ids, ascending.

    Per owned layer the shard holds ``(indptr, indices)`` where
    ``indptr`` has ``hi - lo + 1`` entries rebased to start at 0 and
    ``indices`` holds global neighbour ids (halo endpoints included).
    """

    __slots__ = ("index", "lo", "hi", "layers", "_rows", "_row_lists",
                 "_halo")

    def __init__(self, index, lo, hi, layers, rows):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.layers = tuple(layers)
        self._rows = rows
        self._row_lists = {}
        self._halo = None

    @property
    def num_owned(self):
        """Vertices this shard owns (not counting the halo)."""
        return self.hi - self.lo

    def serves(self, layer):
        return layer in self._rows

    def row_arrays(self, layer):
        """The raw ``(indptr, indices)`` pair of one owned layer."""
        return self._rows[layer]

    def row_lists(self, layer):
        """Plain-list mirrors of one owned layer's CSR pair (cached).

        List indexing beats buffer indexing in the pure-Python scatter
        loops, same trade the frozen backend makes with its mirrors.
        """
        cached = self._row_lists.get(layer)
        if cached is None:
            ptr, nbrs = self._rows[layer]
            cached = (list(ptr), list(nbrs))
            self._row_lists[layer] = cached
        return cached

    def halo_vertices(self):
        """Distinct neighbour ids outside ``[lo, hi)`` (cached count).

        The boundary cut surface: how many foreign vertices this
        shard's rows reference.  A whole-layer shard has no halo.
        """
        if self._halo is None:
            lo, hi = self.lo, self.hi
            halo = set()
            for layer in self.layers:
                for u in self._rows[layer][1]:
                    if not lo <= u < hi:
                        halo.add(u)
            self._halo = len(halo)
        return self._halo

    def memory_bytes(self):
        """Resident bytes: CSR buffers plus any built list mirrors."""
        import sys

        total = 0
        for ptr, nbrs in self._rows.values():
            total += buffer_nbytes(ptr) + buffer_nbytes(nbrs)
        for ptr, nbrs in self._row_lists.values():
            total += sys.getsizeof(ptr) + sys.getsizeof(nbrs)
        return total

    def payload(self):
        """A picklable tuple; :meth:`from_payload` inverts it."""
        return (
            self.index, self.lo, self.hi, self.layers,
            [(layer, ptr, nbrs)
             for layer, (ptr, nbrs) in sorted(self._rows.items())],
        )

    @classmethod
    def from_payload(cls, payload):
        index, lo, hi, layers, rows = payload
        return cls(index, lo, hi, layers,
                   {layer: (ptr, nbrs) for layer, ptr, nbrs in rows})

    def __repr__(self):
        return "GraphShard(#{}, vertices [{}, {}), layers {})".format(
            self.index, self.lo, self.hi, list(self.layers)
        )


def _cut_points(total, parts):
    """``parts + 1`` monotone bounds splitting ``range(total)`` evenly."""
    return [total * i // parts for i in range(parts + 1)]


class Partitioner:
    """Deterministically cuts one frozen graph into :class:`GraphShard`\\ s.

    Parameters
    ----------
    shards:
        The number of blocks to produce (``>= 1``).
    strategy:
        ``"vertex-range"`` or ``"layer-subset"`` — see the module
        docstring for the two rules.
    """

    def __init__(self, shards, strategy="vertex-range"):
        self.shards = check_shards(shards)
        self.strategy = check_strategy(strategy)

    def partition(self, graph):
        """Cut ``graph`` (must be frozen) into the configured shards."""
        if not getattr(graph, "is_frozen", False):
            raise ParameterError(
                "only a frozen (CSR) graph can be partitioned; freeze "
                "the source first"
            )
        if self.strategy == "layer-subset":
            return self._by_layer(graph)
        return self._by_vertex_range(graph)

    def _by_vertex_range(self, graph):
        n = graph.num_vertices
        layers = tuple(graph.layers())
        bounds = _cut_points(n, self.shards)
        return [
            GraphShard(
                i, bounds[i], bounds[i + 1], layers,
                {
                    layer: _slice_rows(graph, layer, bounds[i],
                                       bounds[i + 1])
                    for layer in layers
                },
            )
            for i in range(self.shards)
        ]

    def _by_layer(self, graph):
        if self.shards > graph.num_layers:
            raise ParameterError(
                "layer-subset partitioning needs shards <= num_layers "
                "({}), got {}".format(graph.num_layers, self.shards)
            )
        n = graph.num_vertices
        bounds = _cut_points(graph.num_layers, self.shards)
        out = []
        for i in range(self.shards):
            layers = tuple(range(bounds[i], bounds[i + 1]))
            out.append(GraphShard(
                i, 0, n, layers,
                {layer: _slice_rows(graph, layer, 0, n)
                 for layer in layers},
            ))
        return out


def _slice_rows(graph, layer, lo, hi):
    """One layer's CSR rows for ``[lo, hi)``, rebased to a local indptr.

    ``indices`` entries stay global — the halo is whatever falls outside
    the range.  Storage is ``array('i')`` regardless of whether the
    source buffers were array- or numpy-backed, so shard payloads pickle
    the same way either way.
    """
    ptr = graph._indptr[layer]
    nbrs = graph._indices[layer]
    base = int(ptr[lo])
    local_ptr = array("i", (int(ptr[v]) - base for v in range(lo, hi + 1)))
    local_nbrs = array("i", (int(u) for u in nbrs[base:int(ptr[hi])]))
    return local_ptr, local_nbrs
