"""Sharded graph execution: partition, execute, merge.

One graph cut into N independently shippable blocks
(:class:`GraphShard`, by :class:`Partitioner`), served behind the
backend protocol by :class:`ShardedGraph`, inside a standard engine
session by :class:`ShardedEngine`.  See ``docs/architecture.md`` for
the pipeline and the determinism contract.
"""

from repro.shard.engine import ShardedEngine
from repro.shard.executor import ShardExecutor
from repro.shard.graph import ShardedGraph
from repro.shard.partition import (
    MAX_SHARDS,
    STRATEGIES,
    GraphShard,
    Partitioner,
    check_shards,
    check_strategy,
)

__all__ = [
    "MAX_SHARDS",
    "STRATEGIES",
    "GraphShard",
    "Partitioner",
    "ShardExecutor",
    "ShardedEngine",
    "ShardedGraph",
    "check_shards",
    "check_strategy",
]
