"""A :class:`DCCEngine` whose graph is partitioned across N shards.

:class:`ShardedEngine` is the execute stage's session owner in the
plan → execute → merge pipeline: it binds exactly like its base class —
resolve the backend, spin up the persistent worker pool, artifact cache
and scratch arena — except the resolved frozen graph is immediately cut
by a :class:`~repro.shard.partition.Partitioner` and the session runs
against the resulting :class:`~repro.shard.graph.ShardedGraph`.  Before
each search the engine builds a :class:`~repro.parallel.plan.ShardPlan`
for the query spec and installs it on the graph, so every peel routes
through an explicit plan (the plan stage); the peels scatter/gather
across shard executors (execute); and shard reports replay through
``DiversifiedTopK`` in canonical order exactly as the unsharded planner
does (merge).

Everything else is inherited unchanged: the staleness rebind-and-retry
contract, label translation, ``search_many`` pipelining, async
waitables, and the real :class:`~repro.parallel.executor.WorkerPool` —
pooled workers rebuild the *same* sharded graph from its payload (see
``parallel/serialize.py``), so worker-crash semantics are identical to
an unsharded engine's.

The one accounting difference is :meth:`budget_bytes`: admission control
charges a sharded session for its **largest single shard**, because the
point of sharding is that no one engine ever has to hold the whole
graph.  :meth:`memory_bytes` still reports the honest resident total.
"""

from repro.engine.cache import ArtifactCache
from repro.engine.session import DCCEngine
from repro.graph.backend import resolve_search_graph
from repro.graph.frozen import ScratchArena
from repro.parallel.executor import WorkerPool
from repro.parallel.plan import plan_shard_tasks
from repro.shard.graph import ShardedGraph
from repro.shard.partition import check_shards, check_strategy
from repro.utils.errors import ParameterError
from repro.utils.timer import Timer


class ShardedEngine(DCCEngine):
    """A d-CC search session over one graph split into N shards.

    Accepts the full :class:`DCCEngine` surface plus:

    Parameters
    ----------
    shards:
        How many blocks to cut the graph into (``1`` is legal and
        byte-identical to an unsharded engine's results).
    strategy:
        ``"vertex-range"`` (default) or ``"layer-subset"`` — see
        :mod:`repro.shard.partition`.

    ``backend="dict"`` is rejected: shards are slices of the frozen CSR
    representation, so a sharded session always resolves through the
    frozen backend (``"auto"`` and ``"frozen"`` both accept).  Results —
    sets, labels, cover and stats — are bitwise identical to an
    unsharded :class:`DCCEngine` over the same graph for every shard
    count and strategy.
    """

    def __init__(self, graph, shards=2, strategy="vertex-range",
                 backend="auto", jobs=0, cache_artifacts=True,
                 cache_max_entries=None, cache_ttl=None, kernel="auto"):
        if backend == "dict":
            raise ParameterError(
                "sharded execution requires the frozen backend; "
                "backend='dict' cannot be partitioned (use 'auto' or "
                "'frozen')"
            )
        # Set before super().__init__ — the base constructor calls
        # _bind(), which needs them.
        self._shards = check_shards(shards)
        self._strategy = check_strategy(strategy)
        super().__init__(
            graph, backend=backend, jobs=jobs,
            cache_artifacts=cache_artifacts,
            cache_max_entries=cache_max_entries, cache_ttl=cache_ttl,
            kernel=kernel,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    # Every rebind re-partitions the graph, and shard executors hold
    # CSR slices a layer-wise delta cannot be mapped onto cheaply, so
    # the sharded session always rebinds fully.  It still profits from
    # streaming mutation indirectly: resolve_search_graph below runs
    # the source's freeze(), which patches its cached CSR per the
    # recorded delta instead of rebuilding all layers.
    _supports_delta_rebind = False

    def _bind(self):
        """Resolve to frozen, partition, and serve the sharded view.

        Same shape as the base bind; the frozen graph exists only long
        enough to be sliced (the coordinator keeps O(n) metadata, the
        CSR rows live in the shards), and the partitioning cost joins
        the freeze in the overhead charged to the next search.
        """
        with Timer() as overhead:
            frozen, translate = resolve_search_graph(self._source, "frozen")
            search_graph = ShardedGraph.from_frozen(
                frozen, self._shards, self._strategy
            )
        self._graph = search_graph
        self._translate = translate
        self._pending_overhead = overhead.elapsed
        self._version = self._source.mutation_version
        # The distributed peel is pure Python; the numpy kernel tier
        # applies to whole-graph CSR arrays, which no longer exist here.
        self._active_kernel = None
        self._pool = WorkerPool(self._graph, self._jobs)
        self._cache = ArtifactCache(
            self._graph, max_entries=self._cache_max_entries,
            ttl=self._cache_ttl,
        ) if self._cache_enabled else None
        self._arena = ScratchArena()

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------

    @property
    def shards(self):
        return self._shards

    @property
    def strategy(self):
        return self._strategy

    def _start(self, d, s, k, method, options):
        """Install the query's :class:`ShardPlan`, then plan + submit.

        The plan stays installed until the next query replaces it — a
        retry after a collect-time staleness re-check re-enters here and
        installs a fresh plan against the rebound graph.
        """
        self._graph.install_plan(
            plan_shard_tasks(self._graph, spec=(d, s, k, method))
        )
        return super()._start(d, s, k, method, options)

    def budget_bytes(self):
        """The admission charge: the largest single shard's bytes."""
        return self._graph.budget_bytes()

    def info(self):
        status = super().info()
        status["backend"] = "sharded-csr"
        status["shards"] = self._graph.shard_stats()
        return status
