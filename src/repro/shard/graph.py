"""The sharded graph: one backend-protocol view over N graph shards.

:class:`ShardedGraph` is the third implementation of the graph backend
protocol (see :mod:`repro.graph.backend`): the same frozen CSR data,
cut by a :class:`~repro.shard.partition.Partitioner` into independently
shippable :class:`~repro.shard.partition.GraphShard` blocks, each served
by its own :class:`~repro.shard.executor.ShardExecutor`.  The search
stack never notices — every query primitive it speaks either routes to
the one executor owning the row, or fans out and merges:

* **plan** — each peel derives its participant set from the installed
  :class:`~repro.parallel.plan.ShardPlan` (which shards own which
  layers);
* **execute** — participants fill induced degrees for their block and
  walk peel frontiers, emitting degree decrements (*scatter*);
* **merge** — the coordinator applies decrements to its global degree
  tables, grows the next frontier, and repeats to quiescence (*gather*).

Determinism contract
--------------------
The d-core / d-CC peel is a monotone fixed point: removals only ever
cascade more removals, so *any* removal order — per-vertex FIFO on one
engine, synchronous whole-frontier rounds across N shards — converges to
the same unique maximal core.  ``peel_operations`` counts one per
removed vertex in both schemes (a vertex joins exactly one frontier),
and every other search counter is set-level, so a sharded search returns
sets, labels, cover **and stats** bitwise identical to the unsharded
run, for every shard count and either partitioning strategy
(property-tested in ``tests/test_shard.py``).  Degrees at shard
boundaries are exact because shard rows are halo-complete (see
:mod:`repro.shard.partition`).

Like the frozen backend, a sharded graph is immutable
(``mutation_version == 0``) and speaks dense integer ids, translating
back through :attr:`labels` at delivery time.  ``is_frozen`` is False —
the CSR fast paths of :mod:`repro.core` assume whole-graph arrays — and
the ``is_sharded`` marker routes :func:`repro.core.dcc.coherent_core`
and :func:`repro.core.dcore.layer_core` here instead.
"""

import sys
from bisect import bisect_right

from repro.shard.executor import ShardExecutor
from repro.shard.partition import Partitioner
from repro.utils.errors import LayerIndexError, ParameterError, VertexError


class ShardedGraph:
    """N :class:`GraphShard` blocks behind the one-graph protocol.

    Build one with :meth:`from_frozen` (what :class:`ShardedEngine`
    does at bind time) or :meth:`from_payload` (what a pooled worker
    does with the serialized form).
    """

    __slots__ = (
        "name", "labels", "strategy",
        "_n", "_num_layers", "_layer_masks", "_edge_counts",
        "shards", "executors",
        "_starts", "_layer_owner", "_vertex_set", "_adj_dicts",
        "_union_edges", "_plan", "_default_plan",
        "merges", "peel_rounds", "plans_installed",
    )

    def __init__(self, name, labels, num_layers, layer_masks, edge_counts,
                 shards, strategy):
        self.name = name
        self.labels = labels
        self.strategy = strategy
        self._n = len(labels)
        self._num_layers = num_layers
        self._layer_masks = layer_masks
        self._edge_counts = edge_counts
        self.shards = list(shards)
        self.executors = [ShardExecutor(shard) for shard in self.shards]
        # Owner routing: vertex-range shards are located by bisect over
        # their start ids; layer-subset shards by a layer -> shard map.
        self._starts = [shard.lo for shard in self.shards]
        self._layer_owner = {}
        for executor in self.executors:
            for layer in executor.shard.layers:
                self._layer_owner.setdefault(layer, []).append(executor)
        self._vertex_set = None
        self._adj_dicts = [None] * num_layers
        self._union_edges = None
        # The execution pipeline always runs against a ShardPlan; the
        # default covers every shard/layer, and the engine swaps in a
        # per-query plan around each search (see ShardedEngine._start).
        from repro.parallel.plan import plan_shard_tasks

        self._default_plan = plan_shard_tasks(self)
        self._plan = self._default_plan
        self.merges = 0
        self.peel_rounds = 0
        self.plans_installed = 0

    # ------------------------------------------------------------------
    # construction / serialization
    # ------------------------------------------------------------------

    @classmethod
    def from_frozen(cls, graph, shards, strategy="vertex-range"):
        """Partition a frozen graph into a sharded view of the same data.

        The coordinator keeps only O(n) metadata (labels, layer
        bitmasks, edge counts); the CSR rows live exclusively in the
        shards.
        """
        blocks = Partitioner(shards, strategy=strategy).partition(graph)
        labels = graph.labels
        if type(labels) is not range:
            labels = list(labels)
        return cls(
            graph.name, labels, graph.num_layers,
            list(graph._layer_masks), list(graph._edge_counts),
            blocks, strategy,
        )

    def payload(self):
        """The picklable cross-process form (see ``parallel.serialize``)."""
        return (
            "sharded", self.name, self.labels, self._num_layers,
            list(self._layer_masks), list(self._edge_counts),
            self.strategy,
            [shard.payload() for shard in self.shards],
        )

    @classmethod
    def from_payload(cls, payload):
        from repro.shard.partition import GraphShard

        (_, name, labels, num_layers, layer_masks, edge_counts, strategy,
         shard_payloads) = payload
        return cls(
            name, labels, num_layers, layer_masks, edge_counts,
            [GraphShard.from_payload(p) for p in shard_payloads],
            strategy,
        )

    # ------------------------------------------------------------------
    # identity / markers
    # ------------------------------------------------------------------

    @property
    def is_frozen(self):
        """False: no whole-graph CSR arrays exist for the frozen fast
        paths to index (the rows are distributed)."""
        return False

    @property
    def is_sharded(self):
        """The dispatch marker :mod:`repro.core` routes peels on."""
        return True

    @property
    def mutation_version(self):
        """Always ``0`` — shards are cut from an immutable frozen graph."""
        return 0

    @property
    def num_shards(self):
        return len(self.shards)

    @property
    def num_layers(self):
        return self._num_layers

    @property
    def num_vertices(self):
        return self._n

    # ------------------------------------------------------------------
    # label translation (mirrors the frozen backend)
    # ------------------------------------------------------------------

    def label_of(self, vertex):
        return self.labels[self._require_vertex(vertex)]

    def labels_for(self, vertices):
        labels = self.labels
        return frozenset(labels[v] for v in vertices)

    # ------------------------------------------------------------------
    # backend protocol: basic accessors
    # ------------------------------------------------------------------

    def vertices(self):
        """A new set of all vertex ids, ``{0, ..., n-1}``."""
        return set(range(self._n))

    def vertex_set(self):
        """A cached frozenset of all vertex ids (do not mutate)."""
        if self._vertex_set is None:
            self._vertex_set = frozenset(range(self._n))
        return self._vertex_set

    def _vertex_id(self, vertex):
        """Dense id coercion, identical to the frozen backend's rule."""
        if isinstance(vertex, int):
            return vertex if 0 <= vertex < self._n else None
        try:
            as_int = int(vertex)
        except (TypeError, ValueError, OverflowError):
            return None
        if as_int == vertex and 0 <= as_int < self._n:
            return as_int
        return None

    def has_vertex(self, vertex):
        return self._vertex_id(vertex) is not None

    def __contains__(self, vertex):
        return self.has_vertex(vertex)

    def __len__(self):
        return self._n

    def __iter__(self):
        return iter(range(self._n))

    def layers(self):
        return range(self._num_layers)

    def _check_layer(self, layer):
        if not 0 <= layer < self._num_layers:
            raise LayerIndexError(layer, self._num_layers)

    def _require_vertex(self, vertex):
        vertex_id = self._vertex_id(vertex)
        if vertex_id is None:
            raise VertexError(vertex)
        return vertex_id

    # ------------------------------------------------------------------
    # owner routing
    # ------------------------------------------------------------------

    def _owner(self, layer, vertex):
        """The executor owning ``(layer, vertex)``'s row."""
        owners = self._layer_owner[layer]
        if len(owners) == 1:
            return owners[0]
        return owners[bisect_right(self._starts, vertex) - 1]

    def _participants(self, layer):
        """Executors the active plan routes ``layer``'s peel work to."""
        return self._plan.executors_for(self, layer)

    # ------------------------------------------------------------------
    # backend protocol: queries
    # ------------------------------------------------------------------

    def degree(self, layer, vertex):
        self._check_layer(layer)
        vertex = self._require_vertex(vertex)
        return self._owner(layer, vertex).degree(layer, vertex)

    def neighbors(self, layer, vertex):
        """The neighbour ids of ``vertex`` on ``layer`` as a frozenset."""
        self._check_layer(layer)
        vertex = self._require_vertex(vertex)
        return frozenset(self._owner(layer, vertex).row(layer, vertex))

    def neighbor_row(self, layer):
        """A per-layer row accessor routing each lookup to its owner.

        When one shard owns the whole layer (the layer-subset strategy)
        the owner's accessor is returned directly; otherwise a closure
        bisects the vertex-range bounds per call.
        """
        self._check_layer(layer)
        owners = self._layer_owner[layer]
        if len(owners) == 1:
            executor = owners[0]

            def row(vertex):
                return executor.row(layer, vertex)

            return row
        starts = self._starts

        def row(vertex):
            return owners[bisect_right(starts, vertex) - 1].row(
                layer, vertex
            )

        return row

    def adjacency(self, layer):
        """A read-only ``{id: frozenset}`` dict of one layer (cached).

        The same compatibility path the frozen backend offers for
        dict-shaped consumers; gathered once from every shard serving
        the layer.
        """
        self._check_layer(layer)
        cached = self._adj_dicts[layer]
        if cached is None:
            cached = {}
            for executor in self._layer_owner[layer]:
                shard = executor.shard
                ptr, nbrs = shard.row_lists(layer)
                for v in range(shard.lo, shard.hi):
                    i = v - shard.lo
                    cached[v] = frozenset(nbrs[ptr[i]:ptr[i + 1]])
            self._adj_dicts[layer] = cached
        return cached

    def induced_degrees(self, layer, within=None):
        """``{v: deg within the subset}`` gathered across participants."""
        self._check_layer(layer)
        n = self._n
        out = [0] * n
        if within is None:
            for executor in self._participants(layer):
                executor.fill_degrees(layer, out, None, range(n), True)
            self.merges += 1
            return {v: out[v] for v in range(n)}
        alive, members = self._alive_members(within)
        for executor in self._participants(layer):
            executor.fill_degrees(layer, out, alive, members, False)
        self.merges += 1
        return {v: out[v] for v in members}

    def layer_mask(self, vertex):
        return self._layer_masks[self._require_vertex(vertex)]

    def layers_of(self, vertex):
        mask = self.layer_mask(vertex)
        return frozenset(
            layer for layer in range(self._num_layers) if mask >> layer & 1
        )

    def num_edges(self, layer):
        self._check_layer(layer)
        return self._edge_counts[layer]

    def total_edges(self):
        return sum(self._edge_counts)

    def edges(self, layer):
        """Yield each edge once as ``(u, v)`` with ``u < v``.

        Each edge is reported by the shard owning its smaller endpoint,
        so the union over shards is exactly the layer's edge set.
        """
        self._check_layer(layer)
        for executor in self._layer_owner[layer]:
            shard = executor.shard
            ptr, nbrs = shard.row_lists(layer)
            for v in range(shard.lo, shard.hi):
                i = v - shard.lo
                for u in nbrs[ptr[i]:ptr[i + 1]]:
                    if v < u:
                        yield (v, u)

    def union_edge_count(self):
        if self._union_edges is None:
            n = self._n
            seen = set()
            for layer in self.layers():
                for u, v in self.edges(layer):
                    seen.add(u * n + v)
            self._union_edges = len(seen)
        return self._union_edges

    def summary(self):
        return {
            "name": self.name,
            "vertices": self._n,
            "total_edges": self.total_edges(),
            "union_edges": self.union_edge_count(),
            "layers": self._num_layers,
        }

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------

    def memory_bytes(self):
        """Honest total: every shard plus the coordinator's metadata."""
        total = sum(shard.memory_bytes() for shard in self.shards)
        total += sys.getsizeof(self.labels)
        if type(self.labels) is not range:
            total += sum(sys.getsizeof(label) for label in self.labels)
        total += sys.getsizeof(self._layer_masks)
        for adj in self._adj_dicts:
            if adj is not None:
                total += sys.getsizeof(adj)
                total += sum(sys.getsizeof(s) for s in adj.values())
        return total

    def budget_bytes(self):
        """The admission-control charge: the largest single shard.

        Sharding exists so no one engine must hold the whole graph; the
        host therefore budgets the biggest block any one executor keeps
        resident, not the sum (which :meth:`memory_bytes` still reports
        honestly).
        """
        if not self.shards:
            return 0
        return max(shard.memory_bytes() for shard in self.shards)

    # ------------------------------------------------------------------
    # plan installation (the engine's per-query hook)
    # ------------------------------------------------------------------

    def install_plan(self, plan):
        """Make ``plan`` the routing source for subsequent peels."""
        self._plan = plan if plan is not None else self._default_plan
        if plan is not None:
            self.plans_installed += 1

    @property
    def active_plan(self):
        return self._plan

    # ------------------------------------------------------------------
    # the scatter/gather peel (execute + merge stages)
    # ------------------------------------------------------------------

    def _alive_members(self, within):
        """``(alive flags, member sequence)`` — the frozen kernel's rule.

        Mirrors ``repro.graph.frozen._alive_members``: a fast in-range
        pass with a coercing fallback for subsets containing non-integer
        objects, dropping anything that aliases no vertex.
        """
        n = self._n
        if within is None:
            return bytearray(b"\x01") * n, range(n)
        if not isinstance(within, (set, frozenset, list, tuple, range,
                                   dict)):
            within = list(within)
        alive = bytearray(n)
        members = []
        append = members.append
        try:
            for v in within:
                if 0 <= v < n and not alive[v]:
                    alive[v] = 1
                    append(v)
        except TypeError:
            alive = bytearray(n)
            members = []
            for v in within:
                v = self._vertex_id(v)
                if v is not None and not alive[v]:
                    alive[v] = 1
                    members.append(v)
        return alive, members

    def _peel(self, layer_tuple, d, within, stats):
        """Synchronous-round distributed peel to the unique fixed point.

        Returns ``(alive, members)``; the caller materialises the
        surviving set.  Round structure: mark the whole frontier dead,
        have every participant scatter the decrements its rows imply,
        gather them into the global degree tables, and queue vertices
        falling below ``d`` for the next round.  ``peel_operations``
        counts one per removed vertex, exactly as the single-engine
        kernels do.
        """
        alive, members = self._alive_members(within)
        n = self._n
        full = within is None
        participants = {
            layer: self._participants(layer) for layer in layer_tuple
        }
        degrees = {}
        for layer in layer_tuple:
            table = [0] * n
            for executor in participants[layer]:
                executor.fill_degrees(layer, table, alive, members, full)
            degrees[layer] = table
        self.merges += len(layer_tuple)

        queued = bytearray(n)
        frontier = []
        tables = [degrees[layer] for layer in layer_tuple]
        for v in members:
            for table in tables:
                if table[v] < d:
                    frontier.append(v)
                    queued[v] = 1
                    break
        rounds = 0
        while frontier:
            rounds += 1
            if stats is not None:
                stats.peel_operations += len(frontier)
            for v in frontier:
                alive[v] = 0
            next_frontier = []
            for layer in layer_tuple:
                table = degrees[layer]
                for executor in participants[layer]:
                    for u in executor.scatter(layer, frontier, alive):
                        if not queued[u]:
                            value = table[u] - 1
                            table[u] = value
                            if value < d:
                                queued[u] = 1
                                next_frontier.append(u)
            frontier = next_frontier
        self.peel_rounds += rounds
        return alive, members

    def layer_core(self, layer, d, within=None):
        """Single-layer d-core (a set of ids), distributed peel."""
        if d < 0:
            raise ParameterError(
                "d must be non-negative, got {}".format(d)
            )
        self._check_layer(layer)
        if d == 0:
            _, members = self._alive_members(within)
            return set(members)
        alive, members = self._peel((layer,), d, within, None)
        return {v for v in members if alive[v]}

    def coherent_core(self, layer_tuple, d, within=None, stats=None):
        """Multi-layer d-CC (a frozenset of ids), distributed peel.

        Called from :func:`repro.core.dcc.coherent_core` after layer
        normalisation and the ``dcc_calls`` increment, mirroring the
        frozen kernel's position in that pipeline.
        """
        if d < 0:
            raise ParameterError(
                "d must be non-negative, got {}".format(d)
            )
        for layer in layer_tuple:
            self._check_layer(layer)
        if d == 0:
            _, members = self._alive_members(within)
            return frozenset(members)
        alive, members = self._peel(layer_tuple, d, within, stats)
        return frozenset(v for v in members if alive[v])

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def shard_stats(self):
        """The ``shards`` observability section (info / serving stats)."""
        per_shard = []
        for executor in self.executors:
            shard = executor.shard
            entry = {
                "index": shard.index,
                "vertices": shard.num_owned,
                "layers": list(shard.layers),
                "halo_vertices": shard.halo_vertices(),
                "memory_bytes": shard.memory_bytes(),
            }
            entry.update(executor.counters())
            per_shard.append(entry)
        return {
            "shards": len(self.shards),
            "strategy": self.strategy,
            "merges": self.merges,
            "peel_rounds": self.peel_rounds,
            "plans_installed": self.plans_installed,
            "budget_bytes": self.budget_bytes(),
            "per_shard": per_shard,
        }

    def __repr__(self):
        label = " {!r}".format(self.name) if self.name else ""
        return ("ShardedGraph({} shards, {}, {} layers, {} vertices, "
                "{} edges{})").format(
            len(self.shards), self.strategy, self._num_layers, self._n,
            self.total_edges(), label,
        )
