"""The async serving front-end over the synchronous multi-graph host.

:class:`AsyncDCCHost` is the layer the ROADMAP's serving track put
after PR 4's :class:`~repro.host.registry.DCCHost`: many concurrent
asyncio clients issuing d-CC searches over many named graphs, served by
one host process without a thread parked per request.

Design
------
* **Per-graph request queues.**  Every attached graph with traffic gets
  a bounded :class:`asyncio.Queue` (``max_pending`` slots) and one
  *dispatcher* task.  The dispatcher drains whatever requests have
  accumulated into a batch, leases the graph's engine, and serves the
  batch pipelined — submit all, await all, collect in order — so one
  graph's queue depth turns into engine-level pipelining, not into
  per-request pool spawns.
* **Backpressure.**  A full queue rejects new requests with
  :class:`~repro.utils.errors.QueueFullError` instead of buffering
  without bound; callers shed load or retry.  Coalesced duplicates (see
  below) never occupy a queue slot.
* **Request coalescing.**  Requests whose ``(graph, method, d, s, k,
  options)`` spec is identical to one already in flight attach to it
  rather than re-executing: when the primary completes, every attached
  waiter receives a deep copy of its result.  The engine layer's
  warm==cold counter-replay contract is what makes this invisible —
  a coalesced answer is bitwise identical (sets, labels, counters) to
  re-running the spec, so coalescing trades only duplicate work, never
  results.
* **Cross-time result cache.**  Coalescing only dedupes *concurrent*
  duplicates; a :class:`~repro.aio.result_cache.ResultCache` above the
  coalescer dedupes across time — finished results are memoised under
  ``(graph, mutation_version, spec)`` with LRU + TTL bounds, and a
  repeat served minutes later costs a lookup and a deep copy instead
  of a search.  Cached hits replay the stored stats delta (a caller's
  ``stats=`` accumulator is charged exactly as a live search would
  charge it), and the ``mutation_version`` key plus a per-graph
  watermark purge make mutation invalidation automatic — a stale
  answer is unreachable the moment the graph ticks.
* **Streaming updates.**  :meth:`update` applies a batched edge delta
  to an attached graph through the same per-graph FIFO the searches
  ride, so clients observe a single total order: searches accepted
  before the update answer against the old graph, searches after it
  against the new one.  The mutation is one atomic
  ``apply_delta`` batch (one ``mutation_version`` tick), the result
  cache's watermark advances in the same step, and the graph's engine
  rebinds lazily on its next query — patching its CSR and keeping
  untouched per-layer artifacts when the recorded delta allows.
* **Per-request metrics.**  Queue depths, coalesce/cache hit counters
  and service-latency percentiles (accept to resolve, recorded through
  an injectable clock into a bounded window) are exposed via
  :meth:`info`, the ``stats`` protocol message of both serving
  transports, and ``repro info``.
* **No thread per request.**  Serving leans on the submission/collection
  split threaded through the stack (``DCCEngine.submit`` →
  ``WorkerPool.submit_query``): the dispatcher submits on a pool
  thread, *awaits* the in-flight shard futures on the event loop
  (``asyncio.wrap_future``), and only then runs the cheap collect/merge
  on a pool thread.  Worker-pool execution never holds a thread; inline
  execution (``jobs=1`` engines) holds one thread per *active engine*
  for the duration of the compute, which keeps the event loop live
  either way.
* **Eviction safety.**  A dispatcher holds a :meth:`DCCHost.lease` on
  its graph while serving, so admission-control eviction (another graph
  being admitted under ``max_engines`` pressure) can never close a pool
  with shard futures in flight.  The number of concurrently *serving*
  graphs is itself capped at ``max_engines``; dispatchers beyond it
  wait their turn, which guarantees an evictable (idle, unpinned)
  victim always exists.
* **Graceful drain.**  :meth:`aclose` stops accepting work, lets every
  dispatcher finish the requests already queued, then closes the
  underlying host — every worker pool shuts down
  (``live_pool_count()`` returns to its baseline).

Determinism contract, carried from PRs 2–4 and property-tested in
``tests/test_aio.py``: any interleaving of async clients yields, for
every request, results and counters bitwise identical to the same spec
run sequentially on a plain :class:`DCCHost` — across evictions,
coalesced duplicates and dispatcher batching.

One event loop at a time: the host binds to the loop of its first
request and rebinds automatically once that loop is closed (which is
what lets :meth:`run_batch` bridge from synchronous code, one
``asyncio.run`` at a time).  Concurrent use from two live loops raises.
"""

import asyncio
import copy
import threading
import time
from contextlib import asynccontextmanager
from functools import partial

from repro.aio.metrics import LatencyRecorder
from repro.aio.result_cache import (
    DEFAULT_RESULT_CACHE_ENTRIES,
    ResultCache,
)
from repro.host import DCCHost
from repro.utils.errors import (
    FrozenGraphError,
    GraphError,
    HostClosedError,
    ParameterError,
    QueueFullError,
    UnknownGraphError,
)

# Default bound on queued (not yet dispatched) requests per graph.
DEFAULT_MAX_PENDING = 1024

# How many queued requests one dispatcher turn drains into a pipelined
# batch.  Bounds the latency of a drain/stop request landing behind a
# deep queue; engine pipelining gains flatten out well before this.
MAX_BATCH = 32

# Queue sentinel telling a dispatcher to exit after the queue drains.
_STOP = object()


class _Request:
    """One enqueued search plus everything needed to answer it."""

    __slots__ = ("spec", "key", "future", "waiters")

    def __init__(self, spec, key, future):
        self.spec = spec
        self.key = key
        self.future = future
        self.waiters = []


class _GraphUpdate:
    """One enqueued mutation batch riding a graph's request queue.

    Updates share the queue with searches so one graph's traffic is a
    single FIFO: every search accepted before the update sees the old
    graph, every one accepted after it sees the new one — the ordering
    clients observe is exactly the order the queue accepted.
    """

    __slots__ = ("add", "remove", "future")

    def __init__(self, add, remove, future):
        self.add = add
        self.remove = remove
        self.future = future


def _coalesce_key(name, d, s, k, method, options):
    """The in-flight identity of a spec, or ``None`` if uncoalescable.

    Unhashable option values (a caller-supplied ``stats`` accumulator,
    say) opt the request out of coalescing rather than failing it.
    """
    try:
        key = (name, method, d, s, k, tuple(sorted(options.items())))
        hash(key)
    except TypeError:
        return None
    return key


class AsyncDCCHost:
    """Async façade over a :class:`DCCHost`; see the module docstring.

    Parameters
    ----------
    host:
        An existing :class:`DCCHost` to serve through, or ``None`` to
        construct one from ``host_options`` (``max_engines``, ``jobs``,
        ``backend``, ...).  Either way :meth:`aclose` closes it.
    max_pending:
        Per-graph bound on queued requests; a full queue raises
        :class:`~repro.utils.errors.QueueFullError`.
    coalesce:
        Switch in-flight duplicate coalescing off (``True`` by
        default); results are identical either way.
    cache_results:
        Switch the cross-time result cache off (``False``); results are
        identical either way, warm repeats just search live again.
    result_cache:
        An already-constructed :class:`ResultCache` to serve from —
        the injection point for deterministic TTL/eviction tests
        (bring your own clock).  Mutually exclusive with
        ``cache_results=False``; when omitted, one is built from
        ``result_cache_entries`` / ``result_cache_ttl``.
    result_cache_entries / result_cache_ttl:
        LRU entry cap (default 4096) and optional TTL seconds for the
        built-in result cache.
    clock:
        Monotonic time source for the latency metrics, injectable so
        the metrics tests can assert exact percentiles.

    Use as an async context manager (or call :meth:`aclose`) so the
    drain-and-shutdown runs::

        async with AsyncDCCHost(max_engines=2, jobs=2) as host:
            host.attach("ppi", ppi_graph)
            results = await asyncio.gather(
                host.search("ppi", d=3, s=2, k=2),
                host.search("ppi", d=3, s=2, k=2),   # coalesces
            )
    """

    def __init__(self, host=None, max_pending=DEFAULT_MAX_PENDING,
                 coalesce=True, cache_results=True, result_cache=None,
                 result_cache_entries=DEFAULT_RESULT_CACHE_ENTRIES,
                 result_cache_ttl=None, clock=time.monotonic,
                 **host_options):
        if host is not None and host_options:
            raise ParameterError(
                "pass either an existing host or host options to build "
                "one, not both (got host= plus {})".format(
                    sorted(host_options)
                )
            )
        if isinstance(max_pending, bool) or not isinstance(max_pending, int) \
                or max_pending < 1:
            raise ParameterError(
                "max_pending must be a positive integer, got {!r}".format(
                    max_pending
                )
            )
        if result_cache is not None and not cache_results:
            raise ParameterError(
                "cache_results=False contradicts passing a result_cache; "
                "drop one of the two"
            )
        if result_cache is not None:
            self._results = result_cache
        elif cache_results:
            self._results = ResultCache(max_entries=result_cache_entries,
                                        ttl=result_cache_ttl)
        else:
            self._results = None
        self._clock = clock
        self.latency = LatencyRecorder()
        self._host = host if host is not None else DCCHost(**host_options)
        # Admission (a possible O(n + m) freeze plus pool teardown of
        # the eviction victim) runs on executor threads so the event
        # loop stays responsive; this lock is what makes the host's
        # single-threaded registry safe against loop-side calls
        # (attach/detach/info) landing mid-admission.
        self._host_lock = threading.RLock()
        self.max_pending = max_pending
        self._coalesce = coalesce
        self._closed = False
        self._loop = None
        self._queues = {}
        self._dispatchers = {}
        self._inflight = {}
        self._busy = set()
        self._turnstile = None  # asyncio.Condition, created per loop
        # Per-graph count of updates accepted but not yet applied.
        # While non-zero, that graph's searches bypass the result cache
        # and the coalescer: both key on mutation_version / in-flight
        # specs of the *old* graph, and a search accepted behind a
        # queued update must answer against the new one.
        self._pending_updates = {}
        self.requests_accepted = 0
        self.requests_served = 0
        self.requests_coalesced = 0
        self.requests_cached = 0
        self.requests_rejected = 0
        self.batches_dispatched = 0
        self.updates_applied = 0
        self.update_edges_applied = 0
        self.update_latency = LatencyRecorder()

    # ------------------------------------------------------------------
    # registry surface (synchronous, delegated)
    # ------------------------------------------------------------------

    @property
    def host(self):
        """The synchronous :class:`DCCHost` substrate being served."""
        return self._host

    def attach(self, name, graph, **overrides):
        """Register a graph on the underlying host; returns ``self``."""
        with self._host_lock:
            self._host.attach(name, graph, **overrides)
        if self._results is not None:
            # A recycled name must never serve the previous graph's
            # answers — mutation_version alone cannot tell two distinct
            # graphs apart.
            self._results.invalidate(name)
        return self

    def detach(self, name):
        """Drop a registration (refused while its engine is serving)."""
        with self._host_lock:
            self._host.detach(name)
        if self._results is not None:
            self._results.invalidate(name)

    def is_attached(self, name):
        return self._host.is_attached(name)

    def graph(self, name):
        return self._host.graph(name)

    def names(self):
        return self._host.names()

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    async def search(self, name, d, s, k, method="auto", **options):
        """One search against the named graph; awaits its result.

        Exactly :meth:`DCCHost.search` semantics — same option surface,
        same bitwise-determinism contract — behind the queue, the
        coalescer and the dispatcher.  Raises
        :class:`~repro.utils.errors.QueueFullError` under backpressure
        and whatever the engine raises (``WorkerCrashError``,
        ``StaleResultError``, parameter errors) otherwise.
        """
        self._ensure_serving(name)
        loop = asyncio.get_running_loop()
        started = self._clock()
        # The result cache sits *above* the coalescer: a finished
        # duplicate — even one served minutes ago — never touches a
        # queue, a dispatcher or an engine.
        pending_update = bool(self._pending_updates.get(name))
        cache_key = None
        if self._results is not None and not pending_update:
            cache_key = ResultCache.key_for(
                name, self._host.graph(name).mutation_version,
                d, s, k, method, options,
            )
            if cache_key is not None:
                cached = self._results.fetch(cache_key,
                                             options.get("stats"))
                if cached is not None:
                    self.requests_cached += 1
                    self.latency.record(self._clock() - started)
                    return cached
        key = _coalesce_key(name, d, s, k, method, options) \
            if self._coalesce and not pending_update else None
        if key is not None:
            primary = self._inflight.get(key)
            if primary is not None:
                waiter = loop.create_future()
                primary.waiters.append(waiter)
                self.requests_coalesced += 1
                result = await waiter
                self.latency.record(self._clock() - started)
                return result
        request = _Request((d, s, k, method, options), key,
                           loop.create_future())
        queue = self._queue_for(name)
        try:
            queue.put_nowait(request)
        except asyncio.QueueFull:
            self.requests_rejected += 1
            raise QueueFullError(name, self.max_pending) from None
        if key is not None:
            self._inflight[key] = request
        self.requests_accepted += 1
        result = await request.future
        self._maybe_cache(name, cache_key, options, result)
        self.latency.record(self._clock() - started)
        return result

    def _maybe_cache(self, name, cache_key, options, result):
        """Populate the result cache from a finished live search.

        Three eligibility gates: the spec was cacheable at all, no user
        ``stats=`` accumulator rode the request (its result's stats
        object is the caller's own, not a clean replayable delta), and
        the graph is still on the version the key was cut for — a
        mutation racing the search must not resurrect the old answer.
        """
        if cache_key is None or "stats" in options:
            return
        try:
            current = self._host.graph(name).mutation_version
        except GraphError:
            return  # detached while the search was in flight
        if current != cache_key[1]:
            return
        self._results.put(cache_key, result)

    async def update(self, name, add=(), remove=()):
        """Apply one batched mutation to the named graph; awaits a receipt.

        ``add`` and ``remove`` are iterables of ``(layer, u, v)`` edges,
        applied through the graph's :meth:`apply_delta` — one atomic
        batch, one ``mutation_version`` tick, validated up front so a
        bad edge rejects the whole batch without touching the graph.

        The update rides the same per-graph FIFO as searches: requests
        accepted before it are answered against the pre-update graph,
        requests accepted after it against the post-update graph, under
        any client interleaving.  The receipt reports the *net* delta
        (an add cancelling a queued remove applies as nothing) and the
        new ``mutation_version``; the cross-time result cache's
        watermark for the graph advances in the same step, so stale
        answers are unreachable the moment the update resolves.
        """
        self._ensure_serving(name)
        graph = self._host.graph(name)
        if getattr(graph, "apply_delta", None) is None:
            raise FrozenGraphError("apply_delta")
        loop = asyncio.get_running_loop()
        started = self._clock()
        update = _GraphUpdate(tuple(add), tuple(remove),
                              loop.create_future())
        queue = self._queue_for(name)
        try:
            queue.put_nowait(update)
        except asyncio.QueueFull:
            self.requests_rejected += 1
            raise QueueFullError(name, self.max_pending) from None
        self._pending_updates[name] = self._pending_updates.get(name, 0) + 1
        self.requests_accepted += 1
        receipt = await update.future
        self.update_latency.record(self._clock() - started)
        return receipt

    async def search_many(self, specs):
        """Serve a batch of ``{"graph": ..., "d": ..., ...}`` specs.

        The async analogue of :meth:`DCCHost.search_many`: every spec is
        submitted concurrently (so duplicates coalesce and per-graph
        groups pipeline) and results come back in input order, each
        bitwise identical to the corresponding :meth:`search` call.
        Specs are validated for shape before any of them is enqueued.

        A spec may also be an ``{"op": "update", "graph": ..., "add":
        ..., "remove": ...}`` mutation (the batch-spec file shape); it
        is submitted through :meth:`update` at its position, and since
        submission order is enqueue order, every search listed after it
        answers against the mutated graph.  Its slot in the returned
        list holds the update receipt dict.
        """
        parsed = []
        for number, entry in enumerate(specs, 1):
            entry = dict(entry)
            name = entry.pop("graph", None)
            if name is None:
                raise ParameterError(
                    "batch query {} ({!r}) is missing the \"graph\" key "
                    "naming an attached graph".format(number, entry)
                )
            self._ensure_serving(name)
            if entry.get("op") == "update":
                parsed.append(("update", name,
                               tuple(tuple(edge)
                                     for edge in entry.get("add") or ()),
                               tuple(tuple(edge)
                                     for edge in entry.get("remove") or ())))
                continue
            try:
                d = entry.pop("d")
                s = entry.pop("s")
                k = entry.pop("k")
            except KeyError as missing:
                raise ParameterError(
                    "batch query {} is missing required key {}".format(
                        number, missing
                    )
                ) from None
            method = entry.pop("method", "auto")
            parsed.append(("search", name, d, s, k, method, entry))
        # gather() starts the coroutines in order and both search() and
        # update() enqueue before their first await, so the per-graph
        # FIFO sees the specs in input order — an update is a barrier at
        # exactly its list position.
        return await asyncio.gather(*(
            self.update(item[1], add=item[2], remove=item[3])
            if item[0] == "update"
            else self.search(item[1], item[2], item[3], item[4],
                             method=item[5], **item[6])
            for item in parsed
        ))

    def run_batch(self, specs):
        """Serve a batch from synchronous code; blocks for the results.

        The bridge ``sweep(..., host=)`` uses: one ``asyncio.run`` per
        call, with the dispatchers quiesced before the loop closes so
        the host can be driven again (from the next call, or async).
        Must not be called while an event loop is already running.
        """
        async def _serve_and_quiesce():
            try:
                return await self.search_many(specs)
            finally:
                await self._quiesce()

        return asyncio.run(_serve_and_quiesce())

    # ------------------------------------------------------------------
    # dispatcher machinery
    # ------------------------------------------------------------------

    def _ensure_serving(self, name):
        if self._closed:
            raise HostClosedError()
        if not self._host.is_attached(name):
            raise UnknownGraphError(name, dict.fromkeys(self._host.names()))
        self._bind_loop()

    def _bind_loop(self):
        """Adopt the running loop, or insist on the one already bound.

        Rebinding is only legal when the previous loop is gone (closed):
        queues, dispatcher tasks and in-flight futures all belong to a
        loop, and none of them can have survived its close.
        """
        loop = asyncio.get_running_loop()
        if self._loop is loop:
            return
        if self._loop is not None and not self._loop.is_closed():
            raise ParameterError(
                "this AsyncDCCHost is already serving on another live "
                "event loop; one loop at a time"
            )
        self._loop = loop
        self._queues = {}
        self._dispatchers = {}
        self._inflight = {}
        self._busy = set()
        self._pending_updates = {}
        self._turnstile = asyncio.Condition()

    def _queue_for(self, name):
        queue = self._queues.get(name)
        if queue is None:
            queue = asyncio.Queue(maxsize=self.max_pending)
            self._queues[name] = queue
            self._dispatchers[name] = self._loop.create_task(
                self._dispatch(name), name="repro-dispatch-{}".format(name)
            )
        return queue

    async def _dispatch(self, name):
        """One graph's dispatcher: drain, lease, serve, repeat.

        Updates ride the same queue as searches, so an update is a
        batch *barrier*: draining stops at it, the drained searches are
        served against the pre-update graph, and the update applies on
        the next turn before anything accepted after it is served.
        """
        queue = self._queues[name]
        carry = None
        while True:
            if carry is not None:
                request, carry = carry, None
            else:
                request = await queue.get()
            if request is _STOP:
                return
            if isinstance(request, _GraphUpdate):
                await self._apply_update(name, request)
                continue
            batch = [request]
            while len(batch) < MAX_BATCH and not queue.empty():
                head = queue.get_nowait()
                if head is _STOP:
                    # Serve what was drained first, then exit: a slot is
                    # free (we just took the sentinel out), so this
                    # re-enqueue cannot fail.
                    queue.put_nowait(head)
                    break
                if isinstance(head, _GraphUpdate):
                    # FIFO barrier: finish the drained searches first,
                    # apply the update on the next turn.
                    carry = head
                    break
                batch.append(head)
            try:
                async with self._engine_turn(name):
                    await self._serve_batch(name, batch)
            except Exception as error:  # pragma: no cover - safety net
                for pending in batch:
                    self._resolve_error(pending, error)

    async def _apply_update(self, name, update):
        """Run one mutation batch on a pool thread; resolve its future.

        No :meth:`_engine_turn` and no lease: this dispatcher is the
        only path that serves this graph, and it is parked right here —
        no search against the graph can be in flight.  The engine
        notices the version tick lazily on its next query and rebinds
        (patching when the delta allows — see ``engine/session.py``).
        """
        loop = asyncio.get_running_loop()
        try:
            receipt = await loop.run_in_executor(
                None,
                partial(self._locked_update, name, update.add,
                        update.remove),
            )
        except Exception as error:
            if not update.future.done():
                update.future.set_exception(error)
        else:
            if not update.future.done():
                update.future.set_result(receipt)
        finally:
            left = self._pending_updates.get(name, 0) - 1
            if left > 0:
                self._pending_updates[name] = left
            else:
                self._pending_updates.pop(name, None)
        self.requests_served += 1

    def _locked_update(self, name, add, remove):
        """Mutate under the host lock; runs on a pool thread.

        The lock guards the registry against attach/detach/info racing
        the mutation; the result-cache watermark advances in the same
        critical section so no stale answer is served after the new
        version exists.
        """
        with self._host_lock:
            graph = self._host.graph(name)
            delta = graph.apply_delta(add=add, remove=remove)
            version = graph.mutation_version
            if self._results is not None:
                self._results.note_mutation(name, version)
        self.updates_applied += 1
        edges = 0 if delta is None else delta.edge_count
        self.update_edges_applied += edges
        return {
            "applied": edges,
            "added": 0 if delta is None else len(delta.edges_added),
            "removed": 0 if delta is None else len(delta.edges_removed),
            "mutation_version": version,
        }

    @asynccontextmanager
    async def _engine_turn(self, name):
        """Bound concurrently-serving graphs by the host's engine cap.

        At most ``max_engines`` graphs serve at once, so every leased
        (pinned) session fits inside the resident cap and admission
        always finds an unpinned victim — the async layer's half of the
        eviction-safety argument.
        """
        turnstile = self._turnstile
        async with turnstile:
            await turnstile.wait_for(
                lambda: len(self._busy) < self._host.max_engines
            )
            self._busy.add(name)
        try:
            yield
        finally:
            async with turnstile:
                self._busy.discard(name)
                turnstile.notify_all()

    def _lease(self, name):
        """Pin + admit on a pool thread; admission can run a freeze."""
        with self._host_lock:
            self._host.pin(name)
            try:
                return self._host.engine(name)
            except BaseException:
                self._host.unpin(name)
                raise

    def _release(self, name):
        """Unpin on a pool thread; the shrink-back may close a pool."""
        with self._host_lock:
            self._host.unpin(name)

    async def _serve_batch(self, name, batch):
        """Lease the engine and run one drained batch, pipelined."""
        loop = asyncio.get_running_loop()
        self.batches_dispatched += 1
        engine = await loop.run_in_executor(None, self._lease, name)
        try:
            handles = []
            for request in batch:
                d, s, k, method, options = request.spec
                try:
                    # Plan + shard submission on a pool thread: planning
                    # runs real preprocessing, and the loop must stay
                    # responsive to other graphs' clients meanwhile.
                    handle = await loop.run_in_executor(
                        None,
                        partial(engine.submit, d, s, k, method=method,
                                **options),
                    )
                except Exception as error:
                    self._resolve_error(request, error)
                    handles.append(None)
                else:
                    handles.append(handle)
            await self._await_shards(handles)
            for request, handle in zip(batch, handles):
                if handle is None:
                    continue
                try:
                    result = await loop.run_in_executor(None, handle.collect)
                except Exception as error:
                    self._resolve_error(request, error)
                else:
                    self._host.searches_served += 1
                    self._resolve(request, result)
        finally:
            # Lease released: the engine is evictable again.
            await loop.run_in_executor(None, self._release, name)

    @staticmethod
    async def _await_shards(handles):
        """Await every in-flight shard future without consuming errors.

        Failures (a worker exception, a crash cancelling siblings) are
        deliberately *not* raised here — ``handle.collect()`` owns error
        semantics.  Wrapper exceptions are touched after the wait so the
        event loop never logs them as unretrieved.
        """
        waitables = [future
                     for handle in handles if handle is not None
                     for future in handle.waitables()]
        if not waitables:
            return
        wrapped = [asyncio.wrap_future(future) for future in waitables]
        await asyncio.wait(wrapped)
        for waiter in wrapped:
            if not waiter.cancelled():
                waiter.exception()

    def _resolve(self, request, result):
        """Deliver a result to the primary and every coalesced waiter."""
        if request.key is not None:
            self._inflight.pop(request.key, None)
        if not request.future.done():
            request.future.set_result(result)
        for waiter in request.waiters:
            if not waiter.done():
                # A private deep copy per waiter: coalesced clients must
                # not share mutable result state with each other or the
                # primary.
                waiter.set_result(copy.deepcopy(result))
        self.requests_served += 1 + len(request.waiters)

    def _resolve_error(self, request, error):
        if request.key is not None:
            self._inflight.pop(request.key, None)
        if not request.future.done():
            request.future.set_exception(error)
        for waiter in request.waiters:
            if not waiter.done():
                waiter.set_exception(error)
        self.requests_served += 1 + len(request.waiters)

    # ------------------------------------------------------------------
    # lifecycle / status
    # ------------------------------------------------------------------

    async def _quiesce(self):
        """Stop every dispatcher after its queue drains; keep the host.

        The already-accepted requests are all served — the sentinel
        rides the same queue behind them — so nothing accepted is ever
        dropped.  Serving resumes lazily on the next request.
        """
        dispatchers = list(self._dispatchers.values())
        for queue in self._queues.values():
            await queue.put(_STOP)
        if dispatchers:
            await asyncio.gather(*dispatchers)
        self._queues.clear()
        self._dispatchers.clear()
        self._inflight.clear()

    async def aclose(self):
        """Drain and shut down: serve accepted work, close every pool.

        New requests are refused (:class:`HostClosedError`) as soon as
        this starts; requests already queued are served to completion;
        then the underlying host closes, shutting down every resident
        engine's worker pool.  Idempotent.
        """
        if self._closed:
            return
        # Bind (which may refuse: another live loop owns the host)
        # *before* flipping the closed flag — a failed aclose must leave
        # the host drainable, not wedge it half-closed forever.
        self._bind_loop()
        self._closed = True
        await self._quiesce()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._locked_close)

    def _locked_close(self):
        with self._host_lock:
            self._host.close()

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        await self.aclose()
        return False

    def pending(self):
        """Requests queued (accepted, not yet dispatched), per graph."""
        return {name: queue.qsize()
                for name, queue in self._queues.items() if queue.qsize()}

    def info(self):
        """Serving-layer counters stacked on the host's own status."""
        with self._host_lock:
            host_status = self._host.info()
        return {
            "max_pending": self.max_pending,
            "coalescing": self._coalesce,
            "requests_accepted": self.requests_accepted,
            "requests_served": self.requests_served,
            "requests_coalesced": self.requests_coalesced,
            "requests_cached": self.requests_cached,
            "requests_rejected": self.requests_rejected,
            "batches_dispatched": self.batches_dispatched,
            "updates_applied": self.updates_applied,
            "update_edges_applied": self.update_edges_applied,
            "update_latency": self.update_latency.snapshot(),
            "pending": self.pending(),
            "inflight_keys": len(self._inflight),
            "dispatchers": tuple(self._dispatchers),
            "result_cache": self._results.stats()
            if self._results is not None else None,
            "latency": self.latency.snapshot(),
            "closed": self._closed,
            "host": host_status,
        }

    @property
    def result_cache(self):
        """The cross-time :class:`ResultCache`, or ``None`` if disabled."""
        return self._results
