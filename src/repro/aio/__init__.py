"""Async serving over the multi-graph host.

:class:`AsyncDCCHost` puts an asyncio front-end on
:class:`repro.host.DCCHost`: per-graph bounded request queues with one
dispatcher task each, in-flight coalescing of identical specs, a
cross-time :class:`ResultCache` above the coalescer, backpressure via
:class:`~repro.utils.errors.QueueFullError`, and a graceful drain on
``aclose()`` — while the submission/collection split in the engine and
worker pool lets dispatchers *await* shard futures instead of parking a
thread per request.

:class:`DCCServer` lifts the JSON-lines protocol onto real sockets
(``repro serve --port``) so many client connections multiplex over one
host; ``repro serve`` without ``--port`` drives the same protocol over
stdin/stdout.  ``docs/architecture.md`` documents the queueing,
coalescing, caching and fault-containment design.
"""

from repro.aio.host import (
    DEFAULT_MAX_PENDING,
    MAX_BATCH,
    AsyncDCCHost,
)
from repro.aio.metrics import DEFAULT_LATENCY_WINDOW, LatencyRecorder
from repro.aio.result_cache import DEFAULT_RESULT_CACHE_ENTRIES, ResultCache
from repro.aio.server import (
    DEFAULT_BIND,
    DEFAULT_MAX_REQUEST_BYTES,
    DCCServer,
    format_response,
    parse_update_edges,
    serving_stats,
)

__all__ = [
    "AsyncDCCHost",
    "DCCServer",
    "DEFAULT_BIND",
    "DEFAULT_LATENCY_WINDOW",
    "DEFAULT_MAX_PENDING",
    "DEFAULT_MAX_REQUEST_BYTES",
    "DEFAULT_RESULT_CACHE_ENTRIES",
    "LatencyRecorder",
    "MAX_BATCH",
    "ResultCache",
    "format_response",
    "parse_update_edges",
    "serving_stats",
]
