"""Async serving over the multi-graph host.

:class:`AsyncDCCHost` puts an asyncio front-end on
:class:`repro.host.DCCHost`: per-graph bounded request queues with one
dispatcher task each, in-flight coalescing of identical specs,
backpressure via :class:`~repro.utils.errors.QueueFullError`, and a
graceful drain on ``aclose()`` — while the submission/collection split
in the engine and worker pool lets dispatchers *await* shard futures
instead of parking a thread per request.

``repro serve`` drives one as a JSON-lines loop over stdin/stdout;
``docs/architecture.md`` documents the queueing, coalescing and
eviction-safety design.
"""

from repro.aio.host import (
    DEFAULT_MAX_PENDING,
    MAX_BATCH,
    AsyncDCCHost,
)

__all__ = [
    "AsyncDCCHost",
    "DEFAULT_MAX_PENDING",
    "MAX_BATCH",
]
