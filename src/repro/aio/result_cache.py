"""The cross-time result cache above the serving layer's coalescer.

In-flight coalescing (``repro/aio/host.py``) dedupes *concurrent*
duplicates; at serving scale the bigger win is the duplicates separated
by seconds or minutes — the popular queries a fleet of clients keeps
re-asking.  :class:`ResultCache` memoises *finished* search results so a
repeat served any time later costs a dictionary lookup and a deep copy
instead of a search.

Keying and staleness
--------------------
Entries are keyed by ``(graph name, mutation_version, spec)`` where the
spec is ``(d, s, k, method, sorted options)``.  The graph's
``mutation_version`` being part of the key is what makes the cache safe
over mutable graphs: any mutation ticks the version, so post-mutation
lookups can never see pre-mutation answers.  Stale-version entries are
not merely unreachable — the cache tracks one version watermark per
graph and purges a graph's entries wholesale the first time it is
consulted under a new version (the ``invalidations`` counter), so a
mutation tick also releases the memory.

The counter-replay contract, one layer up
-----------------------------------------
Reported :class:`~repro.core.stats.SearchStats` are part of the repo's
bitwise-determinism guarantee, and the engine's :class:`ArtifactCache`
already establishes the discipline: never let a cache make a warm query
*observably* cheaper.  Entries therefore store the search's stats delta
alongside its sets, and :meth:`fetch` replays it — a caller that passed
its own ``stats=`` accumulator gets the delta merged in exactly as a
live search would have merged it.  A cache hit is bitwise identical —
sets, labels, counters — to re-running the spec (property-tested in
``tests/test_result_cache.py`` and, over real sockets, in
``tests/test_server.py``).

Two option subtleties:

* A caller-supplied ``stats`` accumulator is *excluded* from the key
  (it selects no different answer) but makes the producing request
  ineligible to **populate** the cache — its result's ``stats`` object
  is the caller's own accumulator, not a clean delta.  Such requests
  still *read* the cache.
* Other unhashable option values opt the request out of the cache
  entirely, mirroring the coalescer.

Bounds
------
``max_entries`` (LRU discard beyond the cap) and ``ttl`` (entries older
than ``ttl`` seconds expire on their next lookup) bound the cache, with
an injectable monotonic ``clock`` so every eviction/expiry schedule is
deterministically testable — no sleeps.  Eviction and expiry never
affect results: a dropped entry's spec simply searches live again, and
determinism makes the recomputed answer identical to the dropped one.
"""

import copy
import time
from collections import OrderedDict

from repro.utils.errors import ParameterError

# Default entry cap for a serving tier's result cache.  An entry is one
# finished result (a handful of frozensets plus counters) — a few
# thousand of the hottest specs is cheap and covers far more traffic
# than any realistic distinct-spec population.
DEFAULT_RESULT_CACHE_ENTRIES = 4096


class ResultCache:
    """LRU + TTL cache of finished search results with stats replay.

    Parameters
    ----------
    max_entries:
        Entry cap; the least-recently-used entry is discarded beyond it.
        ``None`` never discards for size.
    ttl:
        Seconds an entry stays servable; expired entries are dropped on
        their next lookup.  ``None`` (default) never expires.
    clock:
        Monotonic time source, injectable for deterministic TTL tests.
    """

    def __init__(self, max_entries=DEFAULT_RESULT_CACHE_ENTRIES, ttl=None,
                 clock=time.monotonic):
        if max_entries is not None and (
                isinstance(max_entries, bool)
                or not isinstance(max_entries, int) or max_entries < 1):
            raise ParameterError(
                "max_entries must be None or a positive integer, "
                "got {!r}".format(max_entries)
            )
        if ttl is not None and (
                isinstance(ttl, bool)
                or not isinstance(ttl, (int, float)) or not ttl > 0):
            raise ParameterError(
                "ttl must be None or a positive number of seconds, "
                "got {!r}".format(ttl)
            )
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._entries = OrderedDict()  # key -> (result, stamp)
        self._versions = {}  # graph name -> version watermark
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    # ------------------------------------------------------------------
    # keying
    # ------------------------------------------------------------------

    @staticmethod
    def key_for(name, version, d, s, k, method, options):
        """The cross-time identity of a spec, or ``None`` if uncacheable.

        A caller's ``stats`` accumulator never changes the answer, so it
        is dropped from the key; any *other* unhashable option value
        opts the request out of caching rather than failing it.
        """
        items = tuple(sorted(
            (key, value) for key, value in options.items() if key != "stats"
        ))
        key = (name, version, d, s, k, method, items)
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def _advance_watermark(self, name, version):
        """Purge a graph's entries the first time a new version is seen."""
        known = self._versions.get(name)
        if known == version:
            return
        if known is not None:
            self.invalidate(name)
            self.invalidations += 1
        self._versions[name] = version

    def note_mutation(self, name, version):
        """Advance a graph's watermark eagerly after an applied update.

        Lookups advance the watermark lazily from each key's version, so
        correctness never depends on this call — but a streaming host
        that just mutated a graph knows the stale entries are dead and
        drops them now rather than letting them squat in the LRU until
        the next query for that graph arrives.
        """
        self._advance_watermark(name, version)

    # ------------------------------------------------------------------
    # lookup / population
    # ------------------------------------------------------------------

    def fetch(self, key, user_stats=None):
        """The cached result for ``key`` as a private deep copy, or ``None``.

        A hit replays the stored stats delta exactly as a live search
        would: with ``user_stats`` (the caller's ``stats=`` accumulator)
        the delta is merged into it and the returned result reports the
        accumulator itself — one-shot semantics, warm == cold bitwise.
        """
        self._advance_watermark(key[0], key[1])
        entry = self._entries.get(key)
        if entry is not None and self.ttl is not None \
                and self._clock() - entry[1] > self.ttl:
            del self._entries[key]
            self.expirations += 1
            entry = None
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(key)
        result = copy.deepcopy(entry[0])
        if user_stats is not None:
            user_stats.merge(result.stats)
            result.stats = user_stats
        return result

    def put(self, key, result):
        """Store a finished result (a private deep copy) under ``key``.

        The caller owns eligibility: only results whose ``stats`` object
        is the search's clean delta (no user accumulator was merged)
        may populate the cache — see the module docstring.
        """
        self._advance_watermark(key[0], key[1])
        self._entries[key] = (copy.deepcopy(result), self._clock())
        self._entries.move_to_end(key)
        self.insertions += 1
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    # ------------------------------------------------------------------
    # invalidation / status
    # ------------------------------------------------------------------

    def invalidate(self, name=None):
        """Drop every entry for graph ``name`` (or all entries).

        The version watermark makes mutation-driven invalidation
        automatic; this surface is for registry churn — a host detaching
        a graph (or re-attaching a different graph under a recycled
        name) must not leave answers for the old graph reachable.
        """
        if name is None:
            dropped = len(self._entries)
            self._entries.clear()
            self._versions.clear()
            return dropped
        stale = [key for key in self._entries if key[0] == name]
        for key in stale:
            del self._entries[key]
        self._versions.pop(name, None)
        return len(stale)

    def stats(self):
        """Counter snapshot for ``info()`` / the ``stats`` protocol op."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "max_entries": self.max_entries,
            "ttl": self.ttl,
        }
