"""The network serving tier: JSON-lines over real asyncio sockets.

``repro serve`` spoke a socket-shaped protocol (ids, out-of-order
completion, backpressure) over stdin/stdout; :class:`DCCServer` lifts
the same protocol onto ``asyncio.start_server`` so many client
*connections* multiplex over one :class:`~repro.aio.host.AsyncDCCHost`
— and through it over one set of engines, one coalescer and one
cross-time result cache.

Protocol
--------
One JSON object per line, newline-terminated, both directions.

Requests are either a search — ``{"graph": ..., "d": ..., "s": ...,
"k": ...}`` plus optional ``"method"``, search options and an ``"id"``
echoed back — or an operation object:

``{"op": "stats"}``
    Answers ``{"ok": true, "stats": {...}}`` with the serving tier's
    metrics: per-graph queue depths, coalesce/cache hit counters,
    latency percentiles, update counters, server connection/request
    counters and the underlying host's admission picture.  The same
    payload backs ``repro info`` (see :func:`serving_stats`).

``{"op": "update", "graph": ..., "add": [[layer, u, v], ...],
"remove": [[layer, u, v], ...]}``
    Applies one batched edge mutation to the named graph — atomic,
    validated up front, one ``mutation_version`` tick — and answers
    ``{"ok": true, "update": {...}}`` with the net applied counts and
    the new version.  Ordering is the per-graph FIFO's: searches this
    connection (or any other) got accepted before the update answer
    against the old graph, later ones against the new one.  ``add`` /
    ``remove`` are optional individually, but at least one edge must
    be present between them.

Responses carry ``seq`` (per-connection arrival number), the echoed
``id`` when one was given, and ``ok`` with either the result payload or
``error``/``error_type``.  Responses stream as requests complete —
completion order is not arrival order; correlate by ``id``/``seq``.

Fault containment, per connection
---------------------------------
* a line that is not valid JSON, or not a JSON object, answers a typed
  per-line error (``JSONDecodeError`` / ``ProtocolError``) and the
  connection keeps serving;
* a line longer than ``max_request_bytes`` is discarded through its
  terminating newline via a bounded read — server memory is never held
  hostage by one runaway line — and answered with
  ``RequestTooLargeError``;
* a client disconnecting cancels that connection's pending requests
  (results nobody can receive) without touching other connections or
  the shared host;
* :meth:`aclose` stops intake, lets every accepted request finish and
  flush its response, then closes the connections — with the host
  closed afterwards, ``live_pool_count()`` returns to baseline.

The determinism contract is inherited unchanged: any interleaving of
socket clients receives, for every request, results bitwise identical
to the sequential :class:`~repro.host.registry.DCCHost` baseline —
property-tested over real sockets in ``tests/test_server.py``.
"""

import asyncio
import json

from repro.utils.errors import ProtocolError, RequestTooLargeError

# Upper bound on one request line, in bytes.  Far above any legitimate
# search spec (a few hundred bytes) while keeping the per-connection
# read buffer small; ``repro serve --port`` exposes it indirectly by
# answering oversized lines with a typed error.
DEFAULT_MAX_REQUEST_BYTES = 1 << 20

# Loopback by default: the tier has no auth story yet, so not binding
# beyond the machine is the safe default (document, don't surprise).
DEFAULT_BIND = "127.0.0.1"


def format_response(number, request_id, result=None, error=None):
    """One JSON-lines response object (``ok`` plus payload or error).

    Shared by the stdio loop (``repro serve``) and the socket server so
    both transports answer byte-identically for the same outcome.
    """
    response = {"seq": number}
    if request_id is not None:
        response["id"] = request_id
    if error is not None:
        response["ok"] = False
        response["error"] = str(error)
        response["error_type"] = type(error).__name__
        return response
    response["ok"] = True
    response["algorithm"] = result.algorithm
    response["sets"] = [sorted(members, key=repr) for members in result.sets]
    response["labels"] = [list(label) if label is not None else None
                          for label in result.labels]
    response["cover"] = result.cover_size
    response["elapsed_s"] = round(result.elapsed, 6)
    return response


def parse_update_edges(entry, field):
    """The ``add``/``remove`` edge list of an update op, as tuples.

    JSON has no tuples, so edges arrive as ``[layer, u, v]`` arrays;
    anything else on the wire is a :class:`ProtocolError`, answered on
    the request's own line.  Shared by both transports (``repro
    serve``'s stdio loop and the socket server) so a malformed update
    fails identically on either.
    """
    edges = entry.get(field) or []
    if not isinstance(edges, list):
        raise ProtocolError(
            "update {!r} must be a list of [layer, u, v] triples, got "
            "{!r}".format(field, edges)
        )
    parsed = []
    for edge in edges:
        if not isinstance(edge, list) or len(edge) != 3:
            raise ProtocolError(
                "update {!r} entries must be [layer, u, v] triples, got "
                "{!r}".format(field, edge)
            )
        layer, u, v = edge
        parsed.append((layer, u, v))
    return tuple(parsed)


def serving_stats(host, server=None):
    """The ``stats`` protocol payload: serving metrics, JSON-safe.

    ``host`` is the :class:`AsyncDCCHost`; ``server`` the optional
    :class:`DCCServer` wrapping it (the stdio loop has none).  The
    ``serving`` section is exactly ``host.info()`` — the agreement
    ``repro info`` is tested against — plus a ``kernels`` section
    (numpy availability/version and each resident engine's active peel
    tier) and a ``server`` section of connection-level counters when a
    socket server is in front.
    """
    from repro.graph.kernels import numpy_available, numpy_version

    info = host.info()
    payload = {
        "serving": info,
        "kernels": {
            "numpy_available": numpy_available(),
            "numpy_version": numpy_version(),
            "engines": {
                name: status.get("kernel")
                for name, status in info["host"]["engines"].items()
            },
        },
        # Per-graph shard picture (resident sharded sessions only):
        # shard count, per-shard sizes/halo widths and merge counters,
        # so shard skew is observable from the wire.
        "shards": {
            name: status["shards"]
            for name, status in info["host"]["engines"].items()
            if "shards" in status
        },
    }
    if server is not None:
        payload["server"] = server.counters()
    return payload


async def _discard_line(reader):
    """Consume input through the next newline after an oversized read.

    ``readuntil`` leaves the offending bytes buffered; they are drained
    in bounded chunks (``LimitOverrunError.consumed`` bytes are known
    not to contain the separator) until the newline goes by, so the
    next read starts exactly at the next request.
    """
    while True:
        try:
            await reader.readuntil(b"\n")
            return True
        except asyncio.LimitOverrunError as overrun:
            if overrun.consumed:
                await reader.readexactly(overrun.consumed)
            elif not await reader.read(1):
                return False
        except asyncio.IncompleteReadError:
            return False


class _Connection:
    """One live client connection: its writer, tasks and counters."""

    __slots__ = ("writer", "tasks", "seq", "write_lock", "gone")

    def __init__(self, writer):
        self.writer = writer
        self.tasks = set()
        self.seq = 0
        self.write_lock = asyncio.Lock()
        self.gone = False

    async def send(self, payload):
        """Write one response line; quietly drop it if the peer left."""
        if self.gone:
            return
        data = (json.dumps(payload) + "\n").encode("utf-8")
        try:
            async with self.write_lock:
                self.writer.write(data)
                await self.writer.drain()
        except (ConnectionError, RuntimeError):
            self.gone = True


class DCCServer:
    """A JSON-lines socket front-end over one :class:`AsyncDCCHost`.

    Parameters
    ----------
    host:
        The :class:`AsyncDCCHost` to serve through.  The server never
        closes it — lifecycle stays with whoever built it, so one host
        can outlive (or sit behind) several server incarnations::

            async with AsyncDCCHost(jobs=2) as ahost:
                ahost.attach("wiki", graph)
                async with DCCServer(ahost, port=0) as server:
                    ...  # clients connect to server.port
    port:
        TCP port to bind; ``0`` (default) picks a free one — read it
        back from :attr:`port`.
    bind:
        Interface to bind (default loopback).
    max_request_bytes:
        Per-line size bound; longer lines are rejected, not buffered.
    """

    def __init__(self, host, port=0, bind=DEFAULT_BIND,
                 max_request_bytes=DEFAULT_MAX_REQUEST_BYTES):
        self._ahost = host
        self._requested_port = port
        self._bind = bind
        self.max_request_bytes = max_request_bytes
        self._server = None
        self._port = None
        self._connections = set()
        self._closing = False
        self.connections_accepted = 0
        self.requests_received = 0
        self.responses_ok = 0
        self.responses_failed = 0
        self.requests_malformed = 0
        self.requests_oversized = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self):
        """Bind and start accepting connections; returns ``self``."""
        if self._server is not None:
            raise ProtocolError("this DCCServer has already been started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._bind, self._requested_port,
            limit=self.max_request_bytes,
        )
        self._port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def port(self):
        """The actually-bound TCP port (resolves ``port=0``)."""
        return self._port

    @property
    def address(self):
        """``(bind, port)`` of the listening socket."""
        return (self._bind, self.port)

    async def serve_forever(self):
        """Block serving until cancelled (the CLI's foreground mode)."""
        await self._server.serve_forever()

    async def aclose(self):
        """Stop intake, drain accepted requests, close every connection.

        New connections are refused immediately; every request already
        read off a socket completes and its response is flushed before
        the connection closes.  The underlying host is *not* closed —
        that remains its owner's job (closing it afterwards returns
        ``live_pool_count()`` to baseline).  Idempotent.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Cancelling a connection's reader wakes it out of readuntil;
        # with _closing set, the handler drains instead of cancelling
        # its in-flight request tasks.
        for connection in list(self._connections):
            for task in connection.tasks:
                if getattr(task, "_dcc_reader", False):
                    task.cancel()
        while self._connections:
            connection = next(iter(self._connections))
            await self._drain_connection(connection)

    async def __aenter__(self):
        if self._server is None:
            await self.start()
        return self

    async def __aexit__(self, *exc):
        await self.aclose()
        return False

    # ------------------------------------------------------------------
    # per-connection machinery
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader, writer):
        connection = _Connection(writer)
        self._connections.add(connection)
        self.connections_accepted += 1
        reader_task = asyncio.ensure_future(
            self._read_requests(connection, reader)
        )
        reader_task._dcc_reader = True
        connection.tasks.add(reader_task)
        try:
            try:
                await reader_task
                drain = self._closing
            except asyncio.CancelledError:
                drain = True
            connection.tasks.discard(reader_task)
            pending = [task for task in connection.tasks if not task.done()]
            if not drain:
                # The client is gone: nobody can receive the pending
                # answers, so cancel rather than compute into the void.
                # Cancelling the waiter never cancels engine-side work a
                # coalesced sibling may be attached to.
                for task in pending:
                    task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        finally:
            self._connections.discard(connection)
            connection.gone = True
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _drain_connection(self, connection):
        """aclose()'s half: wait out one connection's accepted work."""
        pending = [task for task in connection.tasks if not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        # The handler's finally block removes the connection; losing the
        # race to it is fine — discard is idempotent.
        self._connections.discard(connection)

    async def _read_requests(self, connection, reader):
        """One connection's intake loop: read lines, spawn answer tasks."""
        while not self._closing:
            try:
                line = await reader.readuntil(b"\n")
            except asyncio.IncompleteReadError as eof:
                line = eof.partial
                if not line:
                    return  # clean EOF
            except asyncio.LimitOverrunError:
                # Oversized line: bounded-read rejection.  Discard
                # through the newline, answer on this line's slot, keep
                # the connection.
                connection.seq += 1
                self.requests_received += 1
                self.requests_oversized += 1
                self.responses_failed += 1
                await connection.send(format_response(
                    connection.seq, None,
                    error=RequestTooLargeError(self.max_request_bytes),
                ))
                if not await _discard_line(reader):
                    return
                continue
            except (ConnectionError, OSError):
                return
            line = line.strip()
            if not line:
                continue
            connection.seq += 1
            self.requests_received += 1
            try:
                entry = json.loads(line.decode("utf-8", errors="replace"))
                if not isinstance(entry, dict):
                    raise ProtocolError(
                        "request must be a JSON object, got {!r}".format(
                            type(entry).__name__
                        )
                    )
            except ValueError as error:
                self.requests_malformed += 1
                self.responses_failed += 1
                await connection.send(format_response(
                    connection.seq, None, error=error,
                ))
                continue
            task = asyncio.ensure_future(
                self._answer(connection, connection.seq, entry)
            )
            connection.tasks.add(task)
            task.add_done_callback(connection.tasks.discard)

    async def _answer(self, connection, seq, entry):
        """Serve one request object and write its response line."""
        request_id = entry.pop("id", None)
        try:
            if entry.get("op") == "stats":
                payload = {"seq": seq, "ok": True,
                           "stats": serving_stats(self._ahost, self)}
                if request_id is not None:
                    payload["id"] = request_id
                self.responses_ok += 1
                await connection.send(payload)
                return
            if entry.get("op") == "update":
                name = entry.get("graph")
                if not isinstance(name, str) or not name:
                    raise ProtocolError(
                        "update op needs a \"graph\" key naming an "
                        "attached graph"
                    )
                add = parse_update_edges(entry, "add")
                remove = parse_update_edges(entry, "remove")
                if not add and not remove:
                    raise ProtocolError(
                        "update op needs a non-empty \"add\" and/or "
                        "\"remove\" edge list"
                    )
                receipt = await self._ahost.update(name, add=add,
                                                   remove=remove)
                payload = {"seq": seq, "ok": True, "update": receipt}
                if request_id is not None:
                    payload["id"] = request_id
                self.responses_ok += 1
                await connection.send(payload)
                return
            if "op" in entry:
                raise ProtocolError(
                    "unknown op {!r} (supported: \"stats\", "
                    "\"update\")".format(entry["op"])
                )
            try:
                name = entry.pop("graph")
                d = entry.pop("d")
                s = entry.pop("s")
                k = entry.pop("k")
            except KeyError as missing:
                raise ProtocolError(
                    "request is missing required key {}".format(missing)
                ) from None
            method = entry.pop("method", "auto")
            result = await self._ahost.search(name, d, s, k, method=method,
                                              **entry)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            self.responses_failed += 1
            await connection.send(format_response(seq, request_id,
                                                  error=error))
        else:
            self.responses_ok += 1
            await connection.send(format_response(seq, request_id,
                                                  result=result))

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    def counters(self):
        """Connection/request counters for the ``stats`` payload."""
        return {
            "bind": self._bind,
            "port": self.port,
            "max_request_bytes": self.max_request_bytes,
            "connections_accepted": self.connections_accepted,
            "connections_open": len(self._connections),
            "requests_received": self.requests_received,
            "responses_ok": self.responses_ok,
            "responses_failed": self.responses_failed,
            "requests_malformed": self.requests_malformed,
            "requests_oversized": self.requests_oversized,
            "closing": self._closing,
        }
