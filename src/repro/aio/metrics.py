"""Per-request latency metrics for the serving tier.

Overload behaviour should be observable, not anecdotal: alongside the
exact counters (queue depth, coalesce/cache hits) the serving layer
records every answered request's service latency — accept to resolve —
into a bounded window and reports nearest-rank percentiles through
``info()``, the ``stats`` protocol message and ``repro info``.

The recorder takes its timestamps from the owning host's injectable
clock, so the metrics tests assert *exact* percentile values on a
scripted workload instead of smoke-testing "some positive number came
out" (see ``tests/test_server.py``).
"""

# How many recent latencies the percentile window holds.  Totals and
# maxima are exact over the recorder's whole lifetime; percentiles are
# over this sliding window, which is the operationally useful view (the
# p99 of last week's traffic tells you nothing about the overload
# happening now).
DEFAULT_LATENCY_WINDOW = 1024

# The percentiles info()/stats payloads report.
REPORTED_PERCENTILES = (50, 90, 99)


class LatencyRecorder:
    """Bounded-window latency sample with nearest-rank percentiles."""

    def __init__(self, window=DEFAULT_LATENCY_WINDOW):
        self.window = window
        self._recent = []
        self._next = 0  # ring-buffer write position once the window fills
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds):
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if len(self._recent) < self.window:
            self._recent.append(seconds)
        else:
            self._recent[self._next] = seconds
            self._next = (self._next + 1) % self.window

    def percentile(self, q):
        """Nearest-rank percentile over the window; ``None`` when empty.

        ``sorted(window)[ceil(q/100 * n) - 1]`` — the smallest recorded
        latency with at least ``q`` percent of the window at or below
        it.  Exact on small samples, which is what makes it assertable.
        """
        if not self._recent:
            return None
        ordered = sorted(self._recent)
        rank = -(-q * len(ordered) // 100)  # ceil without floats
        return ordered[max(rank, 1) - 1]

    def snapshot(self):
        """The dict ``info()`` and the ``stats`` protocol op embed."""
        payload = {
            "count": self.count,
            "total_s": self.total,
            "max_s": self.max,
            "mean_s": self.total / self.count if self.count else None,
            "window": self.window,
            "window_fill": len(self._recent),
        }
        for q in REPORTED_PERCENTILES:
            payload["p{}_s".format(q)] = self.percentile(q)
        return payload
