"""Command-line interface: ``repro-dccs`` (or ``python -m repro``).

Subcommands
-----------
``info``
    Print statistics of a graph file or a named stand-in dataset, plus
    the engine/pool configuration a search session would use.
``search``
    Run DCCS on a graph and print the reported d-CCs.
``batch``
    Run a JSON file of queries through one persistent
    :class:`~repro.engine.DCCEngine` (pool spawned once, artifacts
    shared across the batch).
``host``
    Run a JSON batch spec spanning *several* graphs through one
    :class:`~repro.host.DCCHost` — named engine sessions admitted
    lazily under a resident-engine cap and optional memory budget.
``serve``
    Serve search requests interactively: the spec file declares the
    graphs, then JSON-lines requests flow through an
    :class:`~repro.aio.AsyncDCCHost` (concurrent in-flight requests,
    duplicate coalescing, a cross-time result cache, bounded-queue
    backpressure).  By default the transport is stdin/stdout; with
    ``--port`` a :class:`~repro.aio.DCCServer` accepts many concurrent
    socket connections over the same host.
``datasets``
    Print the Fig. 12 stand-in/paper statistics table.
``figure``
    Reproduce one of the paper's figures by number.

Graph arguments accept a stand-in dataset name, ``figure1`` (the paper's
quickstart example graph), a ``.json`` graph file or a layered edge-list
file.
"""

import argparse
import json
import sys

from repro.core.api import search_dccs
from repro.datasets import DATASET_NAMES, load
from repro.experiments import (
    figure12_table,
    figure13_table,
    figure29,
    figure30,
    figure30_table,
    figure31,
    figure32,
    format_series,
    format_table,
    preprocessing_ablation,
    vary_d,
    vary_k,
    vary_large_s,
    vary_p,
    vary_q,
    vary_small_s,
)
from repro.graph.io import read_edge_list, read_json


def _load_graph(source, scale, seed):
    """A dataset name, ``figure1``, a ``.json`` file or an edge-list file."""
    if source == "figure1":
        from repro.graph import paper_figure1_graph

        return paper_figure1_graph()
    if source in DATASET_NAMES:
        return load(source, scale=scale, seed=seed).graph
    if source.endswith(".json"):
        return read_json(source)
    return read_edge_list(source)


def _cmd_info(args):
    graph = _load_graph(args.graph, args.scale, args.seed)
    if args.backend == "frozen":
        graph = graph.freeze()
        if args.kernel != "auto":
            graph.set_kernel(args.kernel)
    summary = graph.summary()
    for key, value in summary.items():
        print("{}: {}".format(key, value))
    print("representation: {}".format(
        "frozen-csr" if graph.is_frozen else "dict-of-sets"
    ))
    # The peel-kernel picture: which tier this invocation would execute
    # with, and whether the numpy tier is available at all (install the
    # "fast" extra to light it up).
    from repro.graph import numpy_available, numpy_version, resolve_kernel

    print("kernel_requested: {}".format(args.kernel))
    print("kernel_resolved: {}".format(resolve_kernel(args.kernel)))
    print("numpy_available: {}".format(numpy_available()))
    print("numpy_version: {}".format(numpy_version()))
    print("memory_estimate_bytes: {}".format(graph.memory_bytes()))
    print("per_layer_edges: {}".format(", ".join(
        str(graph.num_edges(layer)) for layer in graph.layers()
    )))
    # What `search --jobs 0` would actually use on this machine.  The
    # parallel subsystem is imported lazily, mirroring core/api.py:
    # sequential commands never pay for the multiprocessing plumbing.
    from repro.parallel import effective_jobs

    print("parallel_workers_effective: {}".format(effective_jobs(0)))
    # The session a `repro batch` (or a library DCCEngine) over this
    # graph would start from.  Constructing the engine is free — the
    # pool spawns lazily and the cache starts empty — and the backend is
    # pinned to the representation reported above, so no conversion is
    # paid just to print status.
    from repro.engine import DCCEngine

    with DCCEngine(
        graph, backend="frozen" if graph.is_frozen else "dict", jobs=0,
        kernel=args.kernel,
    ) as engine:
        status = engine.info()
    print("engine_kernel: {}".format(status["kernel"]))
    print("engine_workers: {}".format(status["workers"]))
    print("engine_pool_spawned: {}".format(status["pool_spawned"]))
    print("engine_cache_enabled: {}".format(status["cache_enabled"]))
    print("engine_cache_entries: {}".format(status["cache_entries"]))
    # Streaming-update picture: how rebinds after graph mutations split
    # between CSR patching and full rebuilds, and what the selective
    # cache invalidation kept.  All zero here (the info engine never
    # mutates) — printed so the counter surface is discoverable.
    print("engine_rebinds_patched: {}".format(status["rebinds_patched"]))
    print("engine_rebinds_full: {}".format(status["rebinds_full"]))
    print("engine_cache_invalidations_kept: {}".format(
        status["cache_invalidations_kept"]
    ))
    print("engine_cache_invalidations_dropped: {}".format(
        status["cache_invalidations_dropped"]
    ))
    if args.shards is not None and args.shards > 1:
        # The shard picture a `--shards N` session over this graph would
        # serve with: per-shard sizes and halo widths (shard skew), and
        # the per-shard admission charge versus the honest total.
        from repro.shard import ShardedEngine

        with ShardedEngine(graph, shards=args.shards, jobs=0) as sharded:
            shard_status = sharded.info()["shards"]
        print("shards: {}".format(shard_status["shards"]))
        print("shards_strategy: {}".format(shard_status["strategy"]))
        print("shards_budget_bytes: {}".format(
            shard_status["budget_bytes"]
        ))
        for entry in shard_status["per_shard"]:
            print(
                "shard[{}]: {} vertices, {} halo, {} bytes, layers "
                "{}".format(
                    entry["index"], entry["vertices"],
                    entry["halo_vertices"], entry["memory_bytes"],
                    ",".join(str(layer) for layer in entry["layers"]),
                )
            )
    # The hosting layer a `repro host` run would place this graph in:
    # admit one (cheap — the pool stays unspawned) and report the
    # admission-control picture.
    from repro.host import DCCHost

    with DCCHost() as host:
        host.attach("info", graph,
                    backend="frozen" if graph.is_frozen else "dict")
        host.engine("info")
        host_status = host.info()
    print("host_max_engines: {}".format(host_status["max_engines"]))
    print("host_resident_engines: {}".format(
        len(host_status["resident_engines"])
    ))
    print("host_memory_bytes: {}".format(host_status["memory_bytes"]))
    print("host_cache_max_entries: {}".format(
        host_status["cache_max_entries"]
    ))
    # The serving tier a `repro serve` run would put in front of that
    # host.  Constructing the async façade is free (no queue or
    # dispatcher exists until traffic), and these lines are printed from
    # the same info() payload the serving protocol's `stats` op reports,
    # so the two surfaces cannot drift apart.
    import asyncio

    from repro.aio import AsyncDCCHost, serving_stats

    async def _serving_info():
        async with AsyncDCCHost() as ahost:
            return serving_stats(ahost)["serving"]

    serving = asyncio.run(_serving_info())
    print("serve_max_pending: {}".format(serving["max_pending"]))
    print("serve_coalescing: {}".format(serving["coalescing"]))
    print("serve_result_cache_entries: {}".format(
        serving["result_cache"]["max_entries"]
    ))
    print("serve_result_cache_ttl: {}".format(
        serving["result_cache"]["ttl"]
    ))
    print("serve_latency_window: {}".format(serving["latency"]["window"]))
    print("serve_updates_applied: {}".format(serving["updates_applied"]))
    print("serve_update_edges_applied: {}".format(
        serving["update_edges_applied"]
    ))
    return 0


def _cmd_search(args):
    graph = _load_graph(args.graph, args.scale, args.seed)
    result = search_dccs(
        graph, args.d, args.s, args.k, method=args.method,
        backend=args.backend, seed=args.seed, jobs=args.jobs,
        kernel=args.kernel, shards=args.shards,
    )
    if args.shards is not None and args.shards > 1:
        print("sharded: {} vertex-range shards (results identical to "
              "--shards 1)".format(args.shards))
    if args.jobs is not None:
        from repro.parallel import effective_jobs

        # The pool is additionally capped by the shard count of the
        # chosen method, so this is a ceiling, not a measurement.
        print("parallel: requested jobs={}, worker cap {}".format(
            args.jobs, effective_jobs(args.jobs)
        ))
    print(
        "{}: {} d-CCs, cover {} vertices, {:.3f}s, {} dCC computations".format(
            result.algorithm, len(result.sets), result.cover_size,
            result.elapsed, result.stats.dcc_calls,
        )
    )
    for label, members in zip(result.labels, result.sets):
        shown = ", ".join(str(v) for v in sorted(members, key=str)[:12])
        suffix = ", ..." if len(members) > 12 else ""
        print("  layers {} | {} vertices: {}{}".format(
            label, len(members), shown, suffix
        ))
    return 0


def _cmd_batch(args):
    """Serve a JSON batch of queries from one persistent engine."""
    from repro.engine import DCCEngine
    from repro.utils.errors import GraphError
    from repro.utils.timer import Timer

    graph = _load_graph(args.graph, args.scale, args.seed)
    with open(args.queries) as handle:
        payload = json.load(handle)
    queries = payload.get("queries") if isinstance(payload, dict) \
        else payload
    if not isinstance(queries, list) or not queries:
        print("{}: expected a non-empty JSON list of queries (or an "
              "object with a \"queries\" list)".format(args.queries),
              file=sys.stderr)
        return 2
    for number, entry in enumerate(queries, 1):
        if not isinstance(entry, dict):
            print("{}: query {} is not a JSON object: {!r}".format(
                args.queries, number, entry), file=sys.stderr)
            return 2
    try:
        with Timer() as total:
            if args.shards is not None and args.shards > 1:
                from repro.shard import ShardedEngine

                session = ShardedEngine(graph, shards=args.shards,
                                        backend=args.backend,
                                        jobs=args.jobs, kernel=args.kernel)
            else:
                session = DCCEngine(graph, backend=args.backend,
                                    jobs=args.jobs, kernel=args.kernel)
            with session as engine:
                engine.warm()
                results = engine.search_many(queries)
                status = engine.info()
    except GraphError as error:
        print("batch failed: {}".format(error), file=sys.stderr)
        return 2
    for number, (spec, result) in enumerate(zip(queries, results), 1):
        print(
            "[{}] {}: d={} s={} k={} -> {} d-CCs, cover {} vertices, "
            "{:.3f}s".format(
                number, result.algorithm, spec["d"], spec["s"], spec["k"],
                len(result.sets), result.cover_size, result.elapsed,
            )
        )
    print(
        "batch: {} queries in {:.3f}s | pool: {} worker(s), spawned={} | "
        "cache: {} entries, {} hits / {} lookups".format(
            len(results), total.elapsed, status["workers"],
            status["pool_spawned"], status["cache_entries"],
            status["cache_hits"],
            status["cache_hits"] + status["cache_misses"],
        )
    )
    if "shards" in status:
        shard_status = status["shards"]
        print(
            "shards: {} ({}) | merges {} | peel rounds {} | largest "
            "shard {} bytes".format(
                shard_status["shards"], shard_status["strategy"],
                shard_status["merges"], shard_status["peel_rounds"],
                shard_status["budget_bytes"],
            )
        )
    return 0


def _cmd_host(args):
    """Serve a multi-graph JSON batch spec from one DCCHost."""
    from repro.host import DCCHost, parse_host_spec
    from repro.utils.errors import GraphError
    from repro.utils.timer import Timer

    with open(args.spec) as handle:
        payload = json.load(handle)
    try:
        graphs, queries, settings = parse_host_spec(payload)
    except GraphError as error:
        print("{}: {}".format(args.spec, error), file=sys.stderr)
        return 2
    # Command-line flags beat spec-file settings beat host defaults.
    max_engines = args.max_engines if args.max_engines is not None \
        else settings.get("max_engines")
    budget = args.memory_budget if args.memory_budget is not None \
        else settings.get("memory_budget_bytes")
    kernel = args.kernel if args.kernel != "auto" \
        else settings.get("kernel", "auto")
    shards = args.shards if args.shards is not None \
        else settings.get("shards")
    host_options = {"jobs": args.jobs, "backend": args.backend,
                    "kernel": kernel}
    if max_engines is not None:
        host_options["max_engines"] = max_engines
    if budget is not None:
        host_options["memory_budget_bytes"] = budget
    if shards is not None:
        host_options["shards"] = shards
    try:
        with Timer() as total:
            with DCCHost(**host_options) as host:
                for name, source in graphs.items():
                    host.attach(
                        name, _load_graph(source, args.scale, args.seed)
                    )
                # Updates are sequence barriers: searches up to each one
                # run as one pipelined search_many segment against the
                # pre-update graph, then the mutation applies atomically
                # and the next segment sees the new version.
                results = []
                segment = []

                def flush():
                    if segment:
                        results.extend(host.search_many(segment))
                        del segment[:]

                for entry in queries:
                    if entry.get("op") != "update":
                        segment.append(entry)
                        continue
                    flush()
                    target = host.graph(entry["graph"])
                    delta = target.apply_delta(
                        add=entry.get("add") or (),
                        remove=entry.get("remove") or (),
                    )
                    results.append((delta, target.mutation_version))
                flush()
                status = host.info()
    except GraphError as error:
        print("host run failed: {}".format(error), file=sys.stderr)
        return 2
    for number, (spec, result) in enumerate(zip(queries, results), 1):
        if spec.get("op") == "update":
            delta, version = result
            print(
                "[{}] {}: update applied {} edge(s) -> version "
                "{}".format(
                    number, spec["graph"],
                    0 if delta is None else delta.edge_count, version,
                )
            )
            continue
        print(
            "[{}] {}: {} d={} s={} k={} -> {} d-CCs, cover {} vertices, "
            "{:.3f}s".format(
                number, spec["graph"], result.algorithm, spec["d"],
                spec["s"], spec["k"], len(result.sets), result.cover_size,
                result.elapsed,
            )
        )
    print(
        "host: {} queries over {} graphs in {:.3f}s | engines: {} "
        "resident / {} max, {} admitted, {} evicted | memory: {} bytes"
        "{}".format(
            len(results), len(graphs), total.elapsed,
            len(status["resident_engines"]), status["max_engines"],
            status["admissions"], status["evictions"],
            status["memory_bytes"],
            " (budget {})".format(status["memory_budget_bytes"])
            if status["memory_budget_bytes"] is not None else "",
        )
    )
    return 0


def _serve_host_options(args, settings):
    """Resolve serve-mode host/async options (flags beat spec settings)."""
    kernel = args.kernel if args.kernel != "auto" \
        else settings.get("kernel", "auto")
    host_options = {"jobs": args.jobs, "backend": args.backend,
                    "kernel": kernel}
    shards = args.shards if args.shards is not None \
        else settings.get("shards")
    if shards is not None:
        host_options["shards"] = shards
    max_engines = args.max_engines if args.max_engines is not None \
        else settings.get("max_engines")
    if max_engines is not None:
        host_options["max_engines"] = max_engines
    if settings.get("memory_budget_bytes") is not None:
        host_options["memory_budget_bytes"] = settings["memory_budget_bytes"]
    max_pending = args.max_pending if args.max_pending is not None \
        else settings.get("max_pending")
    async_options = {}
    if max_pending is not None:
        async_options["max_pending"] = max_pending
    if args.no_result_cache:
        async_options["cache_results"] = False
    else:
        entries = args.result_cache_entries \
            if args.result_cache_entries is not None \
            else settings.get("result_cache_entries")
        if entries is not None:
            async_options["result_cache_entries"] = entries
        ttl = args.result_cache_ttl if args.result_cache_ttl is not None \
            else settings.get("result_cache_ttl")
        if ttl is not None:
            async_options["result_cache_ttl"] = ttl
    return host_options, async_options


def _cmd_serve(args):
    """Serve JSON-lines search requests over an AsyncDCCHost.

    Each request line is one JSON object — a search spec
    (``graph``/``d``/``s``/``k`` plus options) with an optional ``id``
    echoed back, ``{"op": "stats"}`` for the serving metrics, or
    ``{"op": "update", "graph": ..., "add"/"remove": [[layer, u, v],
    ...]}`` to mutate an attached graph in place (one atomic batch;
    later requests answer against the new graph).
    Requests are submitted concurrently as they arrive, so duplicates
    coalesce, repeats hit the cross-time result cache and per-graph
    batches pipeline; responses are written as they complete (use
    ``id``/``seq`` to correlate — completion order is not arrival
    order).

    Without ``--port`` the transport is stdin/stdout: EOF drains
    in-flight work and exits, and a summary goes to stderr.  With
    ``--port`` a socket server (``repro.aio.DCCServer``) accepts many
    concurrent client connections over the same host until SIGINT/
    SIGTERM, which drains accepted work and shuts down.
    """
    import asyncio

    from repro.aio import AsyncDCCHost, format_response, serving_stats
    from repro.host import parse_host_spec
    from repro.utils.errors import GraphError

    with open(args.spec) as handle:
        payload = json.load(handle)
    try:
        graphs, preload, settings = parse_host_spec(payload,
                                                    require_queries=False)
    except GraphError as error:
        print("{}: {}".format(args.spec, error), file=sys.stderr)
        return 2
    host_options, async_options = _serve_host_options(args, settings)

    async def serve_socket():
        import signal

        from repro.aio import DCCServer

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platform without loop signal handlers
        async with AsyncDCCHost(**host_options, **async_options) as host:
            for name, source in graphs.items():
                host.attach(name, _load_graph(source, args.scale, args.seed))
            if preload:
                await host.search_many(preload)  # warm the result cache
            async with DCCServer(host, port=args.port,
                                 bind=args.bind) as server:
                print("serving on {}:{} ({} graph(s))".format(
                    args.bind, server.port, len(graphs)), file=sys.stderr,
                    flush=True)
                await stop.wait()
                print("shutting down: draining accepted requests",
                      file=sys.stderr)
            status = server.counters()
        print(
            "serve: {} ok, {} failed over {} connection(s)".format(
                status["responses_ok"], status["responses_failed"],
                status["connections_accepted"],
            ),
            file=sys.stderr,
        )
        return 0

    async def serve_stdio():
        loop = asyncio.get_running_loop()
        tasks = set()
        served = [0, 0]  # ok, failed

        def emit(response):
            print(json.dumps(response), flush=True)

        async def answer(number, entry):
            request_id = entry.pop("id", None)
            try:
                if entry.get("op") == "stats":
                    payload = {"seq": number, "ok": True,
                               "stats": serving_stats(host)}
                    if request_id is not None:
                        payload["id"] = request_id
                    served[0] += 1
                    emit(payload)
                    return
                if entry.get("op") == "update":
                    from repro.aio import parse_update_edges
                    from repro.utils.errors import ProtocolError

                    name = entry.get("graph")
                    if not isinstance(name, str) or not name:
                        raise ProtocolError(
                            "update op needs a \"graph\" key naming an "
                            "attached graph"
                        )
                    add = parse_update_edges(entry, "add")
                    remove = parse_update_edges(entry, "remove")
                    if not add and not remove:
                        raise ProtocolError(
                            "update op needs a non-empty \"add\" and/or "
                            "\"remove\" edge list"
                        )
                    receipt = await host.update(name, add=add,
                                                remove=remove)
                    payload = {"seq": number, "ok": True,
                               "update": receipt}
                    if request_id is not None:
                        payload["id"] = request_id
                    served[0] += 1
                    emit(payload)
                    return
                name = entry.pop("graph")
                d = entry.pop("d")
                s = entry.pop("s")
                k = entry.pop("k")
                method = entry.pop("method", "auto")
                result = await host.search(name, d, s, k, method=method,
                                           **entry)
            except Exception as error:
                served[1] += 1
                emit(format_response(number, request_id, error=error))
            else:
                served[0] += 1
                emit(format_response(number, request_id, result=result))

        async with AsyncDCCHost(**host_options, **async_options) as host:
            for name, source in graphs.items():
                host.attach(name, _load_graph(source, args.scale, args.seed))
            # Any queries preloaded in the spec file are served first,
            # concurrently, exactly like stdin requests.
            number = 0
            for entry in preload:
                number += 1
                tasks.add(asyncio.ensure_future(answer(number, dict(entry))))
            while True:
                line = await loop.run_in_executor(None, sys.stdin.readline)
                if not line:
                    break  # EOF: drain and exit
                line = line.strip()
                if not line:
                    continue
                number += 1
                try:
                    entry = json.loads(line)
                    if not isinstance(entry, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as error:
                    served[1] += 1
                    emit(format_response(number, None, error=error))
                    continue
                tasks.add(asyncio.ensure_future(answer(number, entry)))
                tasks = {task for task in tasks if not task.done()}
            if tasks:
                await asyncio.gather(*tasks)
            status = host.info()
        print(
            "serve: {} ok, {} failed over {} graphs | coalesced {}, "
            "cached {} | engines admitted {}, evicted {}".format(
                served[0], served[1], len(graphs),
                status["requests_coalesced"], status["requests_cached"],
                status["host"]["admissions"], status["host"]["evictions"],
            ),
            file=sys.stderr,
        )
        return 0

    if args.port is not None:
        return asyncio.run(serve_socket())
    return asyncio.run(serve_stdio())


def _cmd_datasets(args):
    print(figure12_table(scale=args.scale, seed=args.seed))
    print()
    print(figure13_table())
    return 0


_FIGURES = {}


def _figure(number):
    def register(fn):
        _FIGURES[number] = fn
        return fn
    return register


@_figure(14)
def _fig14(args):
    rows = []
    for name in ("english", "stack"):
        rows += vary_small_s(name, scale=args.scale, seed=args.seed)
    return format_series(rows, "s", "time_s", title="Fig. 14 — time vs small s")


@_figure(15)
def _fig15(args):
    rows = []
    for name in ("english", "stack"):
        rows += vary_large_s(name, scale=args.scale, seed=args.seed)
    return format_series(rows, "s", "time_s", title="Fig. 15 — time vs large s")


@_figure(16)
def _fig16(args):
    rows = []
    for name in ("english", "stack"):
        rows += vary_small_s(name, scale=args.scale, seed=args.seed)
    return format_series(rows, "s", "cover", title="Fig. 16 — cover vs small s")


@_figure(17)
def _fig17(args):
    rows = []
    for name in ("english", "stack"):
        rows += vary_large_s(name, scale=args.scale, seed=args.seed)
    return format_series(rows, "s", "cover", title="Fig. 17 — cover vs large s")


@_figure(18)
def _fig18(args):
    rows = []
    for name in ("german", "english"):
        rows += vary_d(name, large_s=False, scale=args.scale, seed=args.seed)
    return format_series(rows, "d", "time_s",
                         title="Fig. 18 — time vs d (small s)")


@_figure(19)
def _fig19(args):
    rows = []
    for name in ("german", "english"):
        rows += vary_d(name, large_s=True, scale=args.scale, seed=args.seed)
    return format_series(rows, "d", "time_s",
                         title="Fig. 19 — time vs d (large s)")


@_figure(20)
def _fig20(args):
    rows = []
    for name in ("german", "english"):
        rows += vary_d(name, large_s=False, scale=args.scale, seed=args.seed)
    return format_series(rows, "d", "cover",
                         title="Fig. 20 — cover vs d (small s)")


@_figure(21)
def _fig21(args):
    rows = []
    for name in ("german", "english"):
        rows += vary_d(name, large_s=True, scale=args.scale, seed=args.seed)
    return format_series(rows, "d", "cover",
                         title="Fig. 21 — cover vs d (large s)")


@_figure(22)
def _fig22(args):
    rows = []
    for name in ("wiki", "english"):
        rows += vary_k(name, large_s=False, scale=args.scale, seed=args.seed)
    return format_series(rows, "k", "time_s",
                         title="Fig. 22 — time vs k (small s)")


@_figure(23)
def _fig23(args):
    rows = []
    for name in ("wiki", "english"):
        rows += vary_k(name, large_s=True, scale=args.scale, seed=args.seed)
    return format_series(rows, "k", "time_s",
                         title="Fig. 23 — time vs k (large s)")


@_figure(24)
def _fig24(args):
    rows = []
    for name in ("wiki", "english"):
        rows += vary_k(name, large_s=False, scale=args.scale, seed=args.seed)
    return format_series(rows, "k", "cover",
                         title="Fig. 24 — cover vs k (small s)")


@_figure(25)
def _fig25(args):
    rows = []
    for name in ("wiki", "english"):
        rows += vary_k(name, large_s=True, scale=args.scale, seed=args.seed)
    return format_series(rows, "k", "cover",
                         title="Fig. 25 — cover vs k (large s)")


@_figure(26)
def _fig26(args):
    rows = vary_p("stack", scale=args.scale, seed=args.seed)
    rows += vary_p("stack", large_s=True, scale=args.scale, seed=args.seed)
    return format_series(rows, "p", "time_s", title="Fig. 26 — time vs p")


@_figure(27)
def _fig27(args):
    rows = vary_q("stack", scale=args.scale, seed=args.seed)
    rows += vary_q("stack", large_s=True, scale=args.scale, seed=args.seed)
    return format_series(rows, "q", "time_s", title="Fig. 27 — time vs q")


@_figure(28)
def _fig28(args):
    rows = []
    for name in ("wiki", "english"):
        rows += preprocessing_ablation(name, large_s=False,
                                       scale=args.scale, seed=args.seed)
        rows += preprocessing_ablation(name, large_s=True,
                                       scale=args.scale, seed=args.seed)
    return format_table(
        rows,
        ["dataset", "method", "s", "variant", "time_s", "cover"],
        title="Fig. 28 — preprocessing ablation",
    )


@_figure(29)
def _fig29(args):
    rows = figure29(scale=min(1.0, args.scale * 2))
    return format_table(
        rows,
        ["dataset", "d", "mimag_time_s", "bu_time_s", "mimag_size",
         "bu_size", "precision", "recall", "f1"],
        title="Fig. 29 — MiMAG vs BU-DCCS",
    )


@_figure(30)
def _fig30(args):
    blocks = []
    for name in ("ppi", "author"):
        blocks.append(figure30_table(figure30(name)))
    return "\n\n".join(blocks)


@_figure(31)
def _fig31(args):
    payload = figure31()
    lines = [
        "Fig. 31 — cover difference on {} (d={})".format(
            payload["dataset"], payload["d"]
        ),
        "both (red): {}  only d-CC (green): {}  only quasi (blue): {}".format(
            payload["both"], payload["only_dcc"], payload["only_quasi"]
        ),
        "avg within-class degree: " + ", ".join(
            "{}={:.2f}".format(key, value)
            for key, value in payload["densities"].items()
        ),
    ]
    return "\n".join(lines)


@_figure(32)
def _fig32(args):
    rows = figure32()
    return format_table(
        rows,
        ["d", "mimag_recovery", "bu_recovery", "complexes"],
        title="Fig. 32 — protein complexes found",
    )


def _cmd_figure(args):
    if args.number == 12:
        print(figure12_table(scale=args.scale, seed=args.seed))
        return 0
    if args.number == 13:
        print(figure13_table())
        return 0
    fn = _FIGURES.get(args.number)
    if fn is None:
        print("no figure {} in the paper's evaluation".format(args.number),
              file=sys.stderr)
        return 2
    print(fn(args))
    return 0


def build_parser():
    """Construct the argparse parser (exposed for the CLI tests)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", type=float, default=0.3,
                        help="stand-in dataset scale (default 0.3)")
    common.add_argument("--seed", type=int, default=0)

    parser = argparse.ArgumentParser(
        prog="repro-dccs",
        description="Diversified coherent core search on multi-layer graphs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", parents=[common],
                          help="print graph statistics")
    info.add_argument("graph", help="dataset name or graph file")
    info.add_argument("--backend", default="dict",
                      choices=("dict", "frozen"),
                      help="representation to report on (default dict)")
    info.add_argument("--kernel", default="auto",
                      choices=("auto", "python", "numpy"),
                      help="peel-kernel tier to report on (auto = numpy "
                           "when available)")
    info.add_argument("--shards", type=int, default=None,
                      help="also report the shard layout a --shards N "
                           "session would use (per-shard sizes, halo "
                           "widths, admission charge)")
    info.set_defaults(fn=_cmd_info)

    search = sub.add_parser("search", parents=[common], help="run DCCS")
    search.add_argument("graph", help="dataset name or graph file")
    search.add_argument("-d", type=int, default=4)
    search.add_argument("-s", type=int, default=3)
    search.add_argument("-k", type=int, default=10)
    search.add_argument("--method", default="auto",
                        choices=("auto", "greedy", "bottom-up", "top-down"))
    search.add_argument("--backend", default="auto",
                        choices=("auto", "dict", "frozen"),
                        help="graph backend (auto freezes when profitable)")
    search.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sharded parallel "
                             "search: 0 = one per CPU, N = exactly N "
                             "(default: classic single-process search)")
    search.add_argument("--kernel", default="auto",
                        choices=("auto", "python", "numpy"),
                        help="peel-kernel tier for the frozen backend "
                             "(auto = numpy when available; results are "
                             "bitwise identical either way)")
    search.add_argument("--shards", type=int, default=None,
                        help="partition the graph into N vertex-range "
                             "shards and run the distributed peel over "
                             "them (results identical to unsharded)")
    search.set_defaults(fn=_cmd_search)

    batch = sub.add_parser(
        "batch", parents=[common],
        help="run a JSON batch of queries through one persistent engine",
    )
    batch.add_argument("graph", help="dataset name or graph file")
    batch.add_argument(
        "queries",
        help="JSON file: a list of {d, s, k[, method, options...]} "
             "objects, or an object with a \"queries\" list",
    )
    batch.add_argument("--backend", default="auto",
                       choices=("auto", "dict", "frozen"),
                       help="graph backend, resolved once per session")
    batch.add_argument("--jobs", type=int, default=0,
                       help="persistent pool size: 0 = one worker per "
                            "CPU (default), N = exactly N")
    batch.add_argument("--kernel", default="auto",
                       choices=("auto", "python", "numpy"),
                       help="peel-kernel tier for the session's frozen "
                            "backend (auto = numpy when available)")
    batch.add_argument("--shards", type=int, default=None,
                       help="serve the batch from a sharded session: "
                            "the graph cut into N vertex-range blocks "
                            "(results identical to unsharded)")
    batch.set_defaults(fn=_cmd_batch)

    host = sub.add_parser(
        "host", parents=[common],
        help="run a multi-graph JSON batch spec through one DCCHost",
    )
    host.add_argument(
        "spec",
        help="JSON file: {\"graphs\": {name: source, ...}, \"queries\": "
             "[{graph, d, s, k[, method, options...]}, ...]} with "
             "optional max_engines / memory_budget_bytes",
    )
    host.add_argument("--backend", default="auto",
                      choices=("auto", "dict", "frozen"),
                      help="engine backend default for every graph")
    host.add_argument("--jobs", type=int, default=0,
                      help="per-engine pool size: 0 = one worker per "
                           "CPU (default), N = exactly N")
    host.add_argument("--max-engines", type=int, default=None,
                      help="resident engine cap (overrides the spec "
                           "file; LRU sessions beyond it are evicted, "
                           "their pools closed)")
    host.add_argument("--memory-budget", type=int, default=None,
                      help="global resident-memory budget in bytes "
                           "(overrides the spec file)")
    host.add_argument("--kernel", default="auto",
                      choices=("auto", "python", "numpy"),
                      help="peel-kernel tier default for every engine "
                           "(overrides the spec file)")
    host.add_argument("--shards", type=int, default=None,
                      help="shard count default for every attached graph "
                           "(overrides the spec's \"shards\" setting; "
                           "N > 1 budgets each graph by its largest "
                           "shard)")
    host.set_defaults(fn=_cmd_host)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="serve JSON-lines search requests from stdin through an "
             "async multi-graph host",
    )
    serve.add_argument(
        "spec",
        help="JSON file declaring the graphs (host-spec shape; "
             "\"queries\" optional and served first if present)",
    )
    serve.add_argument("--backend", default="auto",
                       choices=("auto", "dict", "frozen"),
                       help="engine backend default for every graph")
    serve.add_argument("--jobs", type=int, default=0,
                       help="per-engine pool size: 0 = one worker per "
                            "CPU (default), N = exactly N")
    serve.add_argument("--max-engines", type=int, default=None,
                       help="resident engine cap (overrides the spec)")
    serve.add_argument("--max-pending", type=int, default=None,
                       help="per-graph request-queue bound; a full queue "
                            "rejects with QueueFullError (overrides the "
                            "spec)")
    serve.add_argument("--port", type=int, default=None,
                       help="serve over TCP instead of stdio: listen on "
                            "this port (0 picks a free one, printed to "
                            "stderr); SIGINT/SIGTERM drains and exits")
    serve.add_argument("--bind", default="127.0.0.1",
                       help="interface to bind with --port "
                            "(default 127.0.0.1)")
    serve.add_argument("--no-result-cache", action="store_true",
                       help="disable the cross-time result cache "
                            "(repeat specs search live again)")
    serve.add_argument("--result-cache-entries", type=int, default=None,
                       help="result-cache LRU entry cap (overrides the "
                            "spec; default 4096)")
    serve.add_argument("--result-cache-ttl", type=float, default=None,
                       help="result-cache TTL in seconds (overrides the "
                            "spec; default: entries never expire)")
    serve.add_argument("--kernel", default="auto",
                       choices=("auto", "python", "numpy"),
                       help="peel-kernel tier default for every engine "
                            "(overrides the spec file)")
    serve.add_argument("--shards", type=int, default=None,
                       help="shard count default for every attached "
                            "graph (overrides the spec's \"shards\" "
                            "setting)")
    serve.set_defaults(fn=_cmd_serve)

    datasets = sub.add_parser("datasets", parents=[common],
                              help="print the Fig. 12/13 tables")
    datasets.set_defaults(fn=_cmd_datasets)

    figure = sub.add_parser("figure", parents=[common],
                            help="reproduce a paper figure")
    figure.add_argument("number", type=int)
    figure.set_defaults(fn=_cmd_figure)
    return parser


def main(argv=None):
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
