"""Parallel d-CC search over one shared graph.

This package cashes in the promise of the frozen CSR substrate: a frozen
graph is immutable, densely indexed and flat-array backed, so it can be
serialized once per worker process and searched concurrently with zero
coordination.  ``search_dccs(..., jobs=N)`` routes here; see
:mod:`repro.parallel.search` for how each algorithm shards and why the
output is bitwise identical for every worker count, and
``docs/architecture.md`` for the prose version.

Layout
------
* :mod:`~repro.parallel.serialize` — one-shot graph payloads (frozen CSR
  arrays ship as flat buffers; the dict backend as an edge list);
* :mod:`~repro.parallel.worker` — shard execution, shared by the inline
  path and the worker processes;
* :mod:`~repro.parallel.executor` — the chunked work queue /
  process-pool plumbing (``check_jobs`` / ``effective_jobs`` /
  ``map_shards``);
* :mod:`~repro.parallel.search` — orchestration: shard, execute, merge.
"""

from repro.parallel.executor import (
    MAX_WORKERS,
    check_jobs,
    effective_jobs,
    map_shards,
)
from repro.parallel.search import (
    parallel_bu_dccs,
    parallel_dccs,
    parallel_gd_dccs,
    parallel_td_dccs,
)
from repro.parallel.serialize import graph_payload, payload_graph
from repro.parallel.worker import ShardRunner, shard_seed

__all__ = [
    "parallel_dccs",
    "parallel_gd_dccs",
    "parallel_bu_dccs",
    "parallel_td_dccs",
    "check_jobs",
    "effective_jobs",
    "map_shards",
    "MAX_WORKERS",
    "graph_payload",
    "payload_graph",
    "ShardRunner",
    "shard_seed",
]
