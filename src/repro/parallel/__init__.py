"""Parallel d-CC search over one shared graph.

This package cashes in the promise of the frozen CSR substrate: a frozen
graph is immutable, densely indexed and flat-array backed, so it can be
serialized once per worker process and searched concurrently with zero
coordination.  ``search_dccs(..., jobs=N)`` routes here; see
:mod:`repro.parallel.search` for how each algorithm shards and why the
output is bitwise identical for every worker count, and
``docs/architecture.md`` for the prose version.

Pool lifecycle is split from per-search submission: a
:class:`~repro.parallel.executor.WorkerPool` ships the graph once per
worker process and then serves any number of queries, each crossing the
process boundary as a tiny ``(method, d, s, k, options)`` spec
(:class:`~repro.parallel.plan.Query`).  One-shot searches wrap a
short-lived pool; :class:`repro.engine.DCCEngine` keeps one warm.

Layout
------
* :mod:`~repro.parallel.serialize` — one-shot graph payloads (frozen CSR
  arrays ship as flat buffers; the dict backend as an edge list);
* :mod:`~repro.parallel.plan` — query specs and deterministic planning
  (``make_query`` / ``plan_query``), shared by orchestrator and workers;
* :mod:`~repro.parallel.worker` — shard execution and the per-query
  context cache, shared by the inline path and the worker processes;
* :mod:`~repro.parallel.executor` — pool lifecycle and the chunked shard
  queue (``check_jobs`` / ``effective_jobs`` / ``WorkerPool``);
* :mod:`~repro.parallel.search` — orchestration: plan, execute, merge.
"""

from repro.parallel.executor import (
    MAX_WORKERS,
    WorkerPool,
    check_jobs,
    effective_jobs,
    live_pool_count,
)
from repro.parallel.plan import Query, make_query, plan_query
from repro.parallel.search import (
    PendingQuery,
    execute_query,
    execute_query_batch,
    parallel_bu_dccs,
    parallel_dccs,
    parallel_gd_dccs,
    parallel_td_dccs,
    start_query,
)
from repro.parallel.serialize import graph_payload, payload_graph
from repro.parallel.worker import QueryRunnerCache, ShardRunner, shard_seed

__all__ = [
    "parallel_dccs",
    "parallel_gd_dccs",
    "parallel_bu_dccs",
    "parallel_td_dccs",
    "execute_query",
    "execute_query_batch",
    "start_query",
    "PendingQuery",
    "check_jobs",
    "effective_jobs",
    "live_pool_count",
    "WorkerPool",
    "MAX_WORKERS",
    "Query",
    "make_query",
    "plan_query",
    "graph_payload",
    "payload_graph",
    "QueryRunnerCache",
    "ShardRunner",
    "shard_seed",
]
