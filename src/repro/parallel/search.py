"""Parallel DCCS orchestration: plan, execute, merge.

The three algorithms shard along their natural seams (see
:mod:`repro.parallel.plan` for the planning half):

* **greedy** — the candidate family is ``binom(l, s)`` independent d-CC
  computations; the layer subsets are cut into chunks (a few per worker,
  so the queue stays balanced) and the classic greedy max-k-cover runs
  over the concatenated family.  Sharding is invisible here: the output
  *and* the summed counters are bitwise identical to the sequential
  ``gd_dccs``.
* **bottom-up** — one shard per root child of the prefix search tree
  (the subtree at position ``p`` holds exactly the layer subsets whose
  smallest search position is ``p``); each shard runs the full BU-Gen
  recursion with a local top-k seeded from the InitTopK result sets, and
  reports every locally accepted candidate.
* **top-down** — one shard per root child (which layer is shed first),
  same local-top-k scheme, with per-shard RNG streams for the Lemma 7
  shortcut.

The merge replays shard reports through one final
:class:`DiversifiedTopK` — the *same* Update machinery as the sequential
searches — strictly in shard order.  Shard *structure* never depends on
the worker count, so for every method, every seed and every backend,
``jobs=N`` returns bitwise identical sets, labels and aggregated
counters for all ``N`` (property-tested in ``tests/test_parallel.py``).

What parallel mode does *not* promise is equality with the sequential
tree searches: the cross-subtree pruning state (Lemmas 3/4/6 spanning
root children, and the evolving shared top-k) cannot exist across
isolated shards, so parallel bottom-up/top-down are documented variants
that explore at least as much of the tree as their sequential
counterparts and merge through identical selection logic.  Greedy has no
cross-candidate search state, hence its exact-parity guarantee.

Execution happens through a :class:`~repro.parallel.executor.WorkerPool`:
the ``parallel_*_dccs`` entry points wrap a short-lived pool around one
query, while :func:`execute_query` / :func:`execute_query_batch` accept a
caller-owned pool (how :class:`repro.engine.DCCEngine` amortises spawn
cost across a whole session).
"""

from repro.core.greedy import greedy_max_k_cover
from repro.core.result import DCCSResult, result_from_topk
from repro.core.stats import SearchStats
from repro.parallel.executor import WorkerPool
from repro.parallel.plan import make_query, plan_query
from repro.utils.errors import ParameterError
from repro.utils.timer import Timer


def _merge_shards(results, stats, topk):
    """Replay shard reports, in shard order, through the final top-k."""
    for _, candidates, shard_stats in results:
        stats.merge(shard_stats)
        for label, members in candidates:
            topk.try_update(members, label=label)


def _finish(graph, query, plan, results, stats):
    """Merge one query's shard results into its :class:`DCCSResult`.

    ``elapsed`` is left at zero — the caller owns the clock, because
    what counts as "the query's time" differs between the one-shot path
    (plan + execute + merge) and a pipelined batch (windows overlap).
    """
    d, s, k = query.d, query.s, query.k
    if query.method == "greedy":
        candidates = []
        for _, chunk, shard_stats in results:
            stats.merge(shard_stats)
            candidates.extend(chunk)
        chosen = greedy_max_k_cover(candidates, k)
        result = DCCSResult(
            sets=[members for _, members in chosen],
            labels=[label for label, _ in chosen],
            algorithm="greedy",
            params=(d, s, k),
            stats=stats,
            elapsed=0.0,
        )
        stats.extra["candidate_family_size"] = len(candidates)
        return result
    topk = plan.topk
    if plan.root_only:
        # The root is the only candidate; nothing was sharded.
        stats.candidates_generated += 1
        if topk.try_update(plan.root_core, label=tuple(graph.layers())):
            stats.updates_accepted += 1
    else:
        _merge_shards(results, stats, topk)
    return result_from_topk(topk, query.method, (d, s, k), stats, 0.0)


class PendingQuery:
    """One planned-and-submitted query awaiting collection.

    The future-style handle the submission/collection split hands out:
    :func:`start_query` plans a query and submits its shard tasks
    without blocking; :meth:`finish` blocks for the results and merges
    them.  Between the two, :meth:`waitables` exposes the in-flight
    shard futures so an async caller can await completion first and pay
    only the merge inside :meth:`finish` — no thread parked on worker
    execution.
    """

    __slots__ = ("graph", "query", "plan", "handle", "stats", "planned")

    def __init__(self, graph, query, plan, handle, stats, planned):
        self.graph = graph
        self.query = query
        self.plan = plan
        self.handle = handle
        self.stats = stats
        self.planned = planned

    def waitables(self):
        """The in-flight shard futures (empty for inline execution)."""
        return () if self.handle is None else self.handle.waitables()

    def finish(self, pool):
        """Collect and merge; the query's :class:`DCCSResult`.

        ``elapsed`` spans the plan phase plus this collect-and-merge
        phase — for back-to-back start/finish that is the classic
        one-shot window; in a pipelined batch the windows of different
        queries overlap, which is the point of a batch.
        """
        with Timer() as merge_timer:
            results = pool.collect(self.handle) \
                if self.handle is not None else []
            result = _finish(self.graph, self.query, self.plan, results,
                             self.stats)
        result.elapsed = self.planned + merge_timer.elapsed
        return result


def start_query(graph, query, pool, stats=None, artifacts=None):
    """Plan one query and submit its shards; a :class:`PendingQuery`.

    Submission does not block on execution — workers start chewing while
    the caller plans the next query (pipelining) or awaits the handle's
    :meth:`~PendingQuery.waitables` (the async front-end).
    """
    if stats is None:
        stats = SearchStats()
    with Timer() as plan_timer:
        plan = plan_query(graph, query, workers=pool.workers, stats=stats,
                          artifacts=artifacts)
        handle = pool.submit_query(query, plan.tasks, plan) \
            if plan.tasks else None
    return PendingQuery(graph, query, plan, handle, stats,
                        plan_timer.elapsed)


def execute_query(graph, query, pool, stats=None, artifacts=None):
    """Run one :class:`~repro.parallel.plan.Query` through ``pool``.

    ``artifacts`` is an optional per-graph cache
    (:class:`repro.engine.cache.ArtifactCache`); with or without it the
    result — counters included — is bitwise identical, the cache only
    swaps recomputation for replay.
    """
    return start_query(graph, query, pool, stats=stats,
                       artifacts=artifacts).finish(pool)


def execute_query_batch(graph, queries, pool, artifacts=None):
    """Pipeline a batch of queries through one warm pool.

    Every query is planned and its shard tasks submitted *before* any
    results are collected, so workers chew query ``i``'s shards while
    the orchestrator preprocesses query ``i+1`` — and merging happens in
    submission order, keeping each result bitwise identical to its
    :func:`execute_query` equivalent.
    """
    staged = [start_query(graph, query, pool, artifacts=artifacts)
              for query in queries]
    return [pending.finish(pool) for pending in staged]


def parallel_gd_dccs(graph, d, s, k, jobs=1, use_vertex_deletion=True,
                     stats=None):
    """GD-DCCS with the candidate family computed across ``jobs`` workers.

    Output and aggregated counters are bitwise identical to the
    sequential :func:`~repro.core.greedy.gd_dccs` for every ``jobs``.
    """
    query = make_query("greedy", d, s, k,
                       use_vertex_deletion=use_vertex_deletion)
    with WorkerPool(graph, jobs) as pool:
        return execute_query(graph, query, pool, stats=stats)


def parallel_bu_dccs(graph, d, s, k, jobs=1,
                     use_vertex_deletion=True,
                     use_layer_sorting=True,
                     use_init_topk=True,
                     use_order_pruning=True,
                     use_layer_pruning=True,
                     stats=None):
    """BU-DCCS sharded by root child of the prefix search tree.

    Shard structure depends only on the layer order (one shard per
    first-position subtree that can still reach depth ``s``), never on
    ``jobs``, so results are identical for every worker count.
    """
    query = make_query(
        "bottom-up", d, s, k,
        use_vertex_deletion=use_vertex_deletion,
        use_layer_sorting=use_layer_sorting,
        use_init_topk=use_init_topk,
        use_order_pruning=use_order_pruning,
        use_layer_pruning=use_layer_pruning,
    )
    with WorkerPool(graph, jobs) as pool:
        return execute_query(graph, query, pool, stats=stats)


def parallel_td_dccs(graph, d, s, k, jobs=1,
                     use_vertex_deletion=True,
                     use_layer_sorting=True,
                     use_init_topk=True,
                     use_order_pruning=True,
                     use_potential_pruning=True,
                     use_index=True,
                     seed=None,
                     stats=None):
    """TD-DCCS sharded by which layer the root sheds first.

    The orchestrator plans one canonical preprocessing/index build for
    counter accounting; pooled workers re-derive theirs locally without
    touching the counters, so the aggregated stats stay independent of
    the worker count.  Each shard draws from its own deterministic RNG
    stream (see :func:`~repro.parallel.worker.shard_seed`).
    """
    query = make_query(
        "top-down", d, s, k,
        use_vertex_deletion=use_vertex_deletion,
        use_layer_sorting=use_layer_sorting,
        use_init_topk=use_init_topk,
        use_order_pruning=use_order_pruning,
        use_potential_pruning=use_potential_pruning,
        use_index=use_index,
        seed=seed,
    )
    with WorkerPool(graph, jobs) as pool:
        return execute_query(graph, query, pool, stats=stats)


_PARALLEL_METHODS = {
    "greedy": parallel_gd_dccs,
    "bottom-up": parallel_bu_dccs,
    "top-down": parallel_td_dccs,
}


def parallel_dccs(graph, d, s, k, method, jobs, **options):
    """Dispatch one resolved method to its parallel implementation."""
    try:
        fn = _PARALLEL_METHODS[method]
    except KeyError:
        raise ParameterError(
            "method must be one of {}, got {!r}".format(
                tuple(_PARALLEL_METHODS), method
            )
        ) from None
    return fn(graph, d, s, k, jobs=jobs, **options)
