"""Parallel DCCS orchestration: shard, execute, merge.

The three algorithms shard along their natural seams:

* **greedy** — the candidate family is ``binom(l, s)`` independent d-CC
  computations; the layer subsets are cut into chunks (a few per worker,
  so the queue stays balanced) and the classic greedy max-k-cover runs
  over the concatenated family.  Sharding is invisible here: the output
  *and* the summed counters are bitwise identical to the sequential
  ``gd_dccs``.
* **bottom-up** — one shard per root child of the prefix search tree
  (the subtree at position ``p`` holds exactly the layer subsets whose
  smallest search position is ``p``); each shard runs the full BU-Gen
  recursion with a local top-k seeded from the InitTopK result sets, and
  reports every locally accepted candidate.
* **top-down** — one shard per root child (which layer is shed first),
  same local-top-k scheme, with per-shard RNG streams for the Lemma 7
  shortcut.

The merge replays shard reports through one final
:class:`DiversifiedTopK` — the *same* Update machinery as the sequential
searches — strictly in shard order.  Shard *structure* never depends on
the worker count, so for every method, every seed and every backend,
``jobs=N`` returns bitwise identical sets, labels and aggregated
counters for all ``N`` (property-tested in ``tests/test_parallel.py``).

What parallel mode does *not* promise is equality with the sequential
tree searches: the cross-subtree pruning state (Lemmas 3/4/6 spanning
root children, and the evolving shared top-k) cannot exist across
isolated shards, so parallel bottom-up/top-down are documented variants
that explore at least as much of the tree as their sequential
counterparts and merge through identical selection logic.  Greedy has no
cross-candidate search state, hence its exact-parity guarantee.
"""

from itertools import combinations

from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import coherent_core, validate_search_params
from repro.core.greedy import greedy_max_k_cover
from repro.core.index import CoreHierarchyIndex
from repro.core.initk import init_topk
from repro.core.preprocess import order_layers, vertex_deletion
from repro.core.result import DCCSResult, result_from_topk
from repro.core.stats import SearchStats
from repro.parallel.executor import effective_jobs, map_shards
from repro.utils.errors import ParameterError
from repro.utils.timer import Timer

# Chunks per worker for the greedy candidate family: enough slack that a
# straggler chunk cannot idle the rest of the pool, few enough that task
# overhead stays negligible.  Chunk boundaries never affect results.
CHUNKS_PER_WORKER = 4


def _chunked(items, chunks):
    """Cut ``items`` into at most ``chunks`` contiguous, ordered slices."""
    size = max(1, -(-len(items) // max(1, chunks)))
    return [items[i:i + size] for i in range(0, len(items), size)]


def _context(method, d, s, k, cores, alive, order, init_sets, flags,
             **extras):
    context = {
        "method": method,
        "d": d,
        "s": s,
        "k": k,
        "cores": [frozenset(core) for core in cores],
        "alive": frozenset(alive),
        "order": tuple(order) if order is not None else None,
        "init_sets": init_sets,
        "flags": flags,
        "seed": None,
    }
    context.update(extras)
    return context


def _seeded(topk):
    """Freeze a top-k's labelled sets for shipping to the shards."""
    return [(label, frozenset(members)) for label, members in
            topk.labelled_sets()]


def _merge_shards(results, stats, topk):
    """Replay shard reports, in shard order, through the final top-k."""
    for _, candidates, shard_stats in results:
        stats.merge(shard_stats)
        for label, members in candidates:
            topk.try_update(members, label=label)


def parallel_gd_dccs(graph, d, s, k, jobs=1, use_vertex_deletion=True,
                     stats=None):
    """GD-DCCS with the candidate family computed across ``jobs`` workers.

    Output and aggregated counters are bitwise identical to the
    sequential :func:`~repro.core.greedy.gd_dccs` for every ``jobs``.
    """
    validate_search_params(graph, d, s, k)
    if stats is None:
        stats = SearchStats()
    with Timer() as timer:
        prep = vertex_deletion(
            graph, d, s, enabled=use_vertex_deletion, stats=stats
        )
        subsets = list(combinations(range(graph.num_layers), s))
        context = _context("greedy", d, s, k, prep.cores, prep.alive,
                           None, [], {})
        chunks = _chunked(
            subsets, CHUNKS_PER_WORKER * effective_jobs(jobs)
        )
        tasks = [
            (index, "greedy", chunk) for index, chunk in enumerate(chunks)
        ]
        results = map_shards(graph, context, tasks, jobs)
        candidates = []
        for _, chunk_candidates, shard_stats in results:
            stats.merge(shard_stats)
            candidates.extend(chunk_candidates)
        chosen = greedy_max_k_cover(candidates, k)
    result = DCCSResult(
        sets=[members for _, members in chosen],
        labels=[label for label, _ in chosen],
        algorithm="greedy",
        params=(d, s, k),
        stats=stats,
        elapsed=timer.elapsed,
    )
    stats.extra["candidate_family_size"] = len(candidates)
    return result


def parallel_bu_dccs(graph, d, s, k, jobs=1,
                     use_vertex_deletion=True,
                     use_layer_sorting=True,
                     use_init_topk=True,
                     use_order_pruning=True,
                     use_layer_pruning=True,
                     stats=None):
    """BU-DCCS sharded by root child of the prefix search tree.

    Shard structure depends only on the layer order (one shard per
    first-position subtree that can still reach depth ``s``), never on
    ``jobs``, so results are identical for every worker count.
    """
    validate_search_params(graph, d, s, k)
    if stats is None:
        stats = SearchStats()
    with Timer() as timer:
        prep = vertex_deletion(
            graph, d, s, enabled=use_vertex_deletion, stats=stats
        )
        topk = DiversifiedTopK(k)
        if use_init_topk:
            init_topk(
                graph, d, s, k, prep.cores,
                topk=topk, within=prep.alive, stats=stats,
            )
        order = order_layers(prep.cores, descending=True,
                             enabled=use_layer_sorting)
        context = _context(
            "bottom-up", d, s, k, prep.cores, prep.alive, order,
            _seeded(topk),
            {
                "use_order_pruning": use_order_pruning,
                "use_layer_pruning": use_layer_pruning,
            },
        )
        # A subtree rooted at position p only reaches depth s when at
        # least s positions remain at or after p.
        positions = range(len(order) - s + 1)
        tasks = [
            (index, "bottom-up", position)
            for index, position in enumerate(positions)
        ]
        results = map_shards(graph, context, tasks, jobs)
        _merge_shards(results, stats, topk)
    return result_from_topk(topk, "bottom-up", (d, s, k), stats,
                            timer.elapsed)


def parallel_td_dccs(graph, d, s, k, jobs=1,
                     use_vertex_deletion=True,
                     use_layer_sorting=True,
                     use_init_topk=True,
                     use_order_pruning=True,
                     use_potential_pruning=True,
                     use_index=True,
                     seed=None,
                     stats=None):
    """TD-DCCS sharded by which layer the root sheds first.

    The orchestrator computes the root d-CC and (when enabled) one
    canonical hierarchy index for counter accounting; pooled workers
    rebuild the index locally without touching the counters, so the
    aggregated stats stay independent of the worker count.  Each shard
    draws from its own deterministic RNG stream (see
    :func:`~repro.parallel.worker.shard_seed`).
    """
    validate_search_params(graph, d, s, k)
    if stats is None:
        stats = SearchStats()
    with Timer() as timer:
        prep = vertex_deletion(
            graph, d, s, enabled=use_vertex_deletion, stats=stats
        )
        topk = DiversifiedTopK(k)
        if use_init_topk:
            init_topk(
                graph, d, s, k, prep.cores,
                topk=topk, within=prep.alive, stats=stats,
            )
        order = order_layers(prep.cores, descending=False,
                             enabled=use_layer_sorting)
        index = None
        if use_index:
            index = CoreHierarchyIndex(graph, d, within=prep.alive,
                                       stats=stats)
        root_core = coherent_core(
            graph, graph.layers(), d, within=prep.alive, stats=stats
        )
        if s == graph.num_layers:
            # The root is the only candidate; nothing to shard.
            stats.candidates_generated += 1
            if topk.try_update(root_core, label=tuple(graph.layers())):
                stats.updates_accepted += 1
        else:
            context = _context(
                "top-down", d, s, k, prep.cores, prep.alive, order,
                _seeded(topk),
                {
                    "use_order_pruning": use_order_pruning,
                    "use_potential_pruning": use_potential_pruning,
                    "use_index": use_index,
                },
                root_core=frozenset(root_core),
                seed=seed,
            )
            tasks = [
                (index_, "top-down", drop)
                for index_, drop in enumerate(range(graph.num_layers))
            ]
            results = map_shards(graph, context, tasks, jobs, index=index)
            _merge_shards(results, stats, topk)
    return result_from_topk(topk, "top-down", (d, s, k), stats,
                            timer.elapsed)


_PARALLEL_METHODS = {
    "greedy": parallel_gd_dccs,
    "bottom-up": parallel_bu_dccs,
    "top-down": parallel_td_dccs,
}


def parallel_dccs(graph, d, s, k, method, jobs, **options):
    """Dispatch one resolved method to its parallel implementation."""
    try:
        fn = _PARALLEL_METHODS[method]
    except KeyError:
        raise ParameterError(
            "method must be one of {}, got {!r}".format(
                tuple(_PARALLEL_METHODS), method
            )
        ) from None
    return fn(graph, d, s, k, jobs=jobs, **options)
