"""Query specs and deterministic planning, shared across process roles.

The persistent-pool design rests on one fact: everything a shard needs
beyond the graph itself — the preprocessed cores, the layer order, the
seeded initial result sets, the hierarchy index — is a *pure function* of
``(graph, method, d, s, k, options)``.  So a query crosses the process
boundary as just that tuple (:class:`Query`), and whoever holds a copy of
the graph re-derives the rest locally with :func:`plan_query`:

* the **orchestrator** plans with a live ``stats`` object (preprocessing
  cost is charged exactly once, to the query's own counters) and an
  optional artifact cache (see :mod:`repro.engine.cache`);
* **pooled workers** plan with ``stats=None`` — the classic rule that
  worker-side rebuilds never touch the merged counters, so aggregated
  stats cannot drift with the worker count.

Worker-derived state matches the orchestrator's bit for bit because every
derived piece is order-independent: cores and d-CCs are unique fixed
points, layer orders sort by size with index tie-breaks, and the InitTopK
selection compares cardinalities only.  ``tests/test_parallel.py`` and
``tests/test_engine.py`` hold this invariant under property testing.
"""

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import coherent_core, validate_search_params
from repro.core.index import CoreHierarchyIndex
from repro.core.initk import init_topk
from repro.core.preprocess import order_layers, vertex_deletion
from repro.utils.errors import ParameterError

# Chunks per worker for the greedy candidate family: enough slack that a
# straggler chunk cannot idle the rest of the pool, few enough that task
# overhead stays negligible.  Chunk boundaries never affect results.
CHUNKS_PER_WORKER = 4

# The full option vocabulary per method, with defaults.  A Query always
# carries every option of its method explicitly, so two queries that
# resolve to the same search are equal (and hit the same worker-side
# context cache entry) no matter which defaults the caller spelled out.
METHOD_OPTIONS = {
    "greedy": {
        "use_vertex_deletion": True,
    },
    "bottom-up": {
        "use_vertex_deletion": True,
        "use_layer_sorting": True,
        "use_init_topk": True,
        "use_order_pruning": True,
        "use_layer_pruning": True,
    },
    "top-down": {
        "use_vertex_deletion": True,
        "use_layer_sorting": True,
        "use_init_topk": True,
        "use_order_pruning": True,
        "use_potential_pruning": True,
        "use_index": True,
        "seed": None,
    },
}


@dataclass(frozen=True)
class Query:
    """One d-CC search, fully specified and cheap to ship.

    ``options`` is a sorted tuple of ``(name, value)`` pairs with every
    method option present (defaults filled by :func:`make_query`), which
    makes a Query hashable — it doubles as the worker-side context cache
    key — and picklable at a few dozen bytes.
    """

    method: str
    d: int
    s: int
    k: int
    options: tuple

    def options_dict(self):
        return dict(self.options)


def make_query(method, d, s, k, **options):
    """Build a :class:`Query`, validating and defaulting its options."""
    try:
        defaults = dict(METHOD_OPTIONS[method])
    except KeyError:
        raise ParameterError(
            "method must be one of {}, got {!r}".format(
                tuple(METHOD_OPTIONS), method
            )
        ) from None
    for name, value in options.items():
        if name not in defaults:
            raise ParameterError(
                "unknown option {!r} for method {!r} (valid: {})".format(
                    name, method, tuple(sorted(defaults))
                )
            )
        defaults[name] = value
    return Query(method, d, s, k, tuple(sorted(defaults.items())))


@dataclass
class QueryPlan:
    """Everything the orchestrator derives before shards run.

    Workers re-derive the same plan (minus stats charging) and consume
    only ``context`` and ``index``; ``topk``/``root_core``/``root_only``
    exist for the orchestrator's merge phase.
    """

    query: Query
    context: dict
    tasks: list = field(default_factory=list)
    topk: DiversifiedTopK = None
    index: CoreHierarchyIndex = None
    root_core: frozenset = None
    root_only: bool = False


def _chunked(items, chunks):
    """Cut ``items`` into at most ``chunks`` contiguous, ordered slices."""
    size = max(1, -(-len(items) // max(1, chunks)))
    return [items[i:i + size] for i in range(0, len(items), size)]


def _context(method, d, s, k, cores, alive, order, init_sets, flags,
             **extras):
    context = {
        "method": method,
        "d": d,
        "s": s,
        "k": k,
        "cores": [frozenset(core) for core in cores],
        "alive": frozenset(alive),
        "order": tuple(order) if order is not None else None,
        "init_sets": init_sets,
        "flags": flags,
        "seed": None,
    }
    context.update(extras)
    return context


def _seeded(topk):
    """Freeze a top-k's labelled sets for replay on the shard side."""
    return [(label, frozenset(members)) for label, members in
            topk.labelled_sets()]


def _preprocess(graph, d, s, enabled, stats, artifacts):
    if artifacts is not None:
        prep, delta = artifacts.preprocess(d, s, enabled)
        if stats is not None:
            stats.merge(delta)
        return prep
    return vertex_deletion(graph, d, s, enabled=enabled, stats=stats)


def _init_sets(graph, d, s, k, vd_enabled, prep, stats, artifacts):
    """The seeded initial result sets, as replayable ``(label, set)`` pairs."""
    if artifacts is not None:
        init_sets, delta = artifacts.init_sets(d, s, k, vd_enabled, prep)
        if stats is not None:
            stats.merge(delta)
        return init_sets
    topk = init_topk(graph, d, s, k, prep.cores, within=prep.alive,
                     stats=stats)
    return _seeded(topk)


def _replayed_topk(k, init_sets):
    """Reproduce the post-init top-k state from its labelled sets.

    Re-offering the (at most ``k``, non-empty, deduplicated-by-id) sets
    in their original order reproduces every acceptance decision, which
    is the same replay the shard-local top-k's perform."""
    topk = DiversifiedTopK(k)
    for label, members in init_sets:
        topk.try_update(members, label=label)
    return topk


def plan_query(graph, query, workers=1, stats=None, artifacts=None):
    """Derive one query's full execution plan against ``graph``.

    Deterministic given ``(graph, query)`` — ``workers`` only controls
    how many chunks the greedy candidate family is cut into, never what
    they contain, and ``stats``/``artifacts`` only control accounting
    and reuse.  Pooled workers call this with the defaults and keep just
    the context; see the module docstring for why the two derivations
    agree.
    """
    validate_search_params(graph, query.d, query.s, query.k)
    options = query.options_dict()
    d, s, k = query.d, query.s, query.k
    vd = options["use_vertex_deletion"]
    prep = _preprocess(graph, d, s, vd, stats, artifacts)

    if query.method == "greedy":
        context = _context("greedy", d, s, k, prep.cores, prep.alive,
                           None, [], {})
        subsets = list(combinations(range(graph.num_layers), s))
        chunks = _chunked(subsets, CHUNKS_PER_WORKER * max(1, workers))
        tasks = [
            (index, "greedy", chunk) for index, chunk in enumerate(chunks)
        ]
        return QueryPlan(query, context, tasks)

    init_sets = []
    if options["use_init_topk"]:
        init_sets = _init_sets(graph, d, s, k, vd, prep, stats, artifacts)
    topk = _replayed_topk(k, init_sets)

    if query.method == "bottom-up":
        order = order_layers(prep.cores, descending=True,
                             enabled=options["use_layer_sorting"])
        context = _context(
            "bottom-up", d, s, k, prep.cores, prep.alive, order, init_sets,
            {
                "use_order_pruning": options["use_order_pruning"],
                "use_layer_pruning": options["use_layer_pruning"],
            },
        )
        # A subtree rooted at position p only reaches depth s when at
        # least s positions remain at or after p.
        tasks = [
            (index, "bottom-up", position)
            for index, position in enumerate(range(len(order) - s + 1))
        ]
        return QueryPlan(query, context, tasks, topk=topk)

    # top-down
    order = order_layers(prep.cores, descending=False,
                         enabled=options["use_layer_sorting"])
    index = None
    if options["use_index"]:
        if artifacts is not None:
            index, delta = artifacts.hierarchy_index(d, s, vd, prep)
            if stats is not None:
                stats.merge(delta)
        else:
            index = CoreHierarchyIndex(graph, d, within=prep.alive,
                                       stats=stats)
    if artifacts is not None:
        root_core, delta = artifacts.root_core(d, s, vd, prep)
        if stats is not None:
            stats.merge(delta)
    else:
        root_core = coherent_core(
            graph, graph.layers(), d, within=prep.alive, stats=stats
        )
    if s == graph.num_layers:
        # The root is the only candidate; nothing to shard.
        return QueryPlan(query, {}, [], topk=topk, index=index,
                         root_core=frozenset(root_core), root_only=True)
    context = _context(
        "top-down", d, s, k, prep.cores, prep.alive, order, init_sets,
        {
            "use_order_pruning": options["use_order_pruning"],
            "use_potential_pruning": options["use_potential_pruning"],
            "use_index": options["use_index"],
        },
        root_core=frozenset(root_core),
        seed=options["seed"],
    )
    tasks = [
        (index_, "top-down", drop)
        for index_, drop in enumerate(range(graph.num_layers))
    ]
    return QueryPlan(query, context, tasks, topk=topk, index=index,
                     root_core=frozenset(root_core))


# ----------------------------------------------------------------------
# shard planning (the plan stage of plan → execute → merge)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardTask:
    """One shard's slice of a sharded execution: who serves what.

    ``shard`` is the canonical shard index (= merge order), ``lo``/``hi``
    the owned vertex range, ``layers`` the layer ids whose rows the
    shard holds for that range.
    """

    shard: int
    lo: int
    hi: int
    layers: tuple


@dataclass(frozen=True)
class ShardPlan:
    """The routing table one query's peels execute against.

    Maps a query spec to per-shard tasks and answers the coordinator's
    one planning question — *which executors participate in a peel on
    layer L* — via :meth:`shards_for`.  Built per query by
    :func:`plan_shard_tasks` (and once at graph construction as the
    default plan, so execution always flows through a plan).  Purely a
    function of the partitioning, so every process that rebuilds the
    sharded graph derives the identical plan.
    """

    spec: tuple
    strategy: str
    tasks: tuple

    def shards_for(self, layer):
        """Canonical-order indices of the shards serving ``layer``."""
        return tuple(
            task.shard for task in self.tasks if layer in task.layers
        )

    def executors_for(self, graph, layer):
        """The live executors this plan routes ``layer``'s work to."""
        executors = graph.executors
        return [
            executors[task.shard] for task in self.tasks
            if layer in task.layers
        ]


def plan_shard_tasks(graph, spec=None):
    """Build the :class:`ShardPlan` for one query over a sharded graph.

    ``graph`` is duck-typed: anything with ``shards`` (objects carrying
    ``index``/``lo``/``hi``/``layers``) and a ``strategy`` — i.e. a
    :class:`repro.shard.graph.ShardedGraph`.  ``spec`` tags the plan
    with the query tuple it was built for (``None`` for the default
    all-shards plan installed at construction).
    """
    return ShardPlan(
        spec, graph.strategy,
        tuple(
            ShardTask(shard.index, shard.lo, shard.hi, tuple(shard.layers))
            for shard in graph.shards
        ),
    )
