"""The chunked work queue that drives shard execution.

:func:`map_shards` is the single execution primitive of the parallel
subsystem: given a list of shard tasks it either runs them inline (one
worker, or a single shard — no pool is worth spawning) or submits each
task to a :class:`~concurrent.futures.ProcessPoolExecutor` whose
initializer ships the serialized graph and search context **once per
worker process**.  Tasks themselves are tiny shard specs, so an idle
worker pulling the next task off the queue costs a few bytes of pickle,
not a graph copy.

Completion order is explicitly irrelevant: results carry their shard
index and are re-sorted before the orchestrator merges them, which is
what makes ``jobs=4`` bitwise identical to ``jobs=1``.
"""

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.parallel.serialize import graph_payload
from repro.parallel.worker import ShardRunner, init_worker, run_shard
from repro.utils.errors import ParameterError

# A hard ceiling on pool size: beyond this, per-process interpreter and
# graph-deserialization overhead dominates any conceivable win.
MAX_WORKERS = 64


def check_jobs(jobs):
    """Validate a ``jobs=`` argument, returning it unchanged.

    ``None`` selects the sequential code path, ``0`` means "one worker
    per available CPU", any positive integer is an explicit worker
    count.
    """
    if jobs is None:
        return None
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 0:
        raise ParameterError(
            "jobs must be None, 0 (auto) or a positive integer, "
            "got {!r}".format(jobs)
        )
    return jobs


def effective_jobs(jobs=0):
    """The concrete worker count a ``jobs`` request resolves to.

    ``0`` (and ``None``) resolve to ``os.cpu_count()``; explicit counts
    pass through, capped at :data:`MAX_WORKERS`.  The resolved count
    never affects search output — only how many processes serve the
    shard queue.
    """
    if not jobs:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, MAX_WORKERS))


def map_shards(graph, context, tasks, jobs, index=None):
    """Execute shard ``tasks`` and return their results in shard order.

    Parameters
    ----------
    graph / context:
        What every shard computes against; see
        :class:`~repro.parallel.worker.ShardRunner`.
    tasks:
        ``(shard_index, kind, spec)`` triples.
    jobs:
        Requested worker count (already validated); resolved via
        :func:`effective_jobs` and additionally capped by the task count.
    index:
        Optional pre-built top-down hierarchy index, used only on the
        inline path (it cannot be shipped to workers cheaply; they
        rebuild their own, uncharged).

    The pool path degrades gracefully: if worker processes cannot be
    spawned at all (restricted sandboxes), the shards run inline — same
    results, one core.
    """
    workers = min(effective_jobs(jobs), len(tasks))
    if workers <= 1:
        runner = ShardRunner(graph, context, index=index)
        return [runner.run(task) for task in tasks]
    payload = graph_payload(graph)
    results = []
    try:
        # Worker processes are spawned lazily (at submit time on
        # CPython), so the whole submit/collect phase sits inside the
        # try: a sandbox that denies fork()/clone() surfaces as OSError
        # or a broken pool only once tasks are submitted.  A worker
        # raising an ordinary exception is *not* caught here — it
        # propagates from future.result() as itself.
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=init_worker,
            initargs=(payload, context),
        ) as pool:
            futures = [pool.submit(run_shard, task) for task in tasks]
            for future in futures:
                results.append(future.result())
    except (OSError, PermissionError, BrokenProcessPool):
        if results:
            # The pool worked and then died mid-run (a worker was
            # OOM-killed, segfaulted, ...).  That is a real failure to
            # surface, not an environment that cannot fork — silently
            # rerunning everything inline would only mask it.
            raise
        runner = ShardRunner(graph, context, index=index)
        return [runner.run(task) for task in tasks]
    results.sort(key=lambda item: item[0])
    return results
