"""Worker-pool lifecycle, split from per-search task submission.

:class:`WorkerPool` is the execution primitive of the parallel
subsystem: it owns a :class:`~concurrent.futures.ProcessPoolExecutor`
whose initializer ships the serialized graph **once per worker process,
for the pool's whole lifetime**.  Each search afterwards crosses the
process boundary as a tiny :class:`~repro.parallel.plan.Query` spec
riding along its shard tasks — a few dozen bytes of pickle, not a graph
or context copy — and workers re-derive (and cache) the search context
locally.  A one-shot ``search_dccs(..., jobs=N)`` wraps a short-lived
pool around a single query; :class:`repro.engine.DCCEngine` keeps one
warm across many.

Completion order is explicitly irrelevant: results carry their shard
index and are re-sorted before the orchestrator merges them, which is
what makes ``jobs=4`` bitwise identical to ``jobs=1``.
"""

import os
import weakref
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.parallel.serialize import delta_payload, graph_payload
from repro.parallel.worker import (
    QueryRunnerCache,
    init_persistent_worker,
    ping_worker,
    run_query_shard,
)
from repro.utils.errors import ParameterError, WorkerCrashError

# A hard ceiling on pool size: beyond this, per-process interpreter and
# graph-deserialization overhead dominates any conceivable win.
MAX_WORKERS = 64

# How many delta patches may pile up between the spawn payload and the
# current graph before the pool respawns from a fresh payload instead.
# The chain rides along every task (a ProcessPoolExecutor cannot address
# individual workers), so its pickled size — not correctness — is what
# the cap bounds.
MAX_DELTA_CHAIN = 8

_SPAWN_ERRORS = (OSError, PermissionError, BrokenProcessPool)

# Every constructed WorkerPool, held weakly, for process accounting: a
# multi-engine host (or a leak-hunting test) can ask how many pools
# currently hold live worker processes without keeping any alive.
_LIVE_POOLS = weakref.WeakSet()


def live_pool_count():
    """How many :class:`WorkerPool` instances have spawned processes.

    The leak-detection counter behind the host's eviction contract: a
    closed or evicted pool must no longer appear here.
    """
    return sum(1 for pool in _LIVE_POOLS if pool.spawned)


def _shutdown_executor(executor):
    """Finalizer body: tear down a pool's worker processes.

    Module-level (not a bound method) so the ``weakref.finalize``
    registration cannot keep its :class:`WorkerPool` alive.  Tolerates
    executor doubles without a ``shutdown`` (tests stub the pool class
    to simulate spawn failure).
    """
    shutdown = getattr(executor, "shutdown", None)
    if shutdown is not None:
        shutdown(wait=False, cancel_futures=True)


def check_jobs(jobs):
    """Validate a ``jobs=`` argument, returning it unchanged.

    ``None`` selects the sequential code path, ``0`` means "one worker
    per available CPU", any positive integer is an explicit worker
    count.
    """
    if jobs is None:
        return None
    if isinstance(jobs, bool) or not isinstance(jobs, int) or jobs < 0:
        raise ParameterError(
            "jobs must be None, 0 (auto) or a positive integer, "
            "got {!r}".format(jobs)
        )
    return jobs


def effective_jobs(jobs=0):
    """The concrete worker count a ``jobs`` request resolves to.

    ``0`` (and ``None``) resolve to ``os.cpu_count()``; explicit counts
    pass through, capped at :data:`MAX_WORKERS`.  The resolved count
    never affects search output — only how many processes serve the
    shard queue.
    """
    if not jobs:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, MAX_WORKERS))


class _InlineHandle:
    """A submitted query whose shards will run on the orchestrator."""

    def __init__(self, pool, query, tasks, plan):
        self._pool = pool
        self._query = query
        self._tasks = tasks
        self._plan = plan

    def waitables(self):
        """No futures to wait on: the work happens inside collect()."""
        return ()

    def collect(self):
        return self._pool._run_inline(self._query, self._tasks, self._plan)


class _PoolHandle:
    """A submitted query whose shard futures are in flight."""

    def __init__(self, pool, query, tasks, plan, futures):
        self._pool = pool
        self._query = query
        self._tasks = tasks
        self._plan = plan
        self._futures = futures

    def waitables(self):
        """The in-flight shard futures, for callers that await completion.

        An async front-end awaits these (``asyncio.wrap_future``) before
        calling :meth:`collect`, so collection never blocks a thread on
        worker execution — only on the final sort/merge.
        """
        return tuple(self._futures)

    def collect(self):
        results = []
        try:
            # A worker raising an ordinary exception is *not* caught
            # here — it propagates from future.result() as itself.
            for future in self._futures:
                results.append(future.result())
        except CancelledError as error:
            # Futures are only ever cancelled by a pool reset — another
            # in-flight handle of the same pool observed a crash first.
            self._pool._crash(error)
        except _SPAWN_ERRORS as error:
            if results or self._pool._ever_ran:
                # The pool worked and then died mid-run (a worker was
                # OOM-killed, segfaulted, ...).  That is a real failure
                # to surface, not an environment that cannot fork —
                # silently rerunning everything inline would only mask
                # it.  _crash resets the pool (the next query respawns)
                # and raises the typed error.
                self._pool._crash(error)
            self._pool._mark_broken()
            return self._pool._run_inline(self._query, self._tasks,
                                          self._plan)
        self._pool._ever_ran = True
        results.sort(key=lambda item: item[0])
        return results


class WorkerPool:
    """A persistent pool whose workers hold one deserialized graph.

    Parameters
    ----------
    graph:
        Either backend; serialized lazily, at first spawn.
    jobs:
        Worker-count request with ``search_dccs`` semantics (``0`` =
        one per CPU); ``None`` is accepted as an alias for ``1``.

    The pool spawns lazily — constructing one is free, the process-fork
    and graph-shipping cost lands on the first multi-task query (or on
    an explicit :meth:`warm`).  When one effective worker suffices, or
    worker processes cannot be spawned at all (restricted sandboxes),
    every query runs inline on the orchestrator through the same
    :class:`~repro.parallel.worker.QueryRunnerCache` machinery — same
    results, one core.

    Use as a context manager, or call :meth:`close`, so worker processes
    shut down deterministically.  Callers are nonetheless not *relied*
    on: every spawned executor is registered with a ``weakref.finalize``
    safety net that tears the processes down when the pool is garbage
    collected — or, failing that, at interpreter exit — so an abandoned
    pool (an engine dropped without ``close()``) cannot leak worker
    processes.
    """

    def __init__(self, graph, jobs=0):
        jobs = check_jobs(1 if jobs is None else jobs)
        self.graph = graph
        self.workers = effective_jobs(jobs)
        self._payload = None
        self._pool = None
        self._finalizer = None
        self._broken = False
        self._closed = False
        self._ever_ran = False
        self._inline = QueryRunnerCache(graph)
        # Streaming state: the epoch counts applied deltas, the chain
        # holds the (epoch, delta payload) suffix a spawned worker may
        # still need to catch up on, and _payload_epoch stamps which
        # epoch the spawn payload captured.
        self._epoch = 0
        self._payload_epoch = 0
        self._chain = []
        self.queries_served = 0
        self.tasks_executed = 0
        self.crashes = 0
        self.deltas_shipped = 0
        self.delta_respawns = 0
        _LIVE_POOLS.add(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def spawned(self):
        """Whether worker processes are currently live."""
        return self._pool is not None

    @property
    def closed(self):
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def inline_fallback(self):
        """Whether spawning failed and queries degrade to inline runs."""
        return self._broken

    def worker_pids(self):
        """PIDs of the live worker processes (empty when not spawned).

        Monitoring surface, and the hook fault-injection tests use to
        kill a worker mid-search.
        """
        if self._pool is None:
            return ()
        processes = getattr(self._pool, "_processes", None)
        return tuple(processes) if processes else ()

    def warm(self):
        """Spawn and touch every worker now, returning success.

        Callers that time individual queries (sweeps, benchmarks) warm
        the pool first so process-spawn cost is a session cost, not part
        of whichever query happens to run first.  No-op when the pool
        runs inline anyway.
        """
        if self.workers <= 1 or self._broken or self._closed:
            return False
        pool = self._ensure_pool()
        if pool is None:
            return False
        try:
            futures = [pool.submit(ping_worker)
                       for _ in range(self.workers)]
            for future in futures:
                future.result()
        except _SPAWN_ERRORS:
            self._mark_broken()
            return False
        self._ever_ran = True
        return True

    def close(self):
        """Shut the worker processes down; inline execution still works."""
        self._closed = True
        self._shutdown_pool()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def _ensure_pool(self):
        if self._pool is None and not self._broken and not self._closed:
            if self._payload is None:
                self._payload = graph_payload(self.graph)
                self._payload_epoch = self._epoch
                self._chain = []
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=init_persistent_worker,
                    initargs=(self._payload, self._payload_epoch),
                )
            except _SPAWN_ERRORS:
                self._mark_broken()
            else:
                # The safety net: keyed on *this pool's* lifetime, so a
                # pool abandoned without close() still shuts its worker
                # processes down at garbage collection, and finalize's
                # built-in atexit hook covers interpreter exit.
                self._finalizer = weakref.finalize(
                    self, _shutdown_executor, self._pool
                )
        return self._pool

    def _mark_broken(self):
        self._broken = True
        self._shutdown_pool()

    def _crash(self, cause):
        """Reset after a mid-run worker death and surface the typed error.

        Unlike :meth:`_mark_broken` (an environment that cannot spawn at
        all, degrading permanently to inline runs), a crash resets the
        executor but leaves the pool *armed*: the next query respawns
        fresh worker processes from the same graph payload.  Every other
        in-flight handle of this pool sees its futures cancelled and
        funnels back here, so one crash yields one consistent error type
        across the whole pipeline.
        """
        self.crashes += 1
        self._shutdown_pool()
        raise WorkerCrashError(cause)

    def _shutdown_pool(self):
        finalizer, self._finalizer = self._finalizer, None
        pool, self._pool = self._pool, None
        if finalizer is not None:
            # Calling the finalizer runs _shutdown_executor exactly once
            # and unregisters the GC/atexit hook in the same stroke.
            finalizer()
            return
        shutdown = getattr(pool, "shutdown", None)
        if shutdown is not None:
            shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # streaming deltas
    # ------------------------------------------------------------------

    def apply_delta(self, new_graph, delta):
        """Retarget the pool at a post-delta graph without respawning.

        The inline runner cache rebinds immediately; live worker
        processes catch up lazily — the patch joins the delta chain that
        rides along every task, and each worker applies the suffix it
        has not seen yet (:func:`~repro.parallel.worker._sync_to_epoch`)
        on its next task.  Past :data:`MAX_DELTA_CHAIN` pending patches
        the pool shuts its processes down instead and the next query
        respawns them from a fresh payload of the new graph — the same
        cost profile as a classic full rebind, taken once per ~chain-cap
        deltas instead of per delta.
        """
        old_graph = self.graph
        self.graph = new_graph
        self._inline = QueryRunnerCache(new_graph)
        self._epoch += 1
        if self._pool is None:
            # No live processes to patch: forget any staged payload so
            # the next spawn serializes the new graph directly.
            self._payload = None
            self._chain = []
            return
        if len(self._chain) >= MAX_DELTA_CHAIN:
            self._shutdown_pool()
            self._payload = None
            self._chain = []
            self.delta_respawns += 1
            return
        self._chain.append((self._epoch, delta_payload(old_graph,
                                                       new_graph, delta)))
        self.deltas_shipped += 1

    # ------------------------------------------------------------------
    # per-search submission
    # ------------------------------------------------------------------

    def submit_query(self, query, tasks, plan=None):
        """Submit one query's shard tasks; returns a handle for collect.

        Submission does not block on execution, which is what lets a
        batch pipeline its queries: plan and submit query ``i+1`` while
        the workers still chew on query ``i``'s shards.
        """
        if (self.workers <= 1 or len(tasks) <= 1 or self._broken
                or self._closed):
            return _InlineHandle(self, query, tasks, plan)
        pool = self._ensure_pool()
        if pool is None:
            return _InlineHandle(self, query, tasks, plan)
        try:
            # Worker processes are spawned lazily (at submit time on
            # CPython), so a sandbox that denies fork()/clone() surfaces
            # as OSError or a broken pool here, not in the constructor.
            epoch = self._epoch
            chain = tuple(self._chain)
            futures = [pool.submit(run_query_shard,
                                   (query, task, epoch, chain))
                       for task in tasks]
        except _SPAWN_ERRORS as error:
            if self._ever_ran:
                # This pool has executed work before, so the processes
                # died under it — a crash, not a spawn-incapable host.
                self._crash(error)
            self._mark_broken()
            return _InlineHandle(self, query, tasks, plan)
        return _PoolHandle(self, query, tasks, plan, futures)

    def collect(self, handle):
        """Block for a submitted query's results, in shard order."""
        results = handle.collect()
        self.queries_served += 1
        self.tasks_executed += len(results)
        return results

    def map_query(self, query, tasks, plan=None):
        """Submit-and-collect: execute ``tasks`` and return shard results."""
        return self.collect(self.submit_query(query, tasks, plan))

    def _run_inline(self, query, tasks, plan):
        runner = self._inline.runner(query, plan)
        return [runner.run(task) for task in tasks]
