"""Shard execution: the code that runs inside worker processes.

A *shard* is an independent slice of one search's candidate space (see
:mod:`repro.parallel.search` for how the three algorithms are sliced).
:class:`ShardRunner` executes shards against one graph plus one immutable
search *context* (parameters, preprocessed cores, layer order, the seeded
initial result sets, ablation flags).  The same class backs both
execution modes:

* **inline** (one effective worker, or a single shard) — the pool's
  orchestrator-side :class:`QueryRunnerCache` instantiates runners
  directly on its own graph object;
* **pooled** — :func:`init_persistent_worker` runs once per worker
  process, rebuilds the graph from its serialized payload (see
  :mod:`repro.parallel.serialize`) and keeps it for the life of the
  pool; :func:`run_query_shard` then serves ``(query, task)`` pairs,
  deriving each query's search context locally
  (:func:`repro.parallel.plan.plan_query`) and caching it so a repeated
  query costs the worker nothing but the shard itself.

Determinism is the design invariant: a shard's result depends only on
``(graph, query, shard)`` — never on which worker ran it, how many
workers exist, in what order shards complete, or whether the worker's
context came fresh or from its cache.  Worker-side derivations (the
whole query context, signature groups, the top-down hierarchy index) run
with ``stats=None`` so the merged counters cannot drift with the worker
count; the orchestrator charges each derivation to the run's stats
exactly once on its own side.
"""

from collections import OrderedDict

from repro.core.bottomup import _BottomUpSearch
from repro.core.coverage import DiversifiedTopK
from repro.core.dcc import candidate_for_subset, layer_signature_groups
from repro.core.index import CoreHierarchyIndex
from repro.core.stats import SearchStats
from repro.core.topdown import _TopDownSearch
from repro.parallel.plan import plan_query
from repro.parallel.serialize import apply_delta_payload, payload_graph
from repro.utils.rng import make_rng

# Per-process cap on cached query contexts.  Eight comfortably covers a
# sweep alternating a few methods over one parameter; beyond that the
# oldest context is evicted (a repeat then re-derives it, results
# unchanged).
MAX_CACHED_QUERIES = 8


def shard_seed(seed, shard_index):
    """A per-shard RNG seed, derived deterministically from the search seed.

    The sequential top-down search consumes one RNG stream; a sharded
    search gives every shard its own stream so the draws of one shard can
    never depend on how much randomness another shard consumed.  ``None``
    maps to the library default seed 0, mirroring :func:`make_rng`.
    """
    base = 0 if seed is None else seed
    return base * 1000003 + shard_index + 1


class _RecordingTopK(DiversifiedTopK):
    """A DiversifiedTopK that records accepted candidates while armed.

    Shards run the normal Update machinery locally (so local pruning
    stays armed exactly as in the sequential search) but must report
    every *accepted* candidate to the orchestrator, which replays the
    reports through the final top-k in canonical shard order.  Seeding
    with the initial result sets happens before :attr:`recording` is
    switched on, so seeds are not re-reported.
    """

    def __init__(self, k):
        super().__init__(k)
        self.accepted = []
        self.recording = False

    def try_update(self, candidate, label=None):
        ok = super().try_update(candidate, label=label)
        if ok and self.recording:
            self.accepted.append((label, frozenset(candidate)))
        return ok


class ShardRunner:
    """Executes shard tasks against one graph and one search context.

    Parameters
    ----------
    graph:
        Either backend; pooled workers hand runners a graph rebuilt from
        the serialized payload.
    context:
        The immutable per-search dict built by
        :func:`repro.parallel.plan.plan_query` (keys: ``method``, ``d``,
        ``s``, ``k``, ``cores``, ``alive``, ``order``, ``init_sets``,
        ``flags``, plus ``root_core``/``seed`` for the top-down method).
    index:
        An optional pre-built :class:`CoreHierarchyIndex` for top-down
        shards.  The inline path passes the orchestrator's; pooled
        workers pass their locally derived one (built silently — see the
        module docstring).
    """

    def __init__(self, graph, context, index=None):
        self.graph = graph
        self.context = context
        self._index = index
        self._index_ready = index is not None
        self._groups = None
        self._groups_ready = False

    def run(self, task):
        """Execute ``(shard_index, kind, spec)`` → ``(shard_index,
        accepted-or-generated candidates, SearchStats)``."""
        shard_index, kind, spec = task
        stats = SearchStats()
        if kind == "greedy":
            candidates = self._greedy_chunk(spec, stats)
        elif kind == "bottom-up":
            candidates = self._bottomup_subtree(spec, stats)
        elif kind == "top-down":
            candidates = self._topdown_subtree(shard_index, spec, stats)
        else:
            raise ValueError("unknown shard kind {!r}".format(kind))
        return shard_index, candidates, stats

    # ------------------------------------------------------------------
    # per-method shard bodies
    # ------------------------------------------------------------------

    def _greedy_chunk(self, subsets, stats):
        """One chunk of the candidate family: ``(L, C^d_L)`` per subset.

        Byte-for-byte the per-subset work of the sequential
        ``enumerate_candidates`` loop (same Lemma 1 bound, same frozen
        signature fast path, same counter increments), so summed shard
        stats equal the sequential run's.
        """
        context = self.context
        d = context["d"]
        cores = context["cores"]
        groups = self._signature_groups()
        candidates = []
        for subset in subsets:
            core = candidate_for_subset(
                self.graph, d, subset, cores, groups=groups, stats=stats
            )
            stats.candidates_generated += 1
            candidates.append((subset, core))
        return candidates

    def _bottomup_subtree(self, position, stats):
        context = self.context
        flags = context["flags"]
        topk = self._seeded_topk()
        search = _BottomUpSearch(
            graph=self.graph,
            d=context["d"],
            s=context["s"],
            order=context["order"],
            cores=context["cores"],
            topk=topk,
            stats=stats,
            use_order_pruning=flags["use_order_pruning"],
            use_layer_pruning=flags["use_layer_pruning"],
        )
        search.run_subtree(position, context["alive"])
        return topk.accepted

    def _topdown_subtree(self, shard_index, drop, stats):
        context = self.context
        flags = context["flags"]
        topk = self._seeded_topk()
        search = _TopDownSearch(
            graph=self.graph,
            d=context["d"],
            s=context["s"],
            order=context["order"],
            cores=context["cores"],
            topk=topk,
            index=self._topdown_index(),
            rng=make_rng(shard_seed(context["seed"], shard_index)),
            stats=stats,
            use_order_pruning=flags["use_order_pruning"],
            use_potential_pruning=flags["use_potential_pruning"],
        )
        root_positions = frozenset(range(self.graph.num_layers))
        search.generate_shard(
            root_positions, context["root_core"], frozenset(context["alive"]),
            drop,
        )
        return topk.accepted

    # ------------------------------------------------------------------
    # lazily built per-runner state
    # ------------------------------------------------------------------

    def _seeded_topk(self):
        """A fresh local top-k, seeded with the orchestrator's init sets.

        Re-offering the (at most ``k``, non-empty, deduplicated-by-id)
        initial sets in their original order reproduces the post-init
        result state, which is what arms the Eq. (1) pruning rules inside
        the shard exactly as in the sequential search.
        """
        topk = _RecordingTopK(self.context["k"])
        for label, members in self.context["init_sets"]:
            topk.try_update(members, label=label)
        topk.recording = True
        return topk

    def _signature_groups(self):
        """Frozen-backend signature groups for greedy chunks (cached)."""
        if not self._groups_ready:
            if self.graph.is_frozen:
                self._groups = layer_signature_groups(self.context["cores"])
            self._groups_ready = True
        return self._groups

    def _topdown_index(self):
        """The hierarchy index for top-down shards (cached per runner).

        Built silently (``stats=None``): the orchestrator accounts one
        canonical build, and charging per-worker rebuilds would make the
        merged counters depend on the worker count.
        """
        if not self._index_ready:
            if self.context["flags"]["use_index"]:
                self._index = CoreHierarchyIndex(
                    self.graph, self.context["d"],
                    within=self.context["alive"], stats=None,
                )
            self._index_ready = True
        return self._index


class QueryRunnerCache:
    """An LRU of per-query :class:`ShardRunner`\\ s over one graph.

    Two owners: each pooled worker process keeps one for the graph it
    holds, and :class:`~repro.parallel.executor.WorkerPool` keeps one on
    the orchestrator side for the inline execution path.  Either way the
    cache is what makes a *repeated* query cheap — the derived context,
    signature groups and hierarchy index survive between searches.
    """

    def __init__(self, graph):
        self.graph = graph
        self._runners = OrderedDict()

    def __len__(self):
        return len(self._runners)

    def runner(self, query, plan=None):
        """The cached runner for ``query``, deriving its context on miss.

        ``plan`` short-circuits the derivation when the caller already
        planned the query (the orchestrator's inline path); workers leave
        it unset and re-derive locally, uncharged (``stats=None``).
        """
        try:
            runner = self._runners[query]
        except KeyError:
            pass
        else:
            self._runners.move_to_end(query)
            return runner
        if plan is None:
            plan = plan_query(self.graph, query)
        runner = ShardRunner(self.graph, plan.context, index=plan.index)
        self._runners[query] = runner
        while len(self._runners) > MAX_CACHED_QUERIES:
            self._runners.popitem(last=False)
        return runner


# ----------------------------------------------------------------------
# process-pool plumbing
# ----------------------------------------------------------------------

_RUNNERS = None
_EPOCH = 0


def init_persistent_worker(payload, epoch=0):
    """Pool initializer: deserialize the graph once per worker process.

    Everything else a query needs is derived (and cached) lazily per
    query signature by :func:`run_query_shard`; the peel kernels
    additionally get a process-local scratch arena, the worker-side half
    of the engine's buffer reuse.  ``epoch`` stamps which state of a
    *mutable* source graph the payload captured — see
    :func:`_sync_to_epoch`.
    """
    global _RUNNERS, _EPOCH
    from repro.graph.frozen import ScratchArena, activate_scratch

    _RUNNERS = QueryRunnerCache(payload_graph(payload))
    _EPOCH = epoch
    activate_scratch(ScratchArena())


def ping_worker():
    """No-op task used by ``WorkerPool.warm()`` to force process spawn."""
    return _RUNNERS is not None


def _sync_to_epoch(epoch, chain):
    """Catch this worker's graph up to ``epoch`` by applying delta patches.

    ``chain`` is the pool's ``(epoch, delta payload)`` history; entries
    at or below this worker's current epoch were already applied (or
    were baked into its initializer payload) and are skipped.  A
    :class:`ProcessPoolExecutor` cannot address individual workers, so
    the pool rides the chain along every task and each worker fast-syncs
    exactly once per delta.  The runner cache is rebuilt — contexts
    derived from the old graph are unsound against the new one.
    """
    global _RUNNERS, _EPOCH
    graph = _RUNNERS.graph
    for entry_epoch, payload in chain:
        if entry_epoch > _EPOCH:
            graph = apply_delta_payload(graph, payload)
            _EPOCH = entry_epoch
    if _EPOCH != epoch:
        raise RuntimeError(
            "worker stuck at graph epoch {} but the task wants {}; the "
            "delta chain lost an entry".format(_EPOCH, epoch)
        )
    _RUNNERS = QueryRunnerCache(graph)


def run_query_shard(item):
    """Pool task entry point: ``(query, task, epoch, chain)`` → shard result.

    Requires :func:`init_persistent_worker` to have run.
    """
    if _RUNNERS is None:
        raise RuntimeError("worker process was not initialised")
    query, task, epoch, chain = item
    if epoch != _EPOCH:
        _sync_to_epoch(epoch, chain)
    return _RUNNERS.runner(query).run(task)
