"""Cross-process serialization of the two graph backends.

A parallel search ships its graph to every worker process exactly once —
through the pool initializer, never per task.  For the frozen CSR backend
that payload is the flat arrays themselves: each CSR buffer pickles as
one contiguous machine-typed block (``array.array`` via its
reconstructor-plus-``tobytes()`` protocol, numpy arrays via the buffer
protocol when the numpy kernel tier built them), so an n-vertex, l-layer
graph crosses the process boundary as ``2l`` buffers plus the label
table, with no per-edge Python object overhead.  A ``range`` label table
— what the synthetic generator produces for million-vertex graphs — is
shipped as the ``range`` object itself (three integers), never
materialised into a list.  The dict backend is shipped as its edge list
and rebuilt on the other side; it exists mainly so the ``jobs=`` option
works on either backend, the frozen representation is the one the
parallel subsystem is designed around.

The payload also carries the graph's *kernel tier*, so a pool worker
peels with the same tier the parent resolved.  Reconstruction coerces
rather than resolves it: a worker whose interpreter lacks numpy silently
falls back to the python tier instead of refusing the payload — results
are bitwise identical between tiers, so the fallback is safe.

Reconstruction bypasses :meth:`FrozenMultiLayerGraph.from_graph` — the
dense-id assignment was already done on the parent's side, and re-sorting
labels in the worker could only introduce skew.  The payload *is* the
authoritative id order.
"""

from repro.graph.frozen import FrozenMultiLayerGraph
from repro.graph.kernels import coerce_kernel
from repro.graph.multilayer import MultiLayerGraph


def graph_payload(graph):
    """A picklable payload for ``graph``; see :func:`payload_graph`.

    Frozen graphs contribute their CSR arrays, edge counts, layer
    bitmasks, label table and kernel tier verbatim (lazy caches are
    *not* shipped — workers rebuild the mirrors they actually touch).
    Dict graphs contribute an explicit vertex list plus per-layer edge
    lists, so the worker-side reconstruction is identical for every
    worker no matter how the parent's hash order happened to fall out.
    """
    if getattr(graph, "is_frozen", False):
        labels = graph.labels
        if type(labels) is not range:
            labels = list(labels)
        return (
            "frozen",
            graph.name,
            labels,
            graph._indptr,
            graph._indices,
            list(graph._edge_counts),
            list(graph._layer_masks),
            graph.kernel,
        )
    if getattr(graph, "is_sharded", False):
        # Checked before the dict fallback: a sharded graph is not
        # frozen (no whole-graph CSR arrays) but is nothing like the
        # dict backend either.  Workers rebuild the full sharded view —
        # same shards, same canonical order — so worker-side peels
        # route exactly as the orchestrator's do.
        return graph.payload()
    vertices = list(graph.vertices())
    try:
        vertices.sort()
    except TypeError:
        vertices.sort(key=repr)
    edges = [
        (layer, u, v) for layer in graph.layers() for u, v in graph.edges(layer)
    ]
    return ("dict", graph.name, graph.num_layers, vertices, edges)


def payload_graph(payload):
    """Rebuild the graph behind a :func:`graph_payload` tuple."""
    kind = payload[0]
    if kind == "frozen":
        (_, name, labels, indptr, indices, edge_counts, layer_masks,
         kernel) = payload
        return FrozenMultiLayerGraph(
            labels, indptr, indices, edge_counts, layer_masks, name=name,
            kernel=coerce_kernel(kernel),
        )
    if kind == "sharded":
        # Imported lazily: the parallel subsystem must not depend on the
        # shard layer unless a sharded payload actually arrives.
        from repro.shard.graph import ShardedGraph

        return ShardedGraph.from_payload(payload)
    if kind == "dict":
        _, name, num_layers, vertices, edges = payload
        graph = MultiLayerGraph(num_layers, vertices=vertices, name=name)
        for layer, u, v in edges:
            graph.add_edge(layer, u, v)
        return graph
    raise ValueError("unknown graph payload kind {!r}".format(kind))


def delta_payload(old_graph, new_graph, delta):
    """A picklable patch bringing a worker's ``old_graph`` to ``new_graph``.

    The streaming counterpart of :func:`graph_payload`: after a
    non-structural :class:`~repro.graph.delta.GraphDelta`, the engine
    ships only what changed instead of re-shipping the graph.  For the
    frozen backend that is the touched layers' CSR arrays plus the
    layer-bitmask diff (untouched layers are shared by reference on the
    worker side exactly as they are on the orchestrator's); for the dict
    backend it is the net edge lists themselves.

    Only valid for non-structural deltas — the caller
    (:meth:`WorkerPool.apply_delta`) never sees a structural one, since
    those force a full session rebind.
    """
    if getattr(new_graph, "is_frozen", False):
        touched = sorted(delta.touched_layers())
        layers_data = {
            layer: (new_graph._indptr[layer], new_graph._indices[layer],
                    new_graph._edge_counts[layer])
            for layer in touched
        }
        mask_updates = [
            (vid, new_mask)
            for vid, (old_mask, new_mask) in enumerate(
                zip(old_graph._layer_masks, new_graph._layer_masks))
            if old_mask != new_mask
        ]
        return ("csr-patch", layers_data, mask_updates)
    return ("edge-patch", tuple(delta.edges_added),
            tuple(delta.edges_removed))


def apply_delta_payload(graph, payload):
    """Apply a :func:`delta_payload` to a worker-side graph.

    Returns the post-delta graph: a *new* frozen view for a CSR patch
    (frozen graphs are immutable), the same object mutated in place for
    a dict edge patch.
    """
    kind = payload[0]
    if kind == "csr-patch":
        _, layers_data, mask_updates = payload
        indptr = list(graph._indptr)
        indices = list(graph._indices)
        edge_counts = list(graph._edge_counts)
        layer_masks = list(graph._layer_masks)
        for layer, (ptr, idx, count) in layers_data.items():
            indptr[layer] = ptr
            indices[layer] = idx
            edge_counts[layer] = count
        for vid, mask in mask_updates:
            layer_masks[vid] = mask
        return FrozenMultiLayerGraph(
            graph.labels, indptr, indices, edge_counts, layer_masks,
            name=graph.name, kernel=graph.kernel,
        )
    if kind == "edge-patch":
        _, added, removed = payload
        with graph.update():
            for layer, u, v in added:
                graph.add_edge(layer, u, v)
            for layer, u, v in removed:
                graph.remove_edge(layer, u, v)
        return graph
    raise ValueError("unknown delta payload kind {!r}".format(kind))
