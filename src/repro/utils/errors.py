"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`GraphError` so callers
can catch a single base class.  The subclasses distinguish the ways a call
can go wrong: a bad vertex, a bad layer index, a bad algorithm parameter,
or a mutation attempted on a frozen graph.
"""


class GraphError(Exception):
    """Base class for all errors raised by the repro package."""


class VertexError(GraphError, KeyError):
    """Raised when an operation references a vertex not in the graph."""

    def __init__(self, vertex):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self):
        return "vertex {!r} is not in the graph".format(self.vertex)


class EdgeError(GraphError, KeyError):
    """Raised when an operation references an edge not in the graph.

    Carries the full ``(layer, u, v)`` identity so a rejected wire
    update can be reported precisely.  The raising mutator validates
    *before* touching any adjacency set, so an operation that raises
    this has not half-applied.
    """

    def __init__(self, layer, u, v):
        super().__init__((layer, u, v))
        self.layer = layer
        self.u = u
        self.v = v

    def __str__(self):
        return "edge ({!r}, {!r}) is not in layer {}".format(
            self.u, self.v, self.layer
        )


class LayerIndexError(GraphError, IndexError):
    """Raised when a layer index is outside ``range(num_layers)``."""

    def __init__(self, layer, num_layers):
        super().__init__(layer)
        self.layer = layer
        self.num_layers = num_layers

    def __str__(self):
        return "layer {} is out of range for a graph with {} layers".format(
            self.layer, self.num_layers
        )


class ParameterError(GraphError, ValueError):
    """Raised when an algorithm parameter (d, s, k, gamma, ...) is invalid."""


class FrozenGraphError(GraphError, TypeError):
    """Raised when a mutation is attempted on a frozen (CSR) graph."""

    def __init__(self, operation):
        super().__init__(operation)
        self.operation = operation

    def __str__(self):
        return (
            "{}() is not supported on a frozen graph; call thaw() to get a "
            "mutable dict-backend copy".format(self.operation)
        )


class EngineClosedError(GraphError, RuntimeError):
    """Raised when a search is attempted on a closed :class:`DCCEngine`."""

    def __str__(self):
        return (
            "this DCCEngine has been closed; construct a new engine to "
            "search again"
        )


class StaleResultError(GraphError, RuntimeError):
    """Raised when a search cannot outrun concurrent graph mutation.

    The engine re-verifies ``mutation_version`` after collecting results
    and retries once against a rebound snapshot; if the graph has
    mutated *again* by the time the retry collects, delivering would
    violate the never-stale contract, so the search fails instead.  The
    session has already rebound — retrying the call is safe.
    """

    def __str__(self):
        return (
            "the source graph mutated during the search and again during "
            "its retry; the session is rebound — retry the search once "
            "the writer quiesces"
        )


class WorkerCrashError(GraphError, RuntimeError):
    """Raised when a worker process dies while serving a search.

    A pool whose processes have demonstrably worked (a successful warm
    or a completed query) losing one mid-run is a real fault — an OOM
    kill, a segfault, an operator signal — not an environment that
    cannot fork, so the failure is surfaced instead of silently rerun
    inline.  The pool has already been reset when this propagates: the
    next query respawns worker processes from the same graph payload, so
    retrying the search is safe and returns correct results.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __str__(self):
        detail = ""
        if self.cause is not None:
            detail = " ({}: {})".format(
                type(self.cause).__name__, self.cause
            )
        return (
            "a worker process died while serving this search{}; the pool "
            "has been reset and will respawn on the next query — retry "
            "the search".format(detail)
        )


class QueueFullError(GraphError, RuntimeError):
    """Raised when an async host's per-graph request queue is full.

    Backpressure, surfaced as an error rather than an unbounded buffer:
    the caller sheds load (or retries later) instead of the host
    accumulating requests without limit.  Coalesced duplicates of an
    in-flight spec never occupy a queue slot, so duplicate-heavy bursts
    are absorbed before this fires.
    """

    def __init__(self, graph, max_pending):
        super().__init__(graph)
        self.graph = graph
        self.max_pending = max_pending

    def __str__(self):
        return (
            "the request queue for graph {!r} is full ({} pending); "
            "retry once in-flight requests drain".format(
                self.graph, self.max_pending
            )
        )


class ProtocolError(GraphError, ValueError):
    """Raised when a serving-protocol request line is not a usable request.

    The JSON-lines protocol (``repro serve`` over stdio or the socket
    server) answers a malformed line with a per-line typed error
    response instead of tearing the connection down; this is the type a
    line that parses as JSON but is not a request object gets.
    """


class RequestTooLargeError(GraphError, ValueError):
    """Raised when a serving-protocol request line exceeds the size bound.

    The socket server reads request lines through a bounded buffer so a
    single runaway (or hostile) line cannot balloon server memory.  The
    oversized line is discarded through its terminating newline, this
    error is answered on the line's sequence slot, and the connection
    keeps serving subsequent requests.
    """

    def __init__(self, limit):
        super().__init__(limit)
        self.limit = limit

    def __str__(self):
        return (
            "request line exceeds the {}-byte bound; split the request "
            "or raise the server's max_request_bytes".format(self.limit)
        )


class HostClosedError(GraphError, RuntimeError):
    """Raised when an operation is attempted on a closed :class:`DCCHost`."""

    def __str__(self):
        return (
            "this DCCHost has been closed; construct a new host to serve "
            "again"
        )


class UnknownGraphError(GraphError, KeyError):
    """Raised when a host operation names a graph that was never attached."""

    def __init__(self, name, attached=()):
        super().__init__(name)
        self.name = name
        self.attached = tuple(attached)

    def __str__(self):
        if self.attached:
            return "no graph named {!r} is attached (attached: {})".format(
                self.name, ", ".join(repr(n) for n in self.attached)
            )
        return "no graph named {!r} is attached (none are)".format(self.name)
