"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`GraphError` so callers
can catch a single base class.  The subclasses distinguish the ways a call
can go wrong: a bad vertex, a bad layer index, a bad algorithm parameter,
or a mutation attempted on a frozen graph.
"""


class GraphError(Exception):
    """Base class for all errors raised by the repro package."""


class VertexError(GraphError, KeyError):
    """Raised when an operation references a vertex not in the graph."""

    def __init__(self, vertex):
        super().__init__(vertex)
        self.vertex = vertex

    def __str__(self):
        return "vertex {!r} is not in the graph".format(self.vertex)


class LayerIndexError(GraphError, IndexError):
    """Raised when a layer index is outside ``range(num_layers)``."""

    def __init__(self, layer, num_layers):
        super().__init__(layer)
        self.layer = layer
        self.num_layers = num_layers

    def __str__(self):
        return "layer {} is out of range for a graph with {} layers".format(
            self.layer, self.num_layers
        )


class ParameterError(GraphError, ValueError):
    """Raised when an algorithm parameter (d, s, k, gamma, ...) is invalid."""


class FrozenGraphError(GraphError, TypeError):
    """Raised when a mutation is attempted on a frozen (CSR) graph."""

    def __init__(self, operation):
        super().__init__(operation)
        self.operation = operation

    def __str__(self):
        return (
            "{}() is not supported on a frozen graph; call thaw() to get a "
            "mutable dict-backend copy".format(self.operation)
        )


class EngineClosedError(GraphError, RuntimeError):
    """Raised when a search is attempted on a closed :class:`DCCEngine`."""

    def __str__(self):
        return (
            "this DCCEngine has been closed; construct a new engine to "
            "search again"
        )
