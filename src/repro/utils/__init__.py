"""Shared utilities: error types, timers, RNG helpers, and set tools."""

from repro.utils.errors import (
    GraphError,
    LayerIndexError,
    ParameterError,
    VertexError,
)
from repro.utils.rng import make_rng, sample_subset
from repro.utils.timer import Timer

__all__ = [
    "GraphError",
    "LayerIndexError",
    "ParameterError",
    "VertexError",
    "Timer",
    "make_rng",
    "sample_subset",
]
