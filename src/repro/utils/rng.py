"""Deterministic random-number helpers.

Every stochastic component of the library (dataset generators, the
potential-set shortcut of the top-down algorithm, scalability sampling)
accepts either a seed or a :class:`random.Random` instance.  Centralising
the coercion here keeps experiments reproducible end to end.
"""

import random


def make_rng(seed_or_rng=None):
    """Return a :class:`random.Random` from a seed, an rng, or ``None``.

    ``None`` yields a freshly seeded generator (seed 0) so that library code
    is deterministic by default; pass an explicit :class:`random.Random` to
    share state across components.
    """
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    if seed_or_rng is None:
        return random.Random(0)
    return random.Random(seed_or_rng)


def sample_subset(rng, items, size):
    """Sample ``size`` distinct elements of ``items`` as a sorted list.

    Raises :class:`ValueError` when ``size`` exceeds ``len(items)`` —
    mirroring :func:`random.sample` — because silently truncating would make
    experiment sweeps lie about their parameters.
    """
    picked = rng.sample(list(items), size)
    picked.sort()
    return picked
