"""A tiny wall-clock timer used by the experiment harness.

The paper reports execution time for every algorithm; :class:`Timer` wraps
:func:`time.perf_counter` behind a context manager so experiment code reads
naturally::

    with Timer() as t:
        result = bu_dccs(graph, d=4, s=3, k=10)
    print(t.elapsed)
"""

import time


class Timer:
    """Context-manager stopwatch measuring elapsed wall-clock seconds.

    The timer can be reused: entering the context again restarts it.  While
    the block is still running, :attr:`elapsed` reports the time since entry,
    which makes the class usable for progress reporting as well.
    """

    __slots__ = ("_start", "_stop")

    def __init__(self):
        self._start = None
        self._stop = None

    def __enter__(self):
        self._start = time.perf_counter()
        self._stop = None
        return self

    def __exit__(self, exc_type, exc, tb):
        self._stop = time.perf_counter()
        return False

    @property
    def running(self):
        """Whether the timer has been started but not yet stopped."""
        return self._start is not None and self._stop is None

    @property
    def elapsed(self):
        """Elapsed seconds; live while running, frozen once stopped."""
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else time.perf_counter()
        return end - self._start

    def __repr__(self):
        return "Timer(elapsed={:.6f}s)".format(self.elapsed)
