"""Structural analysis of multi-layer graphs.

Descriptive statistics the DCCS workflow needs when facing an unfamiliar
graph: how dense is each layer, how similar are layers to each other
(which drives a sensible support threshold ``s``), and how vertex
support is distributed (which predicts what vertex-deletion will prune).
"""

from repro.core.dcore import layer_core, layer_core_sizes, d_core
from repro.utils.errors import ParameterError


def layer_statistics(graph):
    """One dict per layer: edges, avg/max degree, density, 2-core size."""
    rows = []
    n = graph.num_vertices
    for layer in graph.layers():
        adjacency = graph.adjacency(layer)
        degrees = [len(neighbors) for neighbors in adjacency.values()]
        edges = sum(degrees) // 2
        rows.append({
            "layer": layer,
            "edges": edges,
            "avg_degree": (sum(degrees) / n) if n else 0.0,
            "max_degree": max(degrees, default=0),
            "density": (2.0 * edges / (n * (n - 1))) if n > 1 else 0.0,
            "two_core": len(d_core(adjacency, 2)),
        })
    return rows


def layer_edge_jaccard(graph, first, second):
    """Jaccard similarity of the edge sets of two layers.

    High similarity between layers means d-CCs recur cheaply across them
    — the signal that a large ``s`` is meaningful for this graph.
    """
    first_edges = {frozenset(edge) for edge in graph.edges(first)}
    second_edges = {frozenset(edge) for edge in graph.edges(second)}
    union = first_edges | second_edges
    if not union:
        return 1.0
    return len(first_edges & second_edges) / len(union)


def layer_similarity_matrix(graph):
    """The full pairwise :func:`layer_edge_jaccard` matrix."""
    edge_sets = [
        {frozenset(edge) for edge in graph.edges(layer)}
        for layer in graph.layers()
    ]
    matrix = []
    for first in edge_sets:
        row = []
        for second in edge_sets:
            union = first | second
            row.append(len(first & second) / len(union) if union else 1.0)
        matrix.append(row)
    return matrix


def support_histogram(graph, d):
    """``{support: count}`` — how many vertices sit in exactly that many
    per-layer d-cores.

    The mass below a candidate ``s`` is exactly what the vertex-deletion
    preprocessing will remove; use this to pick ``s`` with open eyes.
    """
    if d < 0:
        raise ParameterError("d must be non-negative")
    support = {v: 0 for v in graph.vertices()}
    for layer in graph.layers():
        for vertex in layer_core(graph, layer, d):
            support[vertex] += 1
    histogram = {}
    for count in support.values():
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def core_size_profile(graph, max_d=None):
    """``{layer: {d: |d-core|}}`` — per-layer core-size curves.

    The layer-sorting preprocessing orders layers by one slice of this
    profile; the whole curve shows how quickly each layer thins out.
    """
    profile = {}
    for layer in graph.layers():
        sizes = layer_core_sizes(graph, layer)
        if max_d is not None:
            sizes = {d: size for d, size in sizes.items() if d <= max_d}
        profile[layer] = sizes
    return profile


def recommend_support(graph, d, coverage=0.5):
    """The largest ``s`` keeping at least ``coverage`` of the d-core mass.

    Heuristic: vertices with support below ``s`` are deleted before the
    search; this picks the most demanding ``s`` that still retains the
    requested fraction of the vertices that sit in at least one d-core.
    """
    if not 0.0 < coverage <= 1.0:
        raise ParameterError("coverage must be in (0, 1]")
    histogram = support_histogram(graph, d)
    in_any_core = sum(
        count for support, count in histogram.items() if support >= 1
    )
    if in_any_core == 0:
        return 1
    best = 1
    for s in range(1, graph.num_layers + 1):
        surviving = sum(
            count for support, count in histogram.items() if support >= s
        )
        if surviving >= coverage * in_any_core:
            best = s
    return best
