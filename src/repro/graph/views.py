"""Read-only views over a multi-layer graph.

:class:`LayerView` presents a single layer restricted to a vertex subset as
an ordinary graph, which is what the quasi-clique baseline and the metrics
modules want to reason about.  Views hold references, never copies, so they
are cheap to create inside inner loops.
"""

from repro.utils.errors import VertexError


class LayerView:
    """A single layer of a multi-layer graph, optionally induced on a subset.

    Parameters
    ----------
    graph:
        The backing :class:`~repro.graph.multilayer.MultiLayerGraph`.
    layer:
        The layer index to expose.
    within:
        Optional vertex subset; the view then behaves like ``G_layer[S]``.
    """

    __slots__ = ("_graph", "_layer", "_within")

    def __init__(self, graph, layer, within=None):
        graph._check_layer(layer)
        self._graph = graph
        self._layer = layer
        self._within = None if within is None else set(within)

    @property
    def layer(self):
        """The index of the exposed layer."""
        return self._layer

    def vertices(self):
        """The vertex set of the view."""
        if self._within is None:
            return self._graph.vertices()
        return set(self._within) & self._graph.vertices()

    def __contains__(self, vertex):
        if self._within is not None and vertex not in self._within:
            return False
        return vertex in self._graph

    def neighbors(self, vertex):
        """Neighbours of ``vertex`` inside the view."""
        if vertex not in self:
            raise VertexError(vertex)
        raw = self._graph.neighbors(self._layer, vertex)
        if self._within is None:
            return set(raw)
        return raw & self._within

    def degree(self, vertex):
        """Degree of ``vertex`` inside the view."""
        return len(self.neighbors(vertex))

    def has_edge(self, u, v):
        """Whether both endpoints are in the view and adjacent on the layer."""
        return u in self and v in self and self._graph.has_edge(self._layer, u, v)

    def edges(self):
        """Yield each edge of the view once."""
        for u, v in self._graph.edges(self._layer):
            if u in self and v in self:
                yield (u, v)

    def num_edges(self):
        """Count edges in the view."""
        return sum(1 for _ in self.edges())

    def min_degree(self):
        """The minimum degree over the view's vertices (0 for empty views)."""
        vertices = self.vertices()
        if not vertices:
            return 0
        return min(self.degree(v) for v in vertices)

    def is_d_dense(self, d):
        """Whether the viewed (sub)graph is d-dense (every degree >= d)."""
        return all(self.degree(v) >= d for v in self.vertices())

    def density(self):
        """Edge density ``2m / (n (n - 1))`` of the view; 0 when n < 2."""
        n = len(self.vertices())
        if n < 2:
            return 0.0
        return 2.0 * self.num_edges() / (n * (n - 1))

    def __repr__(self):
        return "LayerView(layer={}, vertices={})".format(
            self._layer, len(self.vertices())
        )
