"""The multi-layer graph substrate (Section II of the paper).

A multi-layer graph ``G = (V, E_1, ..., E_l)`` is a universal vertex set
``V`` shared by ``l`` simple undirected edge sets.  The paper assumes every
layer contains the same vertices (a vertex missing from a layer is treated
as isolated there); :class:`MultiLayerGraph` enforces that invariant by
construction — adding a vertex adds it to every layer, and adding an edge
implicitly adds its endpoints.

The representation is one adjacency dictionary per layer mapping each vertex
to a :class:`set` of neighbours.  This gives O(1) expected-time edge tests,
O(deg) neighbourhood iteration, and — crucially for the peeling algorithms
in :mod:`repro.core` — O(1) degree queries, which is what the linear-time
d-core machinery of Batagelj & Zaversnik needs.

Vertices may be any hashable object (ints, strings, tuples).  Self-loops are
rejected because the degree-based definitions in the paper are stated for
simple graphs.

This class is the mutable *reference backend* of the graph backend
protocol (:mod:`repro.graph.backend`).  :meth:`MultiLayerGraph.freeze`
converts to the immutable CSR backend
(:class:`~repro.graph.frozen.FrozenMultiLayerGraph`) for read-heavy
search workloads; ``thaw()`` converts back.
"""

import sys

from repro.graph.delta import GraphDelta, cancel_or_add, merge_entries
from repro.utils.errors import (
    EdgeError,
    LayerIndexError,
    ParameterError,
    VertexError,
)

# How many mutation batches the delta log remembers.  A consumer whose
# snapshot predates the oldest remembered batch gets ``None`` from
# ``delta_since`` and falls back to a full rebuild, so the cap bounds
# memory without ever affecting correctness.
_DELTA_LOG_CAP = 64

# ``freeze()`` patches its cached CSR conversion instead of rebuilding
# it when at most this fraction of the layers changed — per-layer
# rebuild work is identical either way, so the patch wins exactly when
# untouched layers dominate.
_PATCH_MAX_LAYER_FRACTION = 0.5


class _MutationBatch:
    """One ``with graph.update():`` scope; see :meth:`MultiLayerGraph.update`.

    Records net edge events (with add/remove cancellation) and a
    structural flag while open; on exit of the *outermost* scope the
    graph's ``mutation_version`` ticks exactly once and the batch lands
    in the delta log.  Nested scopes delegate to the outermost one.
    """

    __slots__ = ("_graph", "_owner", "added", "removed", "structural")

    def __init__(self, graph):
        self._graph = graph
        self._owner = False
        self.added = set()
        self.removed = set()
        self.structural = False

    def __enter__(self):
        if self._graph._batch is None:
            self._graph._batch = self
            self._owner = True
        return self

    def __exit__(self, *exc):
        if self._owner:
            self._graph._batch = None
            # Commit even when the batch body raised: any mutations that
            # did land must tick the version — a session snapshot must
            # never survive a half-applied batch.
            self._graph._commit_batch(self)
        return False


class MultiLayerGraph:
    """An undirected multi-layer graph with a shared vertex set.

    Parameters
    ----------
    num_layers:
        Number of layers ``l >= 1``.  Fixed at construction time.
    vertices:
        Optional iterable of initial vertices.
    name:
        Optional human-readable name used in ``repr`` and experiment tables.

    Examples
    --------
    >>> g = MultiLayerGraph(2, vertices=["a", "b", "c"])
    >>> g.add_edge(0, "a", "b")
    >>> g.add_edge(1, "b", "c")
    >>> sorted(g.neighbors(0, "a"))
    ['b']
    >>> g.degree(1, "b")
    1
    """

    __slots__ = ("_adj", "_vertices", "_edge_counts", "_frozen_cache",
                 "_frozen_version", "_vset_cache", "_version", "_batch",
                 "_delta_log", "freeze_patches", "freeze_rebuilds", "name")

    def __init__(self, num_layers, vertices=(), name=""):
        if num_layers < 1:
            raise ParameterError(
                "a multi-layer graph needs at least one layer, got {}".format(num_layers)
            )
        self._vertices = set()
        self._adj = [dict() for _ in range(num_layers)]
        self._edge_counts = [0] * num_layers
        self._frozen_cache = None
        self._frozen_version = -1
        self._vset_cache = None
        self._version = 0
        self._batch = None
        self._delta_log = []
        self.freeze_patches = 0
        self.freeze_rebuilds = 0
        self.name = name
        self.add_vertices(vertices)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def is_frozen(self):
        """``False`` — this is the mutable dict backend of the protocol."""
        return False

    @property
    def mutation_version(self):
        """A counter that ticks on every mutation.

        The same events that invalidate the cached ``freeze()`` result
        bump this counter, which gives session layers (notably
        :class:`repro.engine.DCCEngine`) an O(1) staleness check for any
        artifact they derived from a snapshot of this graph.
        """
        return self._version

    @property
    def num_layers(self):
        """The number of layers ``l(G)``."""
        return len(self._adj)

    @property
    def num_vertices(self):
        """The size of the universal vertex set ``|V(G)|``."""
        return len(self._vertices)

    def vertices(self):
        """Return a new set with all vertices of the graph."""
        return set(self._vertices)

    def vertex_set(self):
        """A cached frozenset of all vertices (immutable, like the frozen
        backend's), so no caller can corrupt the graph through it."""
        if self._vset_cache is None:
            self._vset_cache = frozenset(self._vertices)
        return self._vset_cache

    def has_vertex(self, vertex):
        """Whether ``vertex`` is in the graph (``in`` works too)."""
        return vertex in self._vertices

    def __contains__(self, vertex):
        return vertex in self._vertices

    def __len__(self):
        return len(self._vertices)

    def __iter__(self):
        return iter(self._vertices)

    def layers(self):
        """Return ``range(num_layers)`` — the valid layer indices."""
        return range(self.num_layers)

    def _check_layer(self, layer):
        if not 0 <= layer < self.num_layers:
            raise LayerIndexError(layer, self.num_layers)

    def _check_vertex(self, vertex):
        if vertex not in self._vertices:
            raise VertexError(vertex)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def update(self):
        """Open a batched-mutation scope: one version tick per batch.

        Every mutation inside the ``with`` block is recorded into one
        :class:`~repro.graph.delta.GraphDelta` and ``mutation_version``
        ticks exactly *once* when the outermost scope exits (not at all
        if the batch nets out to a no-op), so a K-edge stream costs
        session layers one rebind instead of K::

            with graph.update():
                graph.add_edge(0, "a", "b")
                graph.remove_edge(1, "c", "d")

        Scopes nest (the bulk mutators open one internally); only the
        outermost commit ticks.  Reads inside an open batch see the
        mutated adjacency, but version-gated caches (``freeze()``) treat
        the batch as not-yet-happened until it commits.
        """
        return _MutationBatch(self)

    def apply_delta(self, add=(), remove=()):
        """Apply mixed edge inserts and deletes as one batch.

        ``add`` and ``remove`` are iterables of ``(layer, u, v)``
        triples.  Removals are validated (``EdgeError`` on a missing
        edge) *before* any mutation is applied, so a rejected delta
        never half-applies; insertions may create endpoints (which makes
        the batch structural).  Returns the net
        :class:`~repro.graph.delta.GraphDelta` recorded for the batch,
        or ``None`` when it netted out to nothing.
        """
        add = [tuple(edge) for edge in add]
        remove = [tuple(edge) for edge in remove]
        # Validate the whole batch against a simulated overlay before
        # touching the graph.  Adds apply before removes, so a removal
        # may legally name an edge (or endpoint) the batch itself
        # creates; duplicate removals of one edge are rejected.
        overlay = {}
        created = set()

        def _edge_present(layer, u, v):
            for key in ((layer, u, v), (layer, v, u)):
                if key in overlay:
                    return key, overlay[key]
            present = (u in self._vertices and v in self._vertices
                       and self.has_edge(layer, u, v))
            return (layer, u, v), present

        for layer, u, v in add:
            self._check_layer(layer)
            if u == v:
                raise ParameterError(
                    "self-loop ({0!r}, {0!r}) is not allowed".format(u))
            created.add(u)
            created.add(v)
            key, _ = _edge_present(layer, u, v)
            overlay[key] = True
        for layer, u, v in remove:
            self._check_layer(layer)
            if u not in self._vertices and u not in created:
                raise VertexError(u)
            if v not in self._vertices and v not in created:
                raise VertexError(v)
            key, present = _edge_present(layer, u, v)
            if not present:
                raise EdgeError(layer, u, v)
            overlay[key] = False
        before = self._version
        with self.update():
            for layer, u, v in add:
                self.add_edge(layer, u, v)
            for layer, u, v in remove:
                self.remove_edge(layer, u, v)
        if self._version == before:
            return None
        return self.delta_since(before)

    def add_vertex(self, vertex):
        """Add ``vertex`` to every layer (isolated where no edges exist)."""
        if vertex not in self._vertices:
            self._vertices.add(vertex)
            for adj in self._adj:
                adj[vertex] = set()
            self._vset_cache = None
            self._record_structural()

    def add_vertices(self, vertices):
        """Add every vertex from the iterable ``vertices`` (one batch)."""
        with self.update():
            for vertex in vertices:
                self.add_vertex(vertex)

    def add_edge(self, layer, u, v):
        """Add the undirected edge ``(u, v)`` on ``layer``.

        Endpoints are created if absent.  Adding an existing edge is a no-op;
        self-loops raise :class:`ParameterError`.
        """
        self._check_layer(layer)
        if u == v:
            raise ParameterError("self-loop ({0!r}, {0!r}) is not allowed".format(u))
        if self._batch is not None:
            self._add_edge_batched(layer, u, v)
        else:
            # One version tick even when the edge creates its endpoints.
            with self.update():
                self._add_edge_batched(layer, u, v)

    def _add_edge_batched(self, layer, u, v):
        self.add_vertex(u)
        self.add_vertex(v)
        neighbors = self._adj[layer][u]
        if v not in neighbors:
            neighbors.add(v)
            self._adj[layer][v].add(u)
            self._edge_counts[layer] += 1
            self._record_edge_added(layer, u, v)

    def add_edges(self, layer, edges):
        """Add every ``(u, v)`` pair from ``edges`` on ``layer`` (one batch)."""
        with self.update():
            for u, v in edges:
                self.add_edge(layer, u, v)

    def remove_edge(self, layer, u, v):
        """Remove the edge ``(u, v)`` from ``layer``; missing edges error.

        Validates *before* touching either adjacency set — a missing
        edge raises :class:`~repro.utils.errors.EdgeError` with the
        graph unchanged, never half-applied.
        """
        self._check_layer(layer)
        self._check_vertex(u)
        self._check_vertex(v)
        if not self.has_edge(layer, u, v):
            raise EdgeError(layer, u, v)
        self._adj[layer][u].remove(v)
        self._adj[layer][v].remove(u)
        self._edge_counts[layer] -= 1
        self._record_edge_removed(layer, u, v)

    def remove_vertex(self, vertex):
        """Remove ``vertex`` and all its incident edges from every layer."""
        self._check_vertex(vertex)
        for layer, adj in enumerate(self._adj):
            for neighbor in adj[vertex]:
                adj[neighbor].remove(vertex)
            self._edge_counts[layer] -= len(adj[vertex])
            del adj[vertex]
        self._vertices.remove(vertex)
        self._vset_cache = None
        self._record_structural()

    def remove_vertices(self, vertices):
        """Remove every vertex in the iterable ``vertices`` (one batch)."""
        with self.update():
            for vertex in list(vertices):
                self.remove_vertex(vertex)

    # ------------------------------------------------------------------
    # mutation bookkeeping (version ticks + the delta log)
    # ------------------------------------------------------------------

    def _record_edge_added(self, layer, u, v):
        batch = self._batch
        if batch is not None:
            cancel_or_add(batch.added, batch.removed, layer, u, v)
            return
        self._version += 1
        self._log_entry((self._version - 1, self._version,
                         ((layer, u, v),), (), False))

    def _record_edge_removed(self, layer, u, v):
        batch = self._batch
        if batch is not None:
            cancel_or_add(batch.removed, batch.added, layer, u, v)
            return
        self._version += 1
        self._log_entry((self._version - 1, self._version,
                         (), ((layer, u, v),), False))

    def _record_structural(self):
        batch = self._batch
        if batch is not None:
            batch.structural = True
            return
        self._version += 1
        self._log_entry((self._version - 1, self._version, (), (), True))

    def _commit_batch(self, batch):
        """Outermost-scope exit: tick once and log the net delta."""
        if not (batch.added or batch.removed or batch.structural):
            return
        self._version += 1
        self._log_entry((self._version - 1, self._version,
                         tuple(batch.added), tuple(batch.removed),
                         batch.structural))

    def _log_entry(self, entry):
        log = self._delta_log
        log.append(entry)
        if len(log) > _DELTA_LOG_CAP:
            del log[:len(log) - _DELTA_LOG_CAP]

    def delta_since(self, version):
        """The merged :class:`GraphDelta` from ``version`` to now, or ``None``.

        ``None`` means the history is unknown — ``version`` predates the
        bounded delta log (or never existed) — and the caller must treat
        the graph as arbitrarily changed (full rebuild).  A consumer
        whose snapshot is current should not call this (the result for
        ``version == mutation_version`` is an empty delta).
        """
        if version == self._version:
            return GraphDelta(version, version)
        if version > self._version or version < 0:
            return None
        log = self._delta_log
        start = None
        for index, entry in enumerate(log):
            if entry[0] == version:
                start = index
                break
        if start is None or log[-1][1] != self._version:
            return None
        return merge_entries(version, self._version, log[start:])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def has_edge(self, layer, u, v):
        """Whether the edge ``(u, v)`` exists on ``layer``."""
        self._check_layer(layer)
        neighbors = self._adj[layer].get(u)
        return neighbors is not None and v in neighbors

    def neighbors(self, layer, vertex):
        """The neighbour set ``N_{G_layer}(vertex)`` (a live set — do not mutate)."""
        self._check_layer(layer)
        try:
            return self._adj[layer][vertex]
        except KeyError:
            raise VertexError(vertex) from None

    def degree(self, layer, vertex):
        """The degree ``d_{G_layer}(vertex)``."""
        return len(self.neighbors(layer, vertex))

    def neighbor_row(self, layer):
        """A per-layer row accessor: ``row(v)`` → the neighbour set.

        The protocol's bulk-cascade primitive (see
        :mod:`repro.graph.backend`): peeling loops hoist one ``row`` per
        layer instead of paying a checked :meth:`neighbors` call per
        popped vertex.
        """
        self._check_layer(layer)
        return self._adj[layer].__getitem__

    def min_degree_over(self, layers, vertex):
        """``min_{i in layers} d_{G_i}(vertex)`` — the m(v) of Appendix B."""
        return min(self.degree(layer, vertex) for layer in layers)

    def induced_degrees(self, layer, within=None):
        """``{v: deg_layer(v) within the subset}`` — the protocol bulk query.

        With ``within=None`` the full-graph degrees are returned.  Vertices
        of ``within`` not present in the graph are silently skipped,
        matching the ``G[S] = G[S ∩ V]`` convention used throughout.
        """
        self._check_layer(layer)
        adj = self._adj[layer]
        if within is None:
            return {v: len(neighbors) for v, neighbors in adj.items()}
        members = within if isinstance(within, (set, frozenset)) else set(within)
        return {v: len(adj[v] & members) for v in members if v in adj}

    def layers_of(self, vertex):
        """The layers on which ``vertex`` has at least one edge."""
        self._check_vertex(vertex)
        return frozenset(
            layer for layer, adj in enumerate(self._adj) if adj[vertex]
        )

    def num_edges(self, layer):
        """The number of edges ``|E_layer|`` on one layer (O(1), cached)."""
        self._check_layer(layer)
        return self._edge_counts[layer]

    def total_edges(self):
        """``sum_i |E_i|`` — total edge count with layer multiplicity."""
        return sum(self._edge_counts)

    def union_edge_count(self):
        """``|union_i E_i|`` — number of distinct vertex pairs with an edge."""
        seen = set()
        for layer in self.layers():
            for u, v in self.edges(layer):
                seen.add((u, v))
        return len(seen)

    def edges(self, layer):
        """Yield each edge of ``layer`` once as a canonically ordered pair."""
        self._check_layer(layer)
        for u, neighbors in self._adj[layer].items():
            for v in neighbors:
                # Emit each undirected edge exactly once.  Hashes order the
                # pair canonically even for non-comparable vertex types.
                if (hash(u), id(u)) < (hash(v), id(v)):
                    yield (u, v)

    def all_edges(self):
        """Yield ``(layer, u, v)`` triples over all layers."""
        for layer in self.layers():
            for u, v in self.edges(layer):
                yield (layer, u, v)

    def adjacency(self, layer):
        """The raw adjacency dict of ``layer`` (read-only by convention).

        The peeling algorithms in :mod:`repro.core` take this dictionary
        directly to avoid per-edge method-call overhead.
        """
        self._check_layer(layer)
        return self._adj[layer]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------

    def copy(self, name=None):
        """Return a deep copy (new adjacency sets, same vertex objects)."""
        other = MultiLayerGraph(
            self.num_layers,
            name=self.name if name is None else name,
        )
        other._vertices = set(self._vertices)
        other._adj = [
            {vertex: set(neighbors) for vertex, neighbors in adj.items()}
            for adj in self._adj
        ]
        other._edge_counts = list(self._edge_counts)
        return other

    def induced_subgraph(self, vertices, name=""):
        """The multi-layer subgraph ``G[S]`` induced by ``vertices``.

        Vertices not present in the graph are ignored, matching the paper's
        convention that ``G[S]`` is defined by ``S ∩ V(G)``.
        """
        keep = set(vertices) & self._vertices
        sub = MultiLayerGraph(self.num_layers, vertices=keep, name=name)
        for layer, adj in enumerate(self._adj):
            sub_adj = sub._adj[layer]
            half_edges = 0
            for vertex in keep:
                kept = adj[vertex] & keep
                sub_adj[vertex] = kept
                half_edges += len(kept)
            sub._edge_counts[layer] = half_edges // 2
        return sub

    def subgraph_of_layers(self, layer_ids, name=""):
        """A new graph containing only the given layers (same vertices).

        Used by the scalability experiment that varies the layer fraction
        ``q`` (Fig. 27).
        """
        layer_ids = list(layer_ids)
        for layer in layer_ids:
            self._check_layer(layer)
        if not layer_ids:
            raise ParameterError("at least one layer must be kept")
        sub = MultiLayerGraph(len(layer_ids), vertices=self._vertices, name=name)
        for new_layer, old_layer in enumerate(layer_ids):
            sub._adj[new_layer] = {
                vertex: set(neighbors)
                for vertex, neighbors in self._adj[old_layer].items()
            }
            sub._edge_counts[new_layer] = self._edge_counts[old_layer]
        return sub

    def freeze(self, name=None):
        """Convert to the immutable CSR backend.

        Returns a :class:`~repro.graph.frozen.FrozenMultiLayerGraph` over
        dense integer vertex ids; ``thaw()`` round-trips back to an equal
        dict-backend graph.  Freeze once, search many times: every peeling
        primitive in :mod:`repro.core` takes a flat-array fast path on the
        frozen representation.

        The default-named result is cached.  After a mutation the cached
        CSR is *patched* instead of rebuilt when the recorded delta
        allows it: non-structural (the vertex set — and hence the dense
        id assignment — is unchanged) and touching at most
        ``_PATCH_MAX_LAYER_FRACTION`` of the layers (per-layer CSR rows
        are rebuilt wholesale either way, so patching pays off exactly
        when untouched layers dominate).  A patched freeze is bitwise
        identical to ``from_graph`` on the mutated graph; the
        ``freeze_patches`` / ``freeze_rebuilds`` counters record which
        path ran.
        """
        from repro.graph.frozen import FrozenMultiLayerGraph

        if name is not None:
            return FrozenMultiLayerGraph.from_graph(self, name=name)
        if self._batch is not None:
            # Mid-batch: the version has not ticked yet, so the cache
            # cannot tell this state apart from the pre-batch one.
            return FrozenMultiLayerGraph.from_graph(self)
        cached = self._frozen_cache
        if cached is not None and self._frozen_version == self._version:
            return cached
        patched = None
        if cached is not None:
            delta = self.delta_since(self._frozen_version)
            if delta is not None and not delta.structural:
                touched = delta.touched_layers()
                if (len(touched) <=
                        _PATCH_MAX_LAYER_FRACTION * self.num_layers):
                    patched = cached.patched(self, touched)
        if patched is not None:
            self._frozen_cache = patched
            self.freeze_patches += 1
        else:
            self._frozen_cache = FrozenMultiLayerGraph.from_graph(self)
            self.freeze_rebuilds += 1
        self._frozen_version = self._version
        return self._frozen_cache

    def memory_bytes(self):
        """Rough resident size of the adjacency dictionaries."""
        total = sys.getsizeof(self._vertices)
        total += sum(sys.getsizeof(vertex) for vertex in self._vertices)
        for adj in self._adj:
            total += sys.getsizeof(adj)
            total += sum(sys.getsizeof(neighbors) for neighbors in adj.values())
        return total

    # ------------------------------------------------------------------
    # dunder & debugging helpers
    # ------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, MultiLayerGraph):
            return NotImplemented
        return self._vertices == other._vertices and self._adj == other._adj

    def __ne__(self, other):
        equal = self.__eq__(other)
        return NotImplemented if equal is NotImplemented else not equal

    def __repr__(self):
        label = " {!r}".format(self.name) if self.name else ""
        return "MultiLayerGraph({} layers, {} vertices, {} edges{})".format(
            self.num_layers, self.num_vertices, self.total_edges(), label
        )

    def summary(self):
        """A dict of the Fig. 12 statistics columns for this graph."""
        return {
            "name": self.name,
            "vertices": self.num_vertices,
            "total_edges": self.total_edges(),
            "union_edges": self.union_edge_count(),
            "layers": self.num_layers,
        }

    def validate(self):
        """Check internal consistency; raises :class:`GraphError` on corruption.

        Verifies that adjacency is symmetric, loop-free and confined to the
        vertex set.  Intended for tests and for debugging code that mutates
        :meth:`adjacency` directly.
        """
        for layer, adj in enumerate(self._adj):
            if set(adj) != self._vertices:
                raise VertexError(set(adj) ^ self._vertices)
            half_edges = sum(len(neighbors) for neighbors in adj.values())
            if self._edge_counts[layer] != half_edges // 2:
                raise ParameterError(
                    "cached edge count for layer {} is {} but adjacency "
                    "holds {}".format(
                        layer, self._edge_counts[layer], half_edges // 2
                    )
                )
            for vertex, neighbors in adj.items():
                if vertex in neighbors:
                    raise ParameterError(
                        "self-loop at {!r} on layer {}".format(vertex, layer)
                    )
                for neighbor in neighbors:
                    if neighbor not in self._vertices:
                        raise VertexError(neighbor)
                    if vertex not in adj[neighbor]:
                        raise ParameterError(
                            "asymmetric edge ({!r}, {!r}) on layer {}".format(
                                vertex, neighbor, layer
                            )
                        )
        return True
