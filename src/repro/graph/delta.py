"""Structured descriptions of batched graph mutations.

A :class:`GraphDelta` records the *net* effect of one mutation batch on
a :class:`~repro.graph.multilayer.MultiLayerGraph` — which edges were
added, which were removed, and whether the batch changed the vertex set
("structural").  The graph keeps a bounded log of recent deltas keyed by
``mutation_version``, and :meth:`MultiLayerGraph.delta_since` merges a
contiguous suffix of that log into one delta, which is what lets the
session layers (:class:`repro.engine.DCCEngine`, the cached ``freeze()``)
treat a mutation as an incremental *patch* rather than a rebuild-the-world
event.

Net-effect semantics: within one batch (and across merged batches) an
edge added and then removed cancels to nothing, as does the reverse —
edge presence has no attributes, so the algebra is exact.  Structural
changes (vertex addition/removal) are *not* tracked edge-by-edge: the
dense-id assignment of the frozen backend is derived from the sorted
vertex set, so any vertex-set change shifts ids and forces a full
rebuild; the delta just records that fact.

Edges are undirected: ``(layer, u, v)`` and ``(layer, v, u)`` denote the
same edge, and the cancellation helpers check both orientations (vertex
labels need not be mutually comparable, so no canonical orientation is
imposed).
"""


class GraphDelta:
    """The net effect of one (or several merged) mutation batches.

    Attributes
    ----------
    base_version:
        The graph's ``mutation_version`` before the batch.
    version:
        The ``mutation_version`` after the batch (``base_version + n``
        for a merge of ``n`` batches).
    edges_added / edges_removed:
        Tuples of ``(layer, u, v)`` triples — the net edge changes.
    structural:
        ``True`` when the batch changed the vertex set, which shifts the
        frozen backend's dense-id assignment and rules out patching.
    """

    __slots__ = ("base_version", "version", "edges_added", "edges_removed",
                 "structural")

    def __init__(self, base_version, version, edges_added=(),
                 edges_removed=(), structural=False):
        self.base_version = base_version
        self.version = version
        self.edges_added = tuple(edges_added)
        self.edges_removed = tuple(edges_removed)
        self.structural = bool(structural)

    @property
    def empty(self):
        """Whether the delta nets out to no change at all."""
        return not (self.edges_added or self.edges_removed
                    or self.structural)

    @property
    def edge_count(self):
        """Total net edge events (adds plus removes)."""
        return len(self.edges_added) + len(self.edges_removed)

    def touched_layers(self):
        """The layers whose edge sets this delta changes (a frozenset).

        Meaningful only for non-structural deltas: a structural batch
        invalidates every layer regardless of which edges it names.
        """
        return frozenset(
            layer for layer, _, _ in self.edges_added
        ) | frozenset(
            layer for layer, _, _ in self.edges_removed
        )

    def __repr__(self):
        return ("GraphDelta(v{}->v{}, +{} -{} edges{})".format(
            self.base_version, self.version, len(self.edges_added),
            len(self.edges_removed),
            ", structural" if self.structural else "",
        ))


def cancel_or_add(target, opposite, layer, u, v):
    """Record an undirected edge event with net-effect cancellation.

    Discards the edge from ``opposite`` (checking both orientations) if
    present — the two events annihilate — otherwise adds ``(layer, u,
    v)`` to ``target``.  Shared by the live mutation batch and by
    :func:`merge_entries`.
    """
    if (layer, u, v) in opposite:
        opposite.discard((layer, u, v))
    elif (layer, v, u) in opposite:
        opposite.discard((layer, v, u))
    else:
        target.add((layer, u, v))


def merge_entries(base_version, version, entries):
    """Fold a contiguous sequence of log entries into one delta.

    ``entries`` are the graph's internal ``(base, version, added,
    removed, structural)`` tuples, oldest first, covering exactly
    ``base_version .. version``.  Edge events cancel across batches
    exactly as they do within one.
    """
    added = set()
    removed = set()
    structural = False
    for _, _, batch_added, batch_removed, batch_structural in entries:
        structural = structural or batch_structural
        for layer, u, v in batch_added:
            cancel_or_add(added, removed, layer, u, v)
        for layer, u, v in batch_removed:
            cancel_or_add(removed, added, layer, u, v)
    return GraphDelta(base_version, version, tuple(added), tuple(removed),
                      structural)
