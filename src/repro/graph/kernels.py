"""The kernel tier: array-native peel kernels over the frozen CSR arrays.

The frozen backend (:mod:`repro.graph.frozen`) ships two interchangeable
implementations of its hot primitives — induced degrees, the single-layer
d-core peel, the multi-layer coherent-core fixed point and the full core
decomposition:

* ``"python"`` — the original pure-Python flag/list kernels, kept
  verbatim in :mod:`repro.graph.frozen` as the correctness reference;
* ``"numpy"`` — the gather/scatter kernels in this module, which run the
  same cascades as vectorised *rounds* over int32 views of the CSR
  ``indptr``/``indices`` buffers (boolean alive masks, ``np.add.at`` /
  ``bincount`` degree scatters, frontier queues as index arrays).

Both kernels compute the same unique fixed point and count the same
number of peel operations (one per removed vertex, an order-independent
quantity), so results — sets, labels, cover, ``SearchStats`` — are
bitwise identical; the property suite in ``tests/test_kernels.py``
enforces this.  The tier is selected by the ``kernel=auto|python|numpy``
flag threaded through :class:`FrozenMultiLayerGraph`, ``search_dccs``,
the engine/host/serving stack and the CLI; ``"auto"`` resolves to
``"numpy"`` exactly when numpy imports, so environments without the
``fast`` extra transparently fall back to the pure-Python tier.
"""

from repro.utils.errors import ParameterError

KERNELS = ("auto", "python", "numpy")

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None


# ----------------------------------------------------------------------
# flag validation / resolution
# ----------------------------------------------------------------------


def numpy_available():
    """Whether the numpy kernel tier can run in this interpreter."""
    return _np is not None


def numpy_version():
    """The importable numpy's version string, or ``None`` without numpy."""
    return None if _np is None else _np.__version__


def check_kernel(kernel):
    """Validate a ``kernel=`` argument, returning it unchanged."""
    if kernel not in KERNELS:
        raise ParameterError(
            "kernel must be one of {}, got {!r}".format(KERNELS, kernel)
        )
    return kernel


def resolve_kernel(kernel):
    """Resolve a ``kernel=`` argument to a concrete tier.

    ``"auto"`` picks ``"numpy"`` exactly when numpy is importable;
    explicitly requesting ``"numpy"`` without numpy raises — a caller
    who *named* the fast tier must not silently get the slow one.
    """
    check_kernel(kernel)
    if kernel == "auto":
        return "numpy" if _np is not None else "python"
    if kernel == "numpy" and _np is None:
        raise ParameterError(
            "kernel=\"numpy\" requested but numpy is not importable; "
            "install the \"fast\" extra (pip install repro-dccs[fast]) "
            "or use kernel=\"auto\""
        )
    return kernel


def coerce_kernel(kernel):
    """Lenient resolution for internal payloads: fall back, never raise.

    Worker processes rebuild graphs from serialized payloads that carry
    the parent's resolved kernel; a worker without numpy (a degraded
    environment, never a user request) must still deserialize and serve
    rather than crash the pool.
    """
    if kernel not in KERNELS:
        kernel = "auto"
    if kernel == "numpy" and _np is None:
        return "python"
    return resolve_kernel(kernel)


# ----------------------------------------------------------------------
# CSR buffer views
# ----------------------------------------------------------------------


def as_index_array(buffer):
    """A zero-copy numpy integer view of a CSR buffer.

    ``array.array`` buffers are viewed through ``np.frombuffer`` with
    the matching integer width (no copy, no per-element conversion);
    buffers that are already ndarrays pass through unchanged.
    """
    if isinstance(buffer, _np.ndarray):
        return buffer
    return _np.frombuffer(buffer, dtype=_np.dtype("i{}".format(
        buffer.itemsize)))


def buffer_nbytes(buffer):
    """Resident payload bytes of a CSR buffer (ndarray or array.array)."""
    nbytes = getattr(buffer, "nbytes", None)
    if nbytes is not None:
        return nbytes
    return buffer.itemsize * len(buffer)


# ----------------------------------------------------------------------
# shared kernel scaffolding
# ----------------------------------------------------------------------


def _member_state(graph, within):
    """``(alive bool array, member id array, member sequence)``.

    Member *coercion* (deduplication, aliasing of objects hash-equal to
    in-range ints, silent dropping of everything else) is delegated to
    the python kernels' :func:`repro.graph.frozen._alive_members` so the
    two tiers can never disagree on who participates; only the bulk
    arithmetic after that point is vectorised.
    """
    n = graph.num_vertices
    if within is None:
        return (_np.ones(n, dtype=_np.bool_),
                _np.arange(n, dtype=_np.int64), range(n))
    from repro.graph.frozen import _alive_members

    alive_bytes, members = _alive_members(graph, within)
    alive = _np.frombuffer(alive_bytes, dtype=_np.uint8).astype(_np.bool_)
    member_arr = _np.fromiter(members, dtype=_np.int64, count=len(members))
    return alive, member_arr, members


def _gather_rows(indptr, indices, rows):
    """Concatenated CSR rows: ``(flat neighbour array, row bounds)``.

    ``bounds`` has ``len(rows) + 1`` entries; row ``r``'s neighbours are
    ``flat[bounds[r]:bounds[r + 1]]``.  Robust to empty rows and an
    empty ``rows`` array.
    """
    starts = indptr[rows].astype(_np.int64)
    lengths = indptr[rows + 1].astype(_np.int64) - starts
    bounds = _np.zeros(len(rows) + 1, dtype=_np.int64)
    _np.cumsum(lengths, out=bounds[1:])
    total = int(bounds[-1])
    if total == 0:
        return _np.empty(0, dtype=_np.int64), bounds
    flat = _np.repeat(starts - bounds[:-1], lengths) \
        + _np.arange(total, dtype=_np.int64)
    return indices[flat].astype(_np.int64), bounds


def _induced_degree_arrays(graph, layer_tuple, alive, member_arr, full):
    """Per-layer int64 degree arrays restricted to the alive mask.

    The numpy analogue of the python tier's two-strategy
    ``_induced_degree_lists``: the full-graph case copies the cached
    degree vector; a large subset counts alive neighbours with one
    cumsum over the whole CSR; a small subset gathers only the member
    rows.  Entries for dead vertices are garbage either way — the peel
    loops never read them.
    """
    if full:
        return [graph._np_degrees(layer).copy() for layer in layer_tuple]
    n = graph.num_vertices
    degree_arrays = []
    dense = 2 * member_arr.size > n
    for layer in layer_tuple:
        indptr, indices = graph._np_csr(layer)
        if dense:
            contrib = _np.zeros(len(indices) + 1, dtype=_np.int64)
            _np.cumsum(alive[indices], out=contrib[1:])
            ptr = indptr.astype(_np.int64)
            degree_arrays.append(contrib[ptr[1:]] - contrib[ptr[:-1]])
            continue
        flat, bounds = _gather_rows(indptr, indices, member_arr)
        sums = _np.zeros(len(flat) + 1, dtype=_np.int64)
        _np.cumsum(alive[flat], out=sums[1:])
        degrees = _np.zeros(n, dtype=_np.int64)
        degrees[member_arr] = sums[bounds[1:]] - sums[bounds[:-1]]
        degree_arrays.append(degrees)
    return degree_arrays


def _below_threshold(candidates, degree_arrays, d):
    """The subset of ``candidates`` below ``d`` on any layer."""
    below = _np.zeros(candidates.size, dtype=_np.bool_)
    for degrees in degree_arrays:
        below |= degrees[candidates] < d
    return candidates[below]


def _peel_rounds(graph, layer_tuple, d, alive, frontier, degree_arrays):
    """Run the cascade to its fixed point; the number of peeled vertices.

    Round-based: the whole frontier is marked dead, then every layer's
    frontier rows are gathered at once and the surviving neighbours'
    degrees are decremented by scatter (``bincount`` for fat frontiers,
    ``np.subtract.at`` for thin ones).  The next frontier is the set of
    touched, still-alive vertices now below ``d`` on some layer — the
    same unique fixed point, and the same removed-vertex count, as the
    python tier's sequential FIFO.
    """
    csr = [graph._np_csr(layer) for layer in layer_tuple]
    n = graph.num_vertices
    peeled = 0
    while frontier.size:
        alive[frontier] = False
        peeled += frontier.size
        touched = []
        for (indptr, indices), degrees in zip(csr, degree_arrays):
            flat, _ = _gather_rows(indptr, indices, frontier)
            live = flat[alive[flat]]
            if live.size:
                if 4 * live.size > n:
                    degrees -= _np.bincount(live, minlength=n)
                else:
                    _np.subtract.at(degrees, live, 1)
                touched.append(live)
        if not touched:
            break
        candidates = _np.unique(_np.concatenate(touched))
        candidates = candidates[alive[candidates]]
        frontier = _below_threshold(candidates, degree_arrays, d)
    return peeled


# ----------------------------------------------------------------------
# the numpy kernels
# ----------------------------------------------------------------------


def np_induced_degrees(graph, layer, within=None):
    """Numpy tier of :meth:`FrozenMultiLayerGraph.induced_degrees`."""
    if within is None:
        degrees = graph._np_degrees(layer)
        return dict(zip(range(graph.num_vertices), degrees.tolist()))
    alive, member_arr, members = _member_state(graph, within)
    (degrees,) = _induced_degree_arrays(
        graph, (layer,), alive, member_arr, full=False
    )
    return dict(zip(members, degrees[member_arr].tolist()))


def np_layer_core(graph, layer, d, within=None):
    """Numpy tier of :func:`repro.graph.frozen.frozen_layer_core`."""
    alive, member_arr, members = _member_state(graph, within)
    if d == 0:
        return set(members)
    degree_arrays = _induced_degree_arrays(
        graph, (layer,), alive, member_arr, full=within is None
    )
    frontier = _below_threshold(member_arr, degree_arrays, d)
    _peel_rounds(graph, (layer,), d, alive, frontier, degree_arrays)
    return set(member_arr[alive[member_arr]].tolist())


def np_coherent_core(graph, layer_tuple, d, within=None, stats=None):
    """Numpy tier of :func:`repro.graph.frozen.frozen_coherent_core`.

    ``stats.peel_operations`` advances by the number of removed
    vertices — exactly the python tier's per-dequeue count, because a
    vertex is dequeued precisely once per removal in either tier.
    """
    alive, member_arr, members = _member_state(graph, within)
    if d == 0:
        return frozenset(members)
    degree_arrays = _induced_degree_arrays(
        graph, layer_tuple, alive, member_arr, full=within is None
    )
    frontier = _below_threshold(member_arr, degree_arrays, d)
    peeled = _peel_rounds(graph, layer_tuple, d, alive, frontier,
                          degree_arrays)
    if stats is not None:
        stats.peel_operations += peeled
    return frozenset(member_arr[alive[member_arr]].tolist())


def np_core_decomposition(graph, layer, within=None):
    """Numpy tier of the full core decomposition of one layer.

    Ascending-threshold cascade: the ``d``-threshold peel removes
    exactly the vertices with core number ``d - 1``, and every vertex is
    removed once overall, so the total work stays O(n + m) plus one
    frontier scan of the shrinking member set per threshold.  Returns
    ``{vertex: core number}`` equal to
    :func:`repro.core.dcore.core_decomposition` on the layer's adjacency.
    """
    alive, member_arr, members = _member_state(graph, within)
    degree_arrays = _induced_degree_arrays(
        graph, (layer,), alive, member_arr, full=within is None
    )
    core = _np.zeros(graph.num_vertices, dtype=_np.int64)
    remaining = member_arr
    d = 1
    while remaining.size:
        frontier = _below_threshold(remaining, degree_arrays, d)
        if frontier.size:
            _peel_rounds(graph, (layer,), d, alive, frontier, degree_arrays)
            survivors = alive[remaining]
            core[remaining[~survivors]] = d - 1
            remaining = remaining[survivors]
        d += 1
    return dict(zip(members, core[member_arr].tolist()))
