"""Export multi-layer graphs for external visualisation.

Two formats cover the common tools:

* **DOT** (Graphviz) — one file per export, layers distinguished by edge
  colour; optional vertex colouring by class (the Fig. 31 red/green/blue
  rendering is ``to_dot(graph, classes=...)``);
* **GraphML** — one ``<graph>`` with a ``layer`` attribute per edge,
  loadable by Gephi/yEd/networkx.

Exports are plain text built with ``xml.sax.saxutils``-grade escaping —
no third-party dependency.
"""

from xml.sax.saxutils import escape, quoteattr

_PALETTE = (
    "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628",
    "#f781bf", "#999999", "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3",
)


def _dot_id(vertex):
    return '"{}"'.format(str(vertex).replace('"', r"\""))


def to_dot(graph, classes=None, class_colors=None, layers=None,
           name="multilayer"):
    """Render the graph as Graphviz DOT text.

    Parameters
    ----------
    classes:
        Optional ``{class_name: vertex_collection}`` colouring, e.g. the
        three cover-difference classes of Fig. 31.
    class_colors:
        Optional ``{class_name: color}``; defaults rotate a palette.
    layers:
        Optional subset of layers to draw (all by default).
    """
    layer_ids = list(graph.layers()) if layers is None else list(layers)
    lines = ["graph {} {{".format(name.replace(" ", "_"))]
    lines.append('  node [style=filled, fillcolor="#f0f0f0"];')

    color_of = {}
    if classes:
        names = list(classes)
        for index, class_name in enumerate(names):
            if class_colors and class_name in class_colors:
                color = class_colors[class_name]
            else:
                color = _PALETTE[index % len(_PALETTE)]
            for vertex in classes[class_name]:
                color_of[vertex] = color

    for vertex in sorted(graph.vertices(), key=str):
        if vertex in color_of:
            lines.append('  {} [fillcolor="{}"];'.format(
                _dot_id(vertex), color_of[vertex]
            ))
        else:
            lines.append("  {};".format(_dot_id(vertex)))

    for index, layer in enumerate(layer_ids):
        color = _PALETTE[index % len(_PALETTE)]
        for u, v in graph.edges(layer):
            lines.append('  {} -- {} [color="{}", layer="{}"];'.format(
                _dot_id(u), _dot_id(v), color, layer
            ))
    lines.append("}")
    return "\n".join(lines)


def write_dot(graph, path, **options):
    """Write :func:`to_dot` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_dot(graph, **options) + "\n")


def to_graphml(graph, name="multilayer"):
    """Render the graph as GraphML text with a ``layer`` edge attribute."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        '<graphml xmlns="http://graphml.graphdrawing.org/xmlns">',
        '  <key id="layer" for="edge" attr.name="layer" attr.type="int"/>',
        '  <graph id={} edgedefault="undirected">'.format(quoteattr(name)),
    ]
    for vertex in sorted(graph.vertices(), key=str):
        lines.append("    <node id={}/>".format(quoteattr(str(vertex))))
    edge_id = 0
    for layer in graph.layers():
        for u, v in graph.edges(layer):
            lines.append(
                '    <edge id="e{}" source={} target={}>'.format(
                    edge_id, quoteattr(str(u)), quoteattr(str(v))
                )
            )
            lines.append(
                '      <data key="layer">{}</data>'.format(layer)
            )
            lines.append("    </edge>")
            edge_id += 1
    lines.append("  </graph>")
    lines.append("</graphml>")
    return "\n".join(lines)


def write_graphml(graph, path, name="multilayer"):
    """Write :func:`to_graphml` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_graphml(graph, name=name) + "\n")


def ascii_layer_summary(graph, width=40):
    """A terminal-friendly bar chart of per-layer edge counts."""
    counts = [graph.num_edges(layer) for layer in graph.layers()]
    top = max(counts, default=0)
    lines = []
    for layer, count in enumerate(counts):
        bar = "#" * (round(width * count / top) if top else 0)
        lines.append("layer {:>3d} |{:<{width}s}| {}".format(
            layer, bar, count, width=width
        ))
    return "\n".join(lines)


def escape_label(text):
    """XML-escape a label (exposed for custom GraphML attributes)."""
    return escape(str(text))
