"""The frozen CSR backend of the multi-layer graph substrate.

:class:`FrozenMultiLayerGraph` is the second implementation of the graph
backend protocol (see :mod:`repro.graph.backend`).  Freezing maps every
vertex to a dense integer id ``0..n-1`` and stores each layer as a CSR
pair (``indptr``/``indices``, both :mod:`array`-backed), plus one
layer-membership bitmask per vertex (bit ``i`` set iff the vertex has at
least one edge on layer ``i``).

The payoff is in the peeling kernels at the bottom of this module:
:func:`frozen_layer_core` and :func:`frozen_coherent_core` replace the
dict-of-sets hashing of the reference backend with flat-array indexing
and ``bytearray`` membership flags, which is what the d-core and d-CC
inner loops of :mod:`repro.core` spend nearly all of their time on.

A frozen graph is immutable: the mutation methods of the dict backend
raise :class:`~repro.utils.errors.FrozenGraphError`.  Convert back with
:meth:`FrozenMultiLayerGraph.thaw` when mutation is needed.

Vertex vocabulary
-----------------
The vertices of a frozen graph *are* the dense ids — ``vertices()``
returns ``{0, ..., n-1}`` and every query speaks ids.  The original
labels survive in :attr:`labels`; :meth:`label_of`/:meth:`id_of` and
:meth:`labels_for` translate, and :func:`repro.core.api.search_dccs`
translates results back automatically when it froze the graph itself.
"""

from array import array
from bisect import bisect_left
from collections import OrderedDict
import sys
import threading as _threading

from repro.graph.kernels import buffer_nbytes, resolve_kernel
from repro.utils.errors import (
    FrozenGraphError,
    LayerIndexError,
    ParameterError,
    VertexError,
)

# Per-layer cap on the lazy neighbour-set cache (entries = vertices with
# a materialised frozenset of neighbours).  The cache exists because a
# C-level set intersection beats any pure-Python CSR walk on small
# induced-degree subsets, but each entry costs dict-backend-scale memory
# — unbounded, a long-lived session over a large graph would slowly
# rebuild the dict representation it froze to escape.  At the cap the
# least-recently-used entry is discarded; a re-touched vertex just
# rebuilds its set from the CSR row, so results never change.
DEFAULT_NEIGHBOR_SET_CAP = 32768


class _BoundedNeighborSets:
    """Per-vertex neighbour frozensets of one layer, LRU-bounded.

    Indexable like the plain list it replaces (``sets[v]`` for a dense
    vertex id); entries are built on demand from the CSR row and at most
    ``cap`` of them stay cached.
    """

    __slots__ = ("_indptr", "_nbrs", "_cap", "_entries")

    def __init__(self, indptr, nbrs, cap):
        self._indptr = indptr
        self._nbrs = nbrs
        self._cap = cap
        self._entries = OrderedDict()

    def __len__(self):
        return len(self._entries)

    def __getitem__(self, vertex):
        entries = self._entries
        try:
            value = entries[vertex]
        except KeyError:
            value = frozenset(
                self._nbrs[self._indptr[vertex]:self._indptr[vertex + 1]]
            )
            entries[vertex] = value
            if len(entries) > self._cap:
                entries.popitem(last=False)
        else:
            entries.move_to_end(vertex)
        return value

    def memory_bytes(self):
        """Resident bytes of the currently cached entries."""
        total = sys.getsizeof(self._entries)
        total += sum(sys.getsizeof(s) for s in self._entries.values())
        return total


class FrozenMultiLayerGraph:
    """An immutable, integer-vertex CSR view of a multi-layer graph.

    Build one with :meth:`from_graph` (or ``MultiLayerGraph.freeze()``).

    Attributes
    ----------
    labels:
        ``labels[i]`` — the original vertex object behind dense id ``i``.
    name:
        Carried over from the source graph.
    """

    __slots__ = (
        "name",
        "labels",
        "_ids",
        "_kernel",
        "_indptr",
        "_indices",
        "_edge_counts",
        "_layer_masks",
        "_nbr_lists",
        "_ptr_lists",
        "_deg_lists",
        "_nbr_sets",
        "_nbr_set_cap",
        "_adj_dicts",
        "_np_csrs",
        "_np_degs",
        "_vertex_set",
        "_thawed_cache",
    )

    def __init__(self, labels, indptr, indices, edge_counts, layer_masks,
                 name="", neighbor_set_cap=None, kernel="auto"):
        self.name = name
        self.labels = labels
        # Lazy: built on the first label lookup.  Identity-labelled
        # graphs (``labels`` a range, e.g. from the synthetic generator)
        # never build it at all, which matters at 10^6 vertices.
        self._ids = None
        self._kernel = resolve_kernel(kernel)
        self._indptr = indptr
        self._indices = indices
        self._edge_counts = edge_counts
        self._layer_masks = layer_masks
        # Lazy caches: plain-list mirrors of the CSR arrays for the hot
        # python kernels (list indexing beats array indexing in CPython)
        # and numpy views/degree vectors for the numpy kernel tier.
        self._nbr_lists = [None] * len(indptr)
        self._ptr_lists = [None] * len(indptr)
        self._deg_lists = [None] * len(indptr)
        self._nbr_sets = [None] * len(indptr)
        self._nbr_set_cap = DEFAULT_NEIGHBOR_SET_CAP \
            if neighbor_set_cap is None else neighbor_set_cap
        self._adj_dicts = [None] * len(indptr)
        self._np_csrs = [None] * len(indptr)
        self._np_degs = [None] * len(indptr)
        self._vertex_set = None
        self._thawed_cache = None

    # ------------------------------------------------------------------
    # construction / conversion
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph, name=None):
        """Freeze a :class:`~repro.graph.multilayer.MultiLayerGraph`.

        Vertices are assigned dense ids in sorted label order when the
        labels are mutually comparable, falling back to ``repr`` order —
        either way the id assignment is deterministic for a given graph.
        """
        labels = list(graph.vertices())
        try:
            labels.sort()
        except TypeError:
            labels.sort(key=repr)
        ids = {label: i for i, label in enumerate(labels)}
        n = len(labels)
        indptr = []
        indices = []
        edge_counts = []
        layer_masks = [0] * n
        for layer in graph.layers():
            ptr = array("i", [0]) * (n + 1)
            idx = array("i")
            total = 0
            bit = 1 << layer
            for i, label in enumerate(labels):
                neighbor_ids = sorted(
                    ids[u] for u in graph.neighbors(layer, label)
                )
                idx.extend(neighbor_ids)
                total += len(neighbor_ids)
                ptr[i + 1] = total
                if neighbor_ids:
                    layer_masks[i] |= bit
            indptr.append(ptr)
            indices.append(idx)
            edge_counts.append(total // 2)
        return cls(labels, indptr, indices, edge_counts, layer_masks,
                   name=graph.name if name is None else name)

    def patched(self, graph, touched_layers):
        """A new frozen view with only ``touched_layers`` re-frozen.

        ``graph`` must be the (mutated) source of this frozen graph with
        an *unchanged vertex set* — the dense-id assignment is derived
        from the sorted labels, so the caller (``MultiLayerGraph.freeze``)
        only patches for non-structural deltas.  Untouched layers share
        their CSR arrays with ``self`` (they are immutable); touched
        layers are rebuilt exactly as :meth:`from_graph` would build
        them, so the result is indistinguishable from a full re-freeze.
        """
        labels = self.labels
        n = len(labels)
        if type(labels) is range:
            def vertex_id(label):
                return label
        else:
            vertex_id = self._id_map().__getitem__
        indptr = list(self._indptr)
        indices = list(self._indices)
        edge_counts = list(self._edge_counts)
        layer_masks = list(self._layer_masks)
        for layer in sorted(set(touched_layers)):
            ptr = array("i", [0]) * (n + 1)
            idx = array("i")
            total = 0
            bit = 1 << layer
            for i, label in enumerate(labels):
                neighbor_ids = sorted(
                    vertex_id(u) for u in graph.neighbors(layer, label)
                )
                idx.extend(neighbor_ids)
                total += len(neighbor_ids)
                ptr[i + 1] = total
                if neighbor_ids:
                    layer_masks[i] |= bit
                else:
                    layer_masks[i] &= ~bit
            indptr[layer] = ptr
            indices[layer] = idx
            edge_counts[layer] = total // 2
        return type(self)(labels, indptr, indices, edge_counts, layer_masks,
                          name=self.name,
                          neighbor_set_cap=self._nbr_set_cap,
                          kernel=self._kernel)

    def freeze(self, name=None):
        """Idempotent convenience — a frozen graph freezes to itself."""
        return self

    def thaw(self, original_labels=True, name=None):
        """Rebuild a mutable dict-backend :class:`MultiLayerGraph`.

        With ``original_labels=True`` (default) the round trip
        ``graph.freeze().thaw() == graph`` holds exactly; with ``False``
        the thawed graph keeps the dense integer ids as its vertices.
        """
        from repro.graph.multilayer import MultiLayerGraph

        if original_labels:
            def out(i):
                return self.labels[i]
        else:
            def out(i):
                return i
        thawed = MultiLayerGraph(
            self.num_layers,
            vertices=(out(i) for i in range(self.num_vertices)),
            name=self.name if name is None else name,
        )
        for layer in self.layers():
            indptr = self._indptr[layer]
            indices = self._indices[layer]
            for v in range(self.num_vertices):
                for j in range(indptr[v], indptr[v + 1]):
                    u = int(indices[j])
                    if v < u:
                        thawed.add_edge(layer, out(v), out(u))
        return thawed

    def _search_thaw(self):
        """A shared, id-keyed dict-backend view for ``backend="dict"``.

        Cached — a frozen graph never changes, so the thaw cost is paid
        once per instance, mirroring the cached ``freeze()`` in the
        other direction.  Reserved for
        :func:`repro.graph.backend.resolve_search_graph`, whose callers
        only read the graph; code that wants a *mutable* copy must use
        :meth:`thaw`, which always returns a fresh one.
        """
        if self._thawed_cache is None:
            self._thawed_cache = self.thaw(original_labels=False)
        return self._thawed_cache

    # ------------------------------------------------------------------
    # id <-> label translation
    # ------------------------------------------------------------------

    def label_of(self, vertex):
        """The original label behind dense id ``vertex``."""
        return self.labels[self._require_vertex(vertex)]

    def _id_map(self):
        """The lazily built ``label -> dense id`` dict."""
        if self._ids is None:
            self._ids = {label: i for i, label in enumerate(self.labels)}
        return self._ids

    def id_of(self, label):
        """The dense id of an original label; raises on unknown labels."""
        labels = self.labels
        if type(labels) is range:
            # Identity labels: resolve arithmetically instead of
            # materialising an n-entry dict (range.index applies the
            # same hash-equality aliasing a dict lookup would).
            try:
                return labels.index(label)
            except (ValueError, TypeError):
                raise VertexError(label) from None
        try:
            return self._id_map()[label]
        except (KeyError, TypeError):
            raise VertexError(label) from None

    def ids_for(self, labels):
        """Translate an iterable of original labels to a set of ids."""
        return {self.id_of(label) for label in labels}

    def labels_for(self, vertices):
        """Translate an iterable of dense ids to a frozenset of labels."""
        labels = self.labels
        return frozenset(labels[v] for v in vertices)

    # ------------------------------------------------------------------
    # backend protocol: basic accessors
    # ------------------------------------------------------------------

    @property
    def is_frozen(self):
        """Marks this class as the CSR backend (see the backend protocol)."""
        return True

    @property
    def mutation_version(self):
        """Always ``0`` — a frozen graph cannot mutate, so artifacts
        derived from it never go stale (the dict backend's counterpart
        ticks on every mutation)."""
        return 0

    @property
    def kernel(self):
        """The active peel-kernel tier, ``"python"`` or ``"numpy"``.

        An execution preference, not part of the graph's identity: both
        tiers compute bitwise-identical results (see
        :mod:`repro.graph.kernels`), so switching kernels never
        invalidates caches or derived artifacts.
        """
        return self._kernel

    def set_kernel(self, kernel):
        """Select the peel-kernel tier; returns the resolved choice.

        ``"auto"`` resolves to ``"numpy"`` when numpy is importable;
        an explicit ``"numpy"`` without numpy raises
        :class:`~repro.utils.errors.ParameterError`.
        """
        self._kernel = resolve_kernel(kernel)
        return self._kernel

    @property
    def num_layers(self):
        return len(self._indptr)

    @property
    def num_vertices(self):
        return len(self.labels)

    def vertices(self):
        """Return a new set of all vertex ids, ``{0, ..., n-1}``."""
        return set(range(self.num_vertices))

    def vertex_set(self):
        """A cached frozenset of all vertex ids (do not mutate)."""
        if self._vertex_set is None:
            self._vertex_set = frozenset(range(self.num_vertices))
        return self._vertex_set

    def _vertex_id(self, vertex):
        """The dense int id behind ``vertex``, or ``None``.

        Any object that compares equal to an in-range integer aliases
        that vertex (``True`` → 1, ``2.0`` → 2), because a dict backend
        over integer vertices resolves such objects by hash equality —
        both backends must agree on membership.
        """
        if isinstance(vertex, int):
            return vertex if 0 <= vertex < self.num_vertices else None
        try:
            as_int = int(vertex)
        except (TypeError, ValueError, OverflowError):
            return None
        if as_int == vertex and 0 <= as_int < self.num_vertices:
            return as_int
        return None

    def has_vertex(self, vertex):
        """Whether ``vertex`` resolves to a dense id of this graph."""
        return self._vertex_id(vertex) is not None

    def __contains__(self, vertex):
        return self.has_vertex(vertex)

    def __len__(self):
        return self.num_vertices

    def __iter__(self):
        return iter(range(self.num_vertices))

    def layers(self):
        return range(self.num_layers)

    def _check_layer(self, layer):
        if not 0 <= layer < self.num_layers:
            raise LayerIndexError(layer, self.num_layers)

    def _check_vertex(self, vertex):
        if not self.has_vertex(vertex):
            raise VertexError(vertex)

    def _require_vertex(self, vertex):
        """Coerce to a dense int id, raising :class:`VertexError`."""
        vertex_id = self._vertex_id(vertex)
        if vertex_id is None:
            raise VertexError(vertex)
        return vertex_id

    # ------------------------------------------------------------------
    # backend protocol: queries
    # ------------------------------------------------------------------

    def neighbors(self, layer, vertex):
        """The neighbour ids of ``vertex`` on ``layer`` as a frozenset.

        Set-valued like the dict backend's ``neighbors``, so existing
        consumers that apply set operators (``&``, ``|=``) keep working.
        Backed by the lazy per-layer neighbour-set cache; the peeling
        kernels bypass this and walk the raw CSR rows instead.
        """
        self._check_layer(layer)
        return self._neighbor_sets(layer)[self._require_vertex(vertex)]

    def neighbor_row(self, layer):
        """A per-layer row accessor: ``row(v)`` → sequence of neighbours.

        The protocol's bulk-cascade primitive: callers that pop many
        vertices in a peeling loop hoist one ``row`` per layer instead
        of paying a checked :meth:`neighbors` call per pop.  This
        backend returns raw CSR row slices — no set materialisation.
        """
        self._check_layer(layer)
        indptr = self._indptr_list(layer)
        nbrs = self._neighbor_list(layer)

        def row(vertex):
            return nbrs[indptr[vertex]:indptr[vertex + 1]]

        return row

    def adjacency(self, layer):
        """A read-only ``{id: frozenset(neighbour ids)}`` dict of ``layer``.

        Lazily materialised and cached, so dict-path code written against
        ``MultiLayerGraph.adjacency`` runs unchanged on a frozen graph —
        a compatibility path, not a fast path (the CSR kernels never use
        it).
        """
        self._check_layer(layer)
        cached = self._adj_dicts[layer]
        if cached is None:
            # Built straight from the CSR rows rather than through the
            # bounded neighbour-set cache: a full-graph sweep would
            # otherwise thrash the LRU without ever hitting it.
            indptr = self._indptr_list(layer)
            nbrs = self._neighbor_list(layer)
            cached = {
                v: frozenset(nbrs[indptr[v]:indptr[v + 1]])
                for v in range(self.num_vertices)
            }
            self._adj_dicts[layer] = cached
        return cached

    def degree(self, layer, vertex):
        self._check_layer(layer)
        vertex = self._require_vertex(vertex)
        indptr = self._indptr[layer]
        # int() keeps the return type a plain int when the CSR buffers
        # are numpy-backed (generator- or payload-built graphs).
        return int(indptr[vertex + 1] - indptr[vertex])

    def min_degree_over(self, layers, vertex):
        return min(self.degree(layer, vertex) for layer in layers)

    def has_edge(self, layer, u, v):
        """Edge test by binary search in the sorted CSR row of ``u``."""
        self._check_layer(layer)
        u = self._vertex_id(u)
        v = self._vertex_id(v)
        if u is None or v is None:
            return False
        indptr = self._indptr[layer]
        indices = self._indices[layer]
        lo, hi = indptr[u], indptr[u + 1]
        position = bisect_left(indices, v, lo, hi)
        return position < hi and indices[position] == v

    def induced_degrees(self, layer, within=None):
        """``{v: deg_layer(v) within the subset}`` — the protocol's bulk query."""
        self._check_layer(layer)
        if self._kernel == "numpy":
            from repro.graph.kernels import np_induced_degrees

            return np_induced_degrees(self, layer, within=within)
        if within is None:
            degrees = self._degree_list(layer)
            return {v: degrees[v] for v in range(self.num_vertices)}
        n = self.num_vertices
        alive = bytearray(n)
        members = []
        for v in within:
            v = self._vertex_id(v)
            if v is not None and not alive[v]:
                alive[v] = 1
                members.append(v)
        # Same two-strategy kernel as the peels; the flag-walk sparse
        # branch keeps this cold path from materialising the per-layer
        # neighbour-set cache.
        (degrees,) = _induced_degree_lists(
            self, (layer,), alive, members, full=False, use_set_cache=False
        )
        return {v: degrees[v] for v in members}

    def layer_mask(self, vertex):
        """The membership bitmask: bit ``i`` set iff ``deg_i(vertex) > 0``."""
        return self._layer_masks[self._require_vertex(vertex)]

    def layers_of(self, vertex):
        """The layers on which ``vertex`` has at least one edge."""
        mask = self.layer_mask(vertex)
        return frozenset(
            layer for layer in range(self.num_layers) if mask >> layer & 1
        )

    def num_edges(self, layer):
        self._check_layer(layer)
        return self._edge_counts[layer]

    def total_edges(self):
        return sum(self._edge_counts)

    def edges(self, layer):
        """Yield each edge once as an id pair ``(u, v)`` with ``u < v``."""
        self._check_layer(layer)
        indptr = self._indptr[layer]
        indices = self._indices[layer]
        for v in range(self.num_vertices):
            for j in range(indptr[v], indptr[v + 1]):
                u = int(indices[j])
                if v < u:
                    yield (v, u)

    def all_edges(self):
        for layer in self.layers():
            for u, v in self.edges(layer):
                yield (layer, u, v)

    def union_edge_count(self):
        n = self.num_vertices
        seen = set()
        for layer in self.layers():
            for u, v in self.edges(layer):
                seen.add(u * n + v)
        return len(seen)

    def summary(self):
        """The Fig. 12 statistics columns, same keys as the dict backend."""
        return {
            "name": self.name,
            "vertices": self.num_vertices,
            "total_edges": self.total_edges(),
            "union_edges": self.union_edge_count(),
            "layers": self.num_layers,
        }

    def memory_bytes(self):
        """Rough resident size: CSR arrays, label table, built caches.

        Honest for both storage forms: ``array.array`` buffers are
        counted as ``itemsize * len`` and numpy-backed buffers as
        ``ndarray.nbytes`` (:func:`repro.graph.kernels.buffer_nbytes`),
        so host ``memory_budget_bytes`` admission control sees the same
        bytes either way.  The numpy kernel tier's cached views share
        the CSR storage and are not double-counted; its owned per-layer
        degree vectors are.
        """
        total = 0
        for ptr, idx in zip(self._indptr, self._indices):
            total += buffer_nbytes(ptr) + buffer_nbytes(idx)
        total += sys.getsizeof(self.labels)
        if type(self.labels) is not range:
            total += sum(sys.getsizeof(label) for label in self.labels)
        total += sys.getsizeof(self._ids)
        total += sys.getsizeof(self._layer_masks)
        for cache in (self._nbr_lists, self._ptr_lists, self._deg_lists):
            for mirror in cache:
                if mirror is not None:
                    total += sys.getsizeof(mirror)
        for degrees in self._np_degs:
            if degrees is not None:
                total += degrees.nbytes
        for sets in self._nbr_sets:
            if sets is not None:
                total += sets.memory_bytes()
        for adj in self._adj_dicts:
            if adj is not None:
                total += sys.getsizeof(adj)
                total += sum(sys.getsizeof(s) for s in adj.values())
        return total

    # ------------------------------------------------------------------
    # immutability guards
    # ------------------------------------------------------------------

    def _refuse(self, operation):
        raise FrozenGraphError(operation)

    def add_vertex(self, vertex):
        self._refuse("add_vertex")

    def add_vertices(self, vertices):
        self._refuse("add_vertices")

    def add_edge(self, layer, u, v):
        self._refuse("add_edge")

    def add_edges(self, layer, edges):
        self._refuse("add_edges")

    def remove_edge(self, layer, u, v):
        self._refuse("remove_edge")

    def remove_vertex(self, vertex):
        self._refuse("remove_vertex")

    def remove_vertices(self, vertices):
        self._refuse("remove_vertices")

    # ------------------------------------------------------------------
    # internals shared with the peeling kernels
    # ------------------------------------------------------------------

    def _neighbor_list(self, layer):
        """The CSR ``indices`` of ``layer`` as a cached plain list."""
        cached = self._nbr_lists[layer]
        if cached is None:
            cached = self._indices[layer].tolist()
            self._nbr_lists[layer] = cached
        return cached

    def _indptr_list(self, layer):
        """The CSR ``indptr`` of ``layer`` as a cached plain list."""
        cached = self._ptr_lists[layer]
        if cached is None:
            cached = self._indptr[layer].tolist()
            self._ptr_lists[layer] = cached
        return cached

    def _neighbor_sets(self, layer):
        """Per-vertex neighbour sets of ``layer`` (lazy, LRU-bounded).

        Used by the small-subset branch of the induced-degree
        computation, where a C-level set intersection beats any
        pure-Python walk of the CSR row, and by the checked
        :meth:`neighbors` accessor.  Entries cost roughly the dict
        backend's memory per vertex, so at most ``_nbr_set_cap`` of them
        stay resident per layer (:class:`_BoundedNeighborSets`); an
        evicted vertex rebuilds its set from the CSR row on next touch.
        """
        cached = self._nbr_sets[layer]
        if cached is None:
            cached = _BoundedNeighborSets(
                self._indptr_list(layer), self._neighbor_list(layer),
                self._nbr_set_cap,
            )
            self._nbr_sets[layer] = cached
        return cached

    def _degree_list(self, layer):
        """Full-graph degrees of ``layer`` as a cached plain list."""
        cached = self._deg_lists[layer]
        if cached is None:
            # Derived from the plain-list indptr mirror so the entries
            # are plain ints even on numpy-backed storage.
            indptr = self._indptr_list(layer)
            cached = [
                indptr[v + 1] - indptr[v] for v in range(self.num_vertices)
            ]
            self._deg_lists[layer] = cached
        return cached

    def _np_csr(self, layer):
        """Cached numpy int views of ``layer``'s CSR pair.

        Zero-copy: ``array.array`` storage is viewed through
        ``np.frombuffer``; numpy-backed storage passes through.  Only
        the numpy kernel tier calls this.
        """
        cached = self._np_csrs[layer]
        if cached is None:
            from repro.graph.kernels import as_index_array

            cached = (as_index_array(self._indptr[layer]),
                      as_index_array(self._indices[layer]))
            self._np_csrs[layer] = cached
        return cached

    def _np_degrees(self, layer):
        """Full-graph degrees of ``layer`` as a cached int64 ndarray."""
        cached = self._np_degs[layer]
        if cached is None:
            import numpy as np

            indptr = self._np_csr(layer)[0].astype(np.int64)
            cached = indptr[1:] - indptr[:-1]
            self._np_degs[layer] = cached
        return cached

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, FrozenMultiLayerGraph):
            return NotImplemented
        if self.num_layers != other.num_layers or \
                self.num_vertices != other.num_vertices:
            return False
        # Normalise before comparing: labels may be a list or a range,
        # CSR buffers may be array.array or numpy-backed — equal content
        # means equal graph regardless of storage (and of kernel tier,
        # which is an execution preference, not identity).
        if list(self.labels) != list(other.labels):
            return False
        for mine, theirs in ((self._indptr, other._indptr),
                             (self._indices, other._indices)):
            for a, b in zip(mine, theirs):
                if a is not b and a.tolist() != b.tolist():
                    return False
        return True

    def __ne__(self, other):
        equal = self.__eq__(other)
        return NotImplemented if equal is NotImplemented else not equal

    def __repr__(self):
        label = " {!r}".format(self.name) if self.name else ""
        return "FrozenMultiLayerGraph({} layers, {} vertices, {} edges{})".format(
            self.num_layers, self.num_vertices, self.total_edges(), label
        )


# ----------------------------------------------------------------------
# scratch buffer reuse for the peeling kernels
# ----------------------------------------------------------------------


class ScratchArena:
    """Reusable scratch buffers for the frozen peel kernels.

    Every peel allocates O(n) working state — alive/queued flag
    bytearrays and one degree list per layer.  Under a query-serving
    session those allocations repeat with identical shapes thousands of
    times, so the arena keeps one buffer per *role* (``"alive"``,
    ``"queued"``, ``("deg", i)``) and resets it with a C-speed slice
    copy from a cached template instead of reallocating.

    Safety rests on two facts the kernels guarantee: no buffer outlives
    its kernel invocation (results are materialised into fresh
    sets/dicts before return), and no two live usages share a role —
    kernels run to completion without re-entering one another.  The
    arena is therefore single-threaded by construction; activate at most
    one per thread of execution.

    Activate ambiently with ``with arena: ...`` (the kernels pick it up
    via :func:`active_scratch`), or pass ``arena=`` explicitly.  An
    engine owns one arena per orchestrator and one per pooled worker
    process.
    """

    __slots__ = ("_n", "_byte_zero", "_byte_one", "_int_zero",
                 "_flag_bufs", "_int_bufs", "_previous", "reuses")

    def __init__(self):
        self._n = -1
        self._byte_zero = b""
        self._byte_one = b""
        self._int_zero = []
        self._flag_bufs = {}
        self._int_bufs = {}
        self._previous = None
        self.reuses = 0

    def _fit(self, n):
        """(Re)build the reset templates when the vertex count changes."""
        if n != self._n:
            self._n = n
            self._byte_zero = bytes(n)
            self._byte_one = b"\x01" * n
            self._int_zero = [0] * n
            self._flag_bufs.clear()
            self._int_bufs.clear()

    def flags(self, role, n, fill=0):
        """A length-``n`` bytearray for ``role``, every byte ``fill``."""
        self._fit(n)
        template = self._byte_one if fill else self._byte_zero
        buf = self._flag_bufs.get(role)
        if buf is None:
            buf = bytearray(template)
            self._flag_bufs[role] = buf
        else:
            buf[:] = template
            self.reuses += 1
        return buf

    def int_row(self, role, n):
        """A length-``n`` list of zeros for ``role``."""
        return self._int_fill(role, self._int_zero, n)

    def int_copy(self, role, source):
        """A list holding a copy of ``source`` (replaces ``list(source)``)."""
        return self._int_fill(role, source, len(source))

    def _int_fill(self, role, template, n):
        self._fit(n)
        buf = self._int_bufs.get(role)
        if buf is None:
            buf = list(template)
            self._int_bufs[role] = buf
        else:
            buf[:] = template
            self.reuses += 1
        return buf

    def __enter__(self):
        self._previous = activate_scratch(self)
        return self

    def __exit__(self, *exc):
        activate_scratch(self._previous)
        self._previous = None
        return False


_ACTIVE_ARENA = _threading.local()


def activate_scratch(arena):
    """Install ``arena`` as the ambient scratch arena; returns the old one.

    The ambient slot is **per thread**: the async serving layer collects
    searches of different engines on different executor threads, and a
    process-wide slot would hand one engine's buffers to another
    mid-peel.  Each thread sees only the arena it activated.
    """
    previous = getattr(_ACTIVE_ARENA, "arena", None)
    _ACTIVE_ARENA.arena = arena
    return previous


def active_scratch():
    """The calling thread's ambient :class:`ScratchArena`, or ``None``."""
    return getattr(_ACTIVE_ARENA, "arena", None)


# ----------------------------------------------------------------------
# flat-array peeling kernels (the frozen fast paths of repro.core)
# ----------------------------------------------------------------------


def _alive_members(graph, within, arena=None):
    """``(alive bytearray, member sequence)`` for an optional vertex subset."""
    n = graph.num_vertices
    if within is None:
        if arena is not None:
            return arena.flags("alive", n, fill=1), range(n)
        return bytearray(b"\x01") * n, range(n)
    if not isinstance(within, (set, frozenset, list, tuple, range, dict)):
        # One-shot iterators must be materialised: the TypeError
        # fallback below re-iterates from the start.
        within = list(within)
    alive = arena.flags("alive", n) if arena is not None else bytearray(n)
    members = []
    append = members.append
    try:
        for v in within:
            if 0 <= v < n and not alive[v]:
                alive[v] = 1
                append(v)
    except TypeError:
        # Non-integer objects in the subset: mirror the dict backend —
        # anything hash-equal to an in-range int aliases that vertex,
        # everything else is silently dropped.  Restart with the
        # coercing loop since the fast pass may have stopped midway.
        alive = arena.flags("alive", n) if arena is not None \
            else bytearray(n)
        members = []
        for v in within:
            v = graph._vertex_id(v)
            if v is not None and not alive[v]:
                alive[v] = 1
                members.append(v)
    return alive, members


def _degree_row(arena, role, source):
    """A mutable copy of ``source``, arena-recycled when one is active."""
    if arena is not None:
        return arena.int_copy(role, source)
    return list(source)


def _induced_degree_lists(graph, layer_tuple, alive, members, full,
                          use_set_cache=True, arena=None):
    """Per-layer degree lists restricted to the alive flags.

    Strategies with the same result: when most of the graph is alive
    (the common case for search bounds and potentials) copy the cached
    full-graph degrees and subtract each dead vertex's incidence —
    O(n + sum deg(dead)); otherwise count alive neighbours per member —
    via C-speed set intersections by default, or via a plain flag walk
    with ``use_set_cache=False`` for cold paths that should not
    materialise the per-layer neighbour-set cache.  Entries for dead
    vertices are garbage either way; the peel kernels never read them.
    """
    if full:
        return [
            _degree_row(arena, ("deg", i), graph._degree_list(layer))
            for i, layer in enumerate(layer_tuple)
        ]
    n = graph.num_vertices
    degree_lists = []
    if 2 * len(members) > n:
        dead = [v for v in range(n) if not alive[v]]
        for i, layer in enumerate(layer_tuple):
            indptr = graph._indptr_list(layer)
            nbrs = graph._neighbor_list(layer)
            degrees = _degree_row(arena, ("deg", i),
                                  graph._degree_list(layer))
            for w in dead:
                for u in nbrs[indptr[w]:indptr[w + 1]]:
                    degrees[u] -= 1
            degree_lists.append(degrees)
        return degree_lists
    if use_set_cache:
        member_set = set(members)
        for i, layer in enumerate(layer_tuple):
            neighbor_sets = graph._neighbor_sets(layer)
            degrees = arena.int_row(("deg", i), n) if arena is not None \
                else [0] * n
            for v in members:
                degrees[v] = len(neighbor_sets[v] & member_set)
            degree_lists.append(degrees)
        return degree_lists
    flag = alive.__getitem__
    for i, layer in enumerate(layer_tuple):
        indptr = graph._indptr_list(layer)
        nbrs = graph._neighbor_list(layer)
        degrees = arena.int_row(("deg", i), n) if arena is not None \
            else [0] * n
        for v in members:
            degrees[v] = sum(map(flag, nbrs[indptr[v]:indptr[v + 1]]))
        degree_lists.append(degrees)
    return degree_lists


def frozen_layer_core(graph, layer, d, within=None, arena=None):
    """Single-layer d-core on the CSR representation; a set of ids.

    Dispatches on the graph's kernel tier: the numpy gather/scatter
    kernel (:func:`repro.graph.kernels.np_layer_core`) when active,
    otherwise the pure-Python cascade below, whose bucket-free FIFO
    mirrors :func:`repro.core.dcore.d_core` exactly with ``bytearray``
    flags in place of the ``alive`` and ``in_queue`` sets and flat lists
    in place of the degree dict.  Both tiers return the same set.
    ``arena`` recycles the python tier's O(n) scratch state (defaults to
    the ambient :func:`active_scratch`); it never affects the result.
    """
    if d < 0:
        raise ParameterError("d must be non-negative, got {}".format(d))
    graph._check_layer(layer)
    if graph.kernel == "numpy":
        from repro.graph.kernels import np_layer_core

        return np_layer_core(graph, layer, d, within=within)
    if arena is None:
        arena = active_scratch()
    alive, members = _alive_members(graph, within, arena=arena)
    if d == 0:
        return set(members)
    (degrees,) = _induced_degree_lists(
        graph, (layer,), alive, members, full=within is None, arena=arena
    )
    indptr = graph._indptr_list(layer)
    nbrs = graph._neighbor_list(layer)
    queue = [v for v in members if degrees[v] < d]
    # No explicit in-queue flags: a vertex enqueues exactly when its
    # degree transitions onto d-1, which happens at most once because
    # degrees only ever decrease.  Vertices below d from the start are
    # seeded above and can never hit the transition again.
    trigger = d - 1
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        alive[v] = 0
        for u in nbrs[indptr[v]:indptr[v + 1]]:
            if alive[u]:
                new_degree = degrees[u] - 1
                degrees[u] = new_degree
                if new_degree == trigger:
                    queue.append(u)
    return {v for v in members if alive[v]}


def frozen_coherent_core(graph, layer_tuple, d, within=None, stats=None,
                         arena=None):
    """Multi-layer cascade peel on the CSR representation; a frozenset.

    Mirrors :func:`repro.core.dcc.coherent_core` (same peel counters,
    same unique fixed point, same validation) with flat-array state.
    Dispatches to :func:`repro.graph.kernels.np_coherent_core` when the
    graph's numpy kernel tier is active — same fixed point, same
    ``peel_operations`` count (one per removed vertex).  ``arena``
    recycles the python tier's O(n) scratch state (defaults to the
    ambient :func:`active_scratch`); it never affects the result.
    """
    if d < 0:
        raise ParameterError("d must be non-negative, got {}".format(d))
    for layer in layer_tuple:
        graph._check_layer(layer)
    if graph.kernel == "numpy":
        from repro.graph.kernels import np_coherent_core

        return np_coherent_core(graph, layer_tuple, d, within=within,
                                stats=stats)
    if arena is None:
        arena = active_scratch()
    alive, members = _alive_members(graph, within, arena=arena)
    if d == 0:
        return frozenset(members)
    degree_lists = _induced_degree_lists(
        graph, layer_tuple, alive, members, full=within is None, arena=arena
    )
    per_layer = [
        (graph._indptr_list(layer), graph._neighbor_list(layer), degrees)
        for layer, degrees in zip(layer_tuple, degree_lists)
    ]
    queue = []
    queued = arena.flags("queued", graph.num_vertices) \
        if arena is not None else bytearray(graph.num_vertices)
    for v in members:
        for degrees in degree_lists:
            if degrees[v] < d:
                queue.append(v)
                queued[v] = 1
                break
    head = 0
    while head < len(queue):
        v = queue[head]
        head += 1
        alive[v] = 0
        if stats is not None:
            stats.peel_operations += 1
        for indptr, nbrs, degrees in per_layer:
            for u in nbrs[indptr[v]:indptr[v + 1]]:
                if alive[u] and not queued[u]:
                    new_degree = degrees[u] - 1
                    degrees[u] = new_degree
                    if new_degree < d:
                        queue.append(u)
                        queued[u] = 1
    return frozenset(v for v in members if alive[v])
