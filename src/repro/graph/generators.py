"""Synthetic multi-layer graph generators.

The paper evaluates on six real datasets (PPI, Author, German, Wiki,
English, Stack) that are not redistributable offline, so the experiment
harness runs on synthetic stand-ins produced here.  The key structural
features the DCCS algorithms are sensitive to are all reproduced:

* **planted coherent communities** — vertex groups that are densely
  connected on a chosen subset of layers, i.e. ground-truth d-CCs that
  recur on some but not all layers (this is what diversification competes
  over);
* **background noise** — sparse Erdős–Rényi edges per layer, mimicking the
  spurious interactions the introduction motivates filtering out;
* **heavy-tailed degree layers** — a Chung-Lu-style power-law layer
  generator for realism in the scalability experiments.

All generators are deterministic given a seed.
"""

from repro.graph.multilayer import MultiLayerGraph
from repro.utils.errors import ParameterError
from repro.utils.rng import make_rng


def erdos_renyi_layers(num_vertices, num_layers, edge_probability, seed=None, name=""):
    """Independent G(n, p) on every layer over a shared vertex set.

    Edges are sampled with the standard geometric skipping trick so the cost
    is proportional to the number of edges, not ``n^2``, which matters for
    the scalability benchmarks.
    """
    if not 0.0 <= edge_probability <= 1.0:
        raise ParameterError("edge_probability must be in [0, 1]")
    rng = make_rng(seed)
    graph = MultiLayerGraph(num_layers, vertices=range(num_vertices), name=name)
    if edge_probability == 0.0 or num_vertices < 2:
        return graph
    for layer in range(num_layers):
        _sample_gnp_edges(graph, layer, num_vertices, edge_probability, rng)
    return graph


def _sample_gnp_edges(graph, layer, num_vertices, probability, rng):
    """Add G(n, p) edges to one layer using geometric edge skipping."""
    import math

    if probability >= 1.0:
        for u in range(num_vertices):
            for v in range(u + 1, num_vertices):
                graph.add_edge(layer, u, v)
        return
    log_q = math.log(1.0 - probability)
    v = 1
    w = -1
    while v < num_vertices:
        draw = rng.random()
        w = w + 1 + int(math.log(1.0 - draw) / log_q)
        while w >= v and v < num_vertices:
            w -= v
            v += 1
        if v < num_vertices:
            graph.add_edge(layer, v, w)


def chung_lu_layers(num_vertices, num_layers, average_degree, exponent=2.5,
                    seed=None, name=""):
    """Power-law (Chung-Lu) layers: heavy-tailed degrees, independent layers.

    Every vertex gets a weight ``w_v ~ v^{-1/(exponent-1)}`` scaled so the
    expected average degree matches ``average_degree``; an edge ``(u, v)``
    appears with probability ``min(1, w_u w_v / sum(w))`` independently per
    layer.
    """
    if average_degree <= 0:
        raise ParameterError("average_degree must be positive")
    rng = make_rng(seed)
    power = 1.0 / (exponent - 1.0)
    weights = [(i + 1) ** (-power) for i in range(num_vertices)]
    total = sum(weights)
    scale = average_degree * num_vertices / total
    weights = [w * scale for w in weights]
    total = sum(weights)
    graph = MultiLayerGraph(num_layers, vertices=range(num_vertices), name=name)
    # Expected-degree sampling per Chung-Lu; vertices sorted by weight lets
    # us truncate the inner loop once probabilities become negligible.
    for layer in range(num_layers):
        for u in range(num_vertices):
            for v in range(u + 1, num_vertices):
                p = weights[u] * weights[v] / total
                if p < 1e-4 and v > u + 50:
                    # Weights decrease with the index, so all later pairs
                    # are even less likely; skip the tail.
                    break
                if rng.random() < min(1.0, p):
                    graph.add_edge(layer, u, v)
    return graph


def planted_communities(num_vertices, num_layers, communities, background=0.0,
                        seed=None, name=""):
    """Plant dense coherent communities into a noisy multi-layer graph.

    Parameters
    ----------
    communities:
        Iterable of ``(members, layers, p_in)`` triples: ``members`` is an
        iterable of vertex ids, ``layers`` the layer indices on which the
        community is dense, and ``p_in`` the within-community edge
        probability on those layers.
    background:
        G(n, p) noise probability applied to every layer.

    Returns
    -------
    (graph, planted):
        ``planted`` is the list of ``frozenset`` community member sets, used
        by the protein-complex recovery experiment (Fig. 32) as ground
        truth.
    """
    rng = make_rng(seed)
    graph = MultiLayerGraph(num_layers, vertices=range(num_vertices), name=name)
    if background > 0.0:
        for layer in range(num_layers):
            _sample_gnp_edges(graph, layer, num_vertices, background, rng)
    planted = []
    for members, layers, p_in in communities:
        members = sorted(set(members))
        for vertex in members:
            if not 0 <= vertex < num_vertices:
                raise ParameterError(
                    "community member {} outside range(0, {})".format(
                        vertex, num_vertices
                    )
                )
        for layer in layers:
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    if rng.random() < p_in:
                        graph.add_edge(layer, u, v)
        planted.append(frozenset(members))
    return graph, planted


def random_coherent_graph(num_vertices, num_layers, num_communities,
                          community_size, layers_per_community,
                          p_in=0.9, background=0.002, seed=None, name=""):
    """A fully random planted-community instance (the workhorse generator).

    Communities get random (possibly overlapping) member sets and random
    layer subsets; see :func:`planted_communities` for the construction.
    Returns ``(graph, planted)``.
    """
    rng = make_rng(seed)
    if community_size > num_vertices:
        raise ParameterError("community_size cannot exceed num_vertices")
    if layers_per_community > num_layers:
        raise ParameterError("layers_per_community cannot exceed num_layers")
    specs = []
    population = list(range(num_vertices))
    layer_ids = list(range(num_layers))
    for _ in range(num_communities):
        members = rng.sample(population, community_size)
        layers = rng.sample(layer_ids, layers_per_community)
        specs.append((members, layers, p_in))
    return planted_communities(
        num_vertices, num_layers, specs,
        background=background, seed=rng, name=name,
    )


def temporal_snapshots(num_vertices, num_layers, events_per_layer,
                       entities_per_event=6, p_in=0.85, churn=0.3,
                       seed=None, name=""):
    """Social-media-style snapshot layers (Application 2 of the paper).

    Each layer is a time snapshot.  A set of "stories" (entity groups) is
    created; each story persists over a window of consecutive snapshots and
    its entities are densely linked while it is active.  ``churn`` controls
    how quickly stories are born and die, so nearby layers share stories —
    exactly the temporal correlation of the KONECT/SNAP datasets.

    Returns ``(graph, stories)`` where ``stories`` maps each planted entity
    group to the layer window it spans.
    """
    rng = make_rng(seed)
    graph = MultiLayerGraph(num_layers, vertices=range(num_vertices), name=name)
    stories = []
    active = []
    population = list(range(num_vertices))
    for layer in range(num_layers):
        # Retire stories with probability `churn`, then replenish.
        active = [story for story in active if rng.random() > churn]
        while len(active) < events_per_layer:
            members = frozenset(rng.sample(population, entities_per_event))
            active.append({"members": members, "start": layer, "end": layer})
        for story in active:
            story["end"] = layer
            members = sorted(story["members"])
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    if rng.random() < p_in:
                        graph.add_edge(layer, u, v)
        stories.extend(
            story for story in active if story not in stories
        )
    summary = [
        (story["members"], (story["start"], story["end"])) for story in stories
    ]
    return graph, summary


def paper_figure1_graph():
    """The running example of Fig. 1: a 4-layer graph on 14 vertices.

    The figure shows vertices ``a..j, k, m, n, x, y`` with a large block
    ``{a..i}`` that is densely connected on every layer, a sparse appendage
    ``{g, h, i, j}``, and satellite vertices.  The arXiv source does not
    list the exact edges, so this is a faithful reconstruction that
    reproduces every claim made about the example:

    * ``{a..i}`` induces a 3-dense subgraph on all four layers;
    * ``{g, h, i, j}`` is sparsely connected (j has degree <= 2 everywhere);
    * for d=3, s=2, k=2 the top-2 diversified d-CCs are
      ``C_{1,3} = {a..i, y, m}`` and ``C_{2,4} = {a..i, m, n, k}``.

    The paper states ``|Cov(R)| = 14`` for this example, but the union of
    the two sets it lists has 13 vertices (11 + 12 with an overlap of 10)
    — an arithmetic slip in the paper; this construction reproduces the
    listed sets exactly.
    """
    vertices = list("abcdefghi") + ["j", "k", "m", "n", "x", "y"]
    graph = MultiLayerGraph(4, vertices=vertices, name="figure1")

    # The dense block {a..i}: a circulant where each vertex links to the
    # next three around the ring, giving degree 6 >= 3 on every layer.
    block = list("abcdefghi")
    for layer in range(4):
        for i in range(len(block)):
            for step in (1, 2, 3):
                graph.add_edge(layer, block[i], block[(i + step) % len(block)])

    # The sparse appendage {g, h, i, j}: j attaches with only two edges.
    for layer in range(4):
        graph.add_edge(layer, "j", "g")
        graph.add_edge(layer, "j", "h")

    # Satellites: y and m are 3-dense with the block only on layers 1 and 3
    # (0-indexed: 0 and 2); m, n and k only on layers 2 and 4 (1 and 3).
    for layer in (0, 2):
        for satellite in ("y", "m"):
            graph.add_edge(layer, satellite, "a")
            graph.add_edge(layer, satellite, "b")
            graph.add_edge(layer, satellite, "c")
        graph.add_edge(layer, "y", "m")
    for layer in (1, 3):
        for satellite in ("m", "n", "k"):
            graph.add_edge(layer, satellite, "d")
            graph.add_edge(layer, satellite, "e")
            graph.add_edge(layer, satellite, "f")
        graph.add_edge(layer, "m", "n")
        graph.add_edge(layer, "n", "k")
        graph.add_edge(layer, "k", "m")

    # x is a low-degree satellite that never joins a 3-CC.
    for layer in range(4):
        graph.add_edge(layer, "x", "a")
    return graph
