"""Multi-layer graph substrate: backends, builders, I/O, generators.

Two interchangeable graph backends implement the narrow protocol that the
search stack in :mod:`repro.core` runs against (``degree``, ``neighbors``,
``induced_degrees``, ``layers_of`` plus size accessors — the full table is
in :mod:`repro.graph.backend`):

* :class:`MultiLayerGraph` — the mutable dict-of-sets reference backend;
  arbitrary hashable vertices, O(1) edge tests, incremental updates.
* :class:`FrozenMultiLayerGraph` — an immutable CSR backend over dense
  integer ids with per-vertex layer-membership bitmasks, built with
  ``graph.freeze()`` and reversed with ``frozen.thaw()``.

When to freeze: any read-heavy workload that runs many peeling passes over
a graph that no longer changes — which is every DCCS search — benefits
from freezing once the graph has a few hundred vertices; the flat-array
peel kernels in :mod:`repro.graph.frozen` then replace every hash lookup
of the hot loops with list indexing.  ``search_dccs(backend="auto")``
applies exactly that rule automatically.
"""

from repro.graph.analysis import (
    core_size_profile,
    layer_edge_jaccard,
    layer_similarity_matrix,
    layer_statistics,
    recommend_support,
    support_histogram,
)
from repro.graph.builders import (
    from_adjacency,
    from_edge_lists,
    from_networkx_layers,
    replicate_layer,
    to_networkx_layers,
)
from repro.graph.export import (
    ascii_layer_summary,
    to_dot,
    to_graphml,
    write_dot,
    write_graphml,
)
from repro.graph.generators import (
    chung_lu_layers,
    erdos_renyi_layers,
    paper_figure1_graph,
    planted_communities,
    random_coherent_graph,
    temporal_snapshots,
)
from repro.graph.io import (
    from_json_dict,
    read_edge_list,
    read_json,
    to_json_dict,
    write_edge_list,
    write_json,
)
from repro.graph.backend import (
    BACKENDS,
    check_backend,
    resolve_search_graph,
    should_freeze,
)
from repro.graph.frozen import (
    FrozenMultiLayerGraph,
    ScratchArena,
    frozen_coherent_core,
    frozen_layer_core,
)
from repro.graph.kernels import (
    KERNELS,
    check_kernel,
    numpy_available,
    numpy_version,
    resolve_kernel,
)
from repro.graph.multilayer import MultiLayerGraph
from repro.graph.views import LayerView

__all__ = [
    "MultiLayerGraph",
    "FrozenMultiLayerGraph",
    "BACKENDS",
    "check_backend",
    "resolve_search_graph",
    "should_freeze",
    "KERNELS",
    "check_kernel",
    "resolve_kernel",
    "numpy_available",
    "numpy_version",
    "frozen_layer_core",
    "frozen_coherent_core",
    "ScratchArena",
    "LayerView",
    "layer_statistics",
    "layer_edge_jaccard",
    "layer_similarity_matrix",
    "support_histogram",
    "core_size_profile",
    "recommend_support",
    "to_dot",
    "write_dot",
    "to_graphml",
    "write_graphml",
    "ascii_layer_summary",
    "from_adjacency",
    "from_edge_lists",
    "from_networkx_layers",
    "to_networkx_layers",
    "replicate_layer",
    "erdos_renyi_layers",
    "chung_lu_layers",
    "planted_communities",
    "random_coherent_graph",
    "temporal_snapshots",
    "paper_figure1_graph",
    "read_edge_list",
    "write_edge_list",
    "read_json",
    "write_json",
    "to_json_dict",
    "from_json_dict",
]
