"""Multi-layer graph substrate: data structure, builders, I/O, generators."""

from repro.graph.analysis import (
    core_size_profile,
    layer_edge_jaccard,
    layer_similarity_matrix,
    layer_statistics,
    recommend_support,
    support_histogram,
)
from repro.graph.builders import (
    from_adjacency,
    from_edge_lists,
    from_networkx_layers,
    replicate_layer,
    to_networkx_layers,
)
from repro.graph.export import (
    ascii_layer_summary,
    to_dot,
    to_graphml,
    write_dot,
    write_graphml,
)
from repro.graph.generators import (
    chung_lu_layers,
    erdos_renyi_layers,
    paper_figure1_graph,
    planted_communities,
    random_coherent_graph,
    temporal_snapshots,
)
from repro.graph.io import (
    from_json_dict,
    read_edge_list,
    read_json,
    to_json_dict,
    write_edge_list,
    write_json,
)
from repro.graph.multilayer import MultiLayerGraph
from repro.graph.views import LayerView

__all__ = [
    "MultiLayerGraph",
    "LayerView",
    "layer_statistics",
    "layer_edge_jaccard",
    "layer_similarity_matrix",
    "support_histogram",
    "core_size_profile",
    "recommend_support",
    "to_dot",
    "write_dot",
    "to_graphml",
    "write_graphml",
    "ascii_layer_summary",
    "from_adjacency",
    "from_edge_lists",
    "from_networkx_layers",
    "to_networkx_layers",
    "replicate_layer",
    "erdos_renyi_layers",
    "chung_lu_layers",
    "planted_communities",
    "random_coherent_graph",
    "temporal_snapshots",
    "paper_figure1_graph",
    "read_edge_list",
    "write_edge_list",
    "read_json",
    "write_json",
    "to_json_dict",
    "from_json_dict",
]
