"""The graph backend protocol and backend selection policy.

The d-CC search stack in :mod:`repro.core` runs against a *narrow,
duck-typed protocol* rather than against one concrete graph class, so the
readable dict-of-sets reference backend and the flat-array CSR backend
execute the same search code.  Two implementations exist today:

* :class:`repro.graph.multilayer.MultiLayerGraph` — mutable dict-of-sets
  adjacency, arbitrary hashable vertices (``is_frozen == False``);
* :class:`repro.graph.frozen.FrozenMultiLayerGraph` — immutable CSR over
  dense integer ids (``is_frozen == True``), built by ``freeze()`` and
  convertible back by ``thaw()``;
* :class:`repro.shard.graph.ShardedGraph` — the same frozen data cut
  into N independently shippable blocks, served scatter/gather behind
  this protocol (``is_frozen == False`` — no whole-graph CSR arrays
  exist — with ``is_sharded == True`` as its dispatch marker).

Protocol
--------
A backend must provide:

==============================  =========================================
``is_frozen``                   ``True`` for the CSR backend; algorithm
                                modules use it to select flat-array fast
                                paths (never for correctness decisions).
``is_sharded`` (optional)       ``True`` only on the sharded coordinator;
                                routes ``layer_core``/``coherent_core``
                                to the distributed peel.  Absent on the
                                other backends (read via ``getattr``).
``num_layers`` / ``layers()``   layer count and ``range`` of layer ids.
``num_vertices`` / ``vertices()``  vertex count / a fresh vertex set.
``vertex_set()``                a cached frozenset of all vertices
                                (callers must not mutate it).
``has_vertex(v)`` (+ ``in``)    vertex membership.
``degree(layer, v)``            O(1) degree on one layer.
``neighbors(layer, v)``         set-like iterable of the neighbourhood.
``neighbor_row(layer)``         unchecked per-layer accessor
                                ``row(v) → neighbour sequence`` for
                                bulk cascade loops.
``adjacency(layer)``            ``{v: neighbour set}`` view of one layer
                                (materialised lazily on the CSR backend —
                                a compatibility path for dict-shaped
                                consumers, not a fast path).
``induced_degrees(layer, S)``   bulk ``{v: deg within S}`` — the peeling
                                initialisation primitive; ``S=None``
                                means the whole vertex set.
``layers_of(v)``                layers on which ``v`` is non-isolated.
``num_edges(layer)``            cached per-layer edge count.
``total_edges()``               sum over layers.
``summary()``                   the Fig. 12 statistics dict.
``memory_bytes()``              rough resident-size estimate.
==============================  =========================================

Everything else in the search stack (top-k maintenance, pruning bounds,
layer orderings) operates on plain vertex sets and never touches the
representation.  Representation also never leaks across process
boundaries: the parallel subsystem (:mod:`repro.parallel`) serializes
either backend through an explicit payload
(:mod:`repro.parallel.serialize`) rather than pickling backend objects,
so worker processes rebuild exactly the structure described here.

Selection policy
----------------
:func:`resolve_search_graph` implements the ``backend=`` parameter of
:func:`repro.core.api.search_dccs`: ``"dict"`` and ``"frozen"`` force a
representation, ``"auto"`` freezes when :func:`should_freeze` judges the
O(n + m) freeze cost profitable (a search runs at least one peel per
layer, so mid-sized graphs already amortise it).
"""

from repro.utils.errors import ParameterError

BACKENDS = ("auto", "dict", "frozen")

# Below this vertex count the dict backend's peels are already so cheap
# that the freeze pass plus result translation dominates; measured on the
# stand-in datasets, the crossover sits well under this line.
FREEZE_VERTEX_THRESHOLD = 256


def check_backend(backend):
    """Validate a ``backend=`` argument, returning it unchanged."""
    if backend not in BACKENDS:
        raise ParameterError(
            "backend must be one of {}, got {!r}".format(BACKENDS, backend)
        )
    return backend


def should_freeze(graph):
    """Whether auto mode should pay the O(n + m) freeze for ``graph``."""
    return graph.num_vertices >= FREEZE_VERTEX_THRESHOLD


def resolve_search_graph(graph, backend):
    """Resolve ``backend`` into ``(search_graph, translate_results)``.

    ``translate_results`` is ``True`` when the caller handed us a dict
    graph and we froze it — reported vertex sets must then be translated
    from dense ids back to the caller's labels.  A graph the caller froze
    themselves keeps its own (integer) vocabulary.
    """
    check_backend(backend)
    frozen_input = getattr(graph, "is_frozen", False)
    if backend == "auto":
        backend = "frozen" if frozen_input or should_freeze(graph) else "dict"
    if backend == "frozen":
        if frozen_input:
            return graph, False
        return graph.freeze(), True
    if frozen_input:
        # dict explicitly requested on a frozen graph: the cached,
        # id-keyed thaw — results stay in the input graph's vocabulary
        # and repeated searches pay the conversion once, symmetric with
        # the cached freeze() in the other direction.
        return graph._search_thaw(), False
    return graph, False
