"""Constructors that build :class:`MultiLayerGraph` from other shapes.

The library's own algorithms only ever see :class:`MultiLayerGraph`; these
helpers are the adapters from the formats users actually hold — per-layer
edge lists, dictionaries of adjacency, stacks of networkx graphs, or a
single-layer graph to be replicated.
"""

from repro.graph.multilayer import MultiLayerGraph
from repro.utils.errors import ParameterError


def from_edge_lists(edge_lists, vertices=(), name=""):
    """Build a graph from one iterable of ``(u, v)`` pairs per layer.

    >>> g = from_edge_lists([[("a", "b")], [("b", "c")]])
    >>> g.num_layers
    2
    """
    edge_lists = list(edge_lists)
    if not edge_lists:
        raise ParameterError("at least one layer of edges is required")
    graph = MultiLayerGraph(len(edge_lists), vertices=vertices, name=name)
    for layer, edges in enumerate(edge_lists):
        graph.add_edges(layer, edges)
    return graph


def from_adjacency(adjacency_per_layer, name=""):
    """Build a graph from one ``{vertex: iterable-of-neighbours}`` per layer.

    The input may be asymmetric; edges are symmetrised.
    """
    adjacency_per_layer = list(adjacency_per_layer)
    if not adjacency_per_layer:
        raise ParameterError("at least one adjacency mapping is required")
    graph = MultiLayerGraph(len(adjacency_per_layer), name=name)
    for adjacency in adjacency_per_layer:
        graph.add_vertices(adjacency.keys())
    for layer, adjacency in enumerate(adjacency_per_layer):
        for vertex, neighbors in adjacency.items():
            for neighbor in neighbors:
                graph.add_edge(layer, vertex, neighbor)
    return graph


def from_networkx_layers(nx_graphs, name=""):
    """Stack networkx (or networkx-like) graphs into a multi-layer graph.

    Each input needs only ``.nodes`` and ``.edges`` iterables, so any object
    with that duck type works; directed inputs are symmetrised.
    """
    nx_graphs = list(nx_graphs)
    if not nx_graphs:
        raise ParameterError("at least one layer graph is required")
    graph = MultiLayerGraph(len(nx_graphs), name=name)
    for nx_graph in nx_graphs:
        graph.add_vertices(nx_graph.nodes)
    for layer, nx_graph in enumerate(nx_graphs):
        for u, v in nx_graph.edges:
            if u != v:
                graph.add_edge(layer, u, v)
    return graph


def to_networkx_layers(graph):
    """Convert each layer of ``graph`` to a :class:`networkx.Graph`.

    Requires networkx; imported lazily so the core library stays
    dependency-free.
    """
    import networkx as nx

    layers = []
    for layer in graph.layers():
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.vertices())
        nx_graph.add_edges_from(graph.edges(layer))
        layers.append(nx_graph)
    return layers


def replicate_layer(edges, num_layers, vertices=(), name=""):
    """Copy one edge list onto ``num_layers`` identical layers.

    Handy in tests: on a replicated graph every d-CC equals the d-core of
    the base layer, for every layer subset.
    """
    if num_layers < 1:
        raise ParameterError("num_layers must be positive")
    edges = list(edges)
    return from_edge_lists([edges] * num_layers, vertices=vertices, name=name)
