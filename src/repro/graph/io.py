"""Reading and writing multi-layer graphs.

Two interchange formats are supported:

* **Layered edge list** — plain text, one edge per line as
  ``<layer> <u> <v>``, with ``#`` comments.  This is the natural encoding of
  the KONECT/SNAP temporal datasets the paper uses (each layer is a time
  period), and round-trips losslessly for graphs whose vertices are strings
  without whitespace.
* **JSON document** — fully general (any JSON-encodable vertex labels),
  self-describing, used by the dataset cache.

Isolated vertices survive both formats via an explicit vertex list.
"""

import json

from repro.graph.multilayer import MultiLayerGraph
from repro.utils.errors import ParameterError


def write_edge_list(graph, path):
    """Write ``graph`` to ``path`` in the layered edge-list format.

    The header comments record the layer count and the vertex universe so
    isolated vertices are not lost on read-back.
    """
    with open(path, "w") as handle:
        handle.write("# repro multi-layer edge list\n")
        handle.write("# layers: {}\n".format(graph.num_layers))
        vertex_line = " ".join(str(v) for v in sorted(graph.vertices(), key=str))
        handle.write("# vertices: {}\n".format(vertex_line))
        for layer, u, v in graph.all_edges():
            handle.write("{} {} {}\n".format(layer, u, v))


def read_edge_list(path, num_layers=None, name=""):
    """Read a layered edge-list file written by :func:`write_edge_list`.

    Vertices are read back as strings.  ``num_layers`` overrides the header
    (useful for files produced by other tools without one); if neither is
    available the layer count is inferred as ``max(layer) + 1``.
    """
    header_layers = None
    header_vertices = []
    edges = []
    max_layer = -1
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("layers:"):
                    header_layers = int(body.split(":", 1)[1])
                elif body.startswith("vertices:"):
                    header_vertices = body.split(":", 1)[1].split()
                continue
            parts = line.split()
            if len(parts) != 3:
                raise ParameterError("malformed edge line: {!r}".format(line))
            layer = int(parts[0])
            max_layer = max(max_layer, layer)
            edges.append((layer, parts[1], parts[2]))
    layers = num_layers or header_layers
    if layers is None:
        if max_layer < 0:
            raise ParameterError("cannot infer the layer count of an empty file")
        layers = max_layer + 1
    graph = MultiLayerGraph(layers, vertices=header_vertices, name=name)
    for layer, u, v in edges:
        graph.add_edge(layer, u, v)
    return graph


def to_json_dict(graph):
    """Encode ``graph`` as a JSON-compatible dictionary."""
    return {
        "name": graph.name,
        "num_layers": graph.num_layers,
        "vertices": sorted(graph.vertices(), key=str),
        "edges": [
            [layer, u, v] for layer, u, v in graph.all_edges()
        ],
    }


def from_json_dict(payload, name=None):
    """Decode a dictionary produced by :func:`to_json_dict`."""
    graph = MultiLayerGraph(
        payload["num_layers"],
        vertices=payload.get("vertices", ()),
        name=payload.get("name", "") if name is None else name,
    )
    for layer, u, v in payload.get("edges", ()):
        graph.add_edge(layer, u, v)
    return graph


def write_json(graph, path):
    """Serialise ``graph`` to a JSON file at ``path``."""
    with open(path, "w") as handle:
        json.dump(to_json_dict(graph), handle)


def read_json(path, name=None):
    """Load a multi-layer graph from a JSON file written by :func:`write_json`."""
    with open(path) as handle:
        payload = json.load(handle)
    return from_json_dict(payload, name=name)
