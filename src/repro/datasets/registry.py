"""The six stand-in datasets of the paper's Fig. 12, by name.

Every loader takes ``scale`` (vertex-count multiplier, default 1.0) and
``seed``; results are memoised per ``(name, scale, seed)`` because the
experiment harness loads the same dataset for many parameter points.

Scale note: the paper's large datasets have 0.5M–2.6M vertices.  The
stand-ins keep the *relative* ordering (Stack largest, PPI smallest), the
exact layer counts, and the community structure, at sizes a pure-Python
sweep can handle; absolute runtimes are therefore not comparable to the
paper's C++ numbers, but every relative claim is (see EXPERIMENTS.md).
"""

from repro.datasets.synthetic import build_standin
from repro.utils.errors import ParameterError

_CACHE = {}

# name: (vertices, layers, communities, size range, span choices,
#        background degree, plant complexes)
_SPECS = {
    # PPI: 8 detection-method layers; small; carries planted complexes.
    "ppi": (328, 8, 14, (8, 24), (2, 3, 4, 6, 8), 1.5, True),
    # Author: 10 yearly collaboration layers.
    "author": (1017, 10, 20, (10, 30), (2, 3, 5, 8, 10), 1.5, False),
    # German (Wikipedia talk): 14 yearly layers.
    "german": (1800, 14, 24, (20, 45), (2, 3, 4, 10, 12, 14), 2.0, False),
    # Wiki (edit co-activity): 24 hourly layers.
    "wiki": (2400, 24, 30, (20, 50), (2, 3, 4, 5, 18, 22, 24), 2.0, False),
    # English (Wikipedia talk): 15 yearly layers.
    "english": (2100, 15, 26, (20, 45), (2, 3, 4, 5, 11, 13, 15), 2.0, False),
    # Stack (Stack Exchange interactions): 24 hourly layers; the largest.
    "stack": (3000, 24, 36, (20, 55), (2, 3, 4, 5, 18, 22, 24), 2.0, False),
}

DATASET_NAMES = tuple(_SPECS)

# The paper's Fig. 12 statistics, for side-by-side provenance tables.
PAPER_STATISTICS = {
    "ppi": {"vertices": 328, "total_edges": 4745, "union_edges": 3101, "layers": 8},
    "author": {"vertices": 1017, "total_edges": 15065, "union_edges": 11069, "layers": 10},
    "german": {"vertices": 519365, "total_edges": 7205624, "union_edges": 1653621, "layers": 14},
    "wiki": {"vertices": 1140149, "total_edges": 7833140, "union_edges": 3309592, "layers": 24},
    "english": {"vertices": 1749651, "total_edges": 18951428, "union_edges": 5956877, "layers": 15},
    "stack": {"vertices": 2601977, "total_edges": 63497050, "union_edges": 36233450, "layers": 24},
}


def load(name, scale=1.0, seed=0):
    """Load (and memoise) a stand-in dataset by name.

    ``scale`` multiplies the vertex count and the community count, which
    is how the Fig. 26 vertex-fraction experiment and the fast test suite
    shrink the graphs.
    """
    if name not in _SPECS:
        raise ParameterError(
            "unknown dataset {!r}; choose from {}".format(name, DATASET_NAMES)
        )
    if scale <= 0:
        raise ParameterError("scale must be positive, got {}".format(scale))
    key = (name, round(scale, 6), seed)
    if key not in _CACHE:
        (vertices, layers, communities, size_range,
         spans, background, complexes) = _SPECS[name]
        scaled_vertices = max(size_range[1] + 1, int(vertices * scale))
        scaled_communities = max(2, int(communities * scale))
        _CACHE[key] = build_standin(
            name,
            num_vertices=scaled_vertices,
            num_layers=layers,
            num_communities=scaled_communities,
            size_range=size_range,
            span_choices=spans,
            background_degree=background,
            plant_complexes=complexes,
            seed=seed,
        )
    return _CACHE[key]


def clear_cache():
    """Drop every memoised dataset (tests use this to bound memory)."""
    _CACHE.clear()


def dataset_statistics(names=DATASET_NAMES, scale=1.0, seed=0):
    """Fig. 12 rows for the stand-ins, paired with the paper's originals."""
    rows = []
    for name in names:
        dataset = load(name, scale=scale, seed=seed)
        row = dataset.summary()
        row["paper"] = PAPER_STATISTICS[name]
        rows.append(row)
    return rows
