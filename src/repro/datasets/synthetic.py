"""Construction of the synthetic stand-in datasets.

See DESIGN.md ("Substitutions"): the paper's six real datasets are not
redistributable offline, so each is replaced by a planted-community
multi-layer graph with the same layer count and qualitatively the same
structure, at a scale a pure-Python implementation can sweep.  The
construction below controls the features the DCCS algorithms actually
react to:

* communities recur on layer subsets of varying width (so both the
  small-``s`` and the large-``s`` experiments have signal);
* communities overlap in membership (diversification pressure);
* a sparse Erdős–Rényi background supplies the noise vertices that the
  vertex-deletion preprocessing exists to remove.
"""

from dataclasses import dataclass, field

from repro.graph.generators import planted_communities
from repro.utils.errors import ParameterError
from repro.utils.rng import make_rng


@dataclass
class Dataset:
    """A named multi-layer graph plus its planted ground truth.

    Attributes
    ----------
    name:
        Dataset key (``"ppi"``, ``"author"``, ...).
    graph:
        The :class:`~repro.graph.multilayer.MultiLayerGraph`.
    communities:
        The planted community member sets (frozensets) — ground truth for
        recovery metrics.
    complexes:
        Smaller planted "protein complexes" nested inside communities
        (only non-empty for the PPI stand-in); ground truth for Fig. 32.
    params:
        The generation parameters, for provenance in experiment reports.
    """

    name: str
    graph: object
    communities: list
    complexes: list = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def summary(self):
        """The Fig. 12 statistics row for this dataset."""
        row = self.graph.summary()
        row["name"] = self.name
        row["communities"] = len(self.communities)
        return row

    def frozen_graph(self):
        """The graph in its frozen CSR representation.

        Datasets are memoised by the registry and their graphs never
        mutate, so the freeze (also cached, on the graph itself) is paid
        at most once per ``(name, scale, seed)``.  Ground-truth sets in
        :attr:`communities`/:attr:`complexes` keep original labels —
        translate ids with ``frozen_graph().labels_for(...)`` before
        comparing against them.
        """
        return self.graph.freeze()


def build_standin(name, num_vertices, num_layers, num_communities,
                  size_range, span_choices, p_in=0.9,
                  background_degree=2.0, overlap=0.25,
                  plant_complexes=False, seed=0):
    """Build one stand-in dataset.

    Parameters
    ----------
    size_range:
        ``(lo, hi)`` community sizes, sampled uniformly.
    span_choices:
        Sequence of layer-span widths to sample from; e.g. for a 15-layer
        graph, ``(2, 3, 4, 12, 14)`` plants both narrow and broad
        communities.
    background_degree:
        Expected background degree per layer (converted to a G(n, p)
        probability).
    overlap:
        Fraction of each community's members drawn from previously used
        vertices, creating the overlapping covers diversification needs.
    plant_complexes:
        When true, dense sub-blocks ("protein complexes") are planted
        inside communities and returned as extra ground truth.
    """
    if num_vertices < size_range[1]:
        raise ParameterError("communities cannot be larger than the graph")
    rng = make_rng(seed)
    population = list(range(num_vertices))
    used = []
    specs = []
    complex_specs = []
    for _ in range(num_communities):
        size = rng.randint(size_range[0], size_range[1])
        members = set()
        # Draw a share of members from already-planted vertices so the
        # candidate d-CCs overlap, then fill up with fresh vertices.
        if used and overlap > 0:
            reuse = min(int(size * overlap), len(used))
            members.update(rng.sample(used, reuse))
        while len(members) < size:
            members.add(rng.choice(population))
        span = rng.choice(list(span_choices))
        span = min(span, num_layers)
        start = rng.randint(0, num_layers - span)
        layers = list(range(start, start + span))
        specs.append((sorted(members), layers, p_in))
        used.extend(sorted(members))
        if plant_complexes and size >= 8:
            complex_size = rng.randint(3, 6)
            complex_members = rng.sample(sorted(members), complex_size)
            complex_specs.append(frozenset(complex_members))
    background = min(1.0, background_degree / max(1, num_vertices - 1))
    graph, planted = planted_communities(
        num_vertices, num_layers, specs,
        background=background, seed=rng, name=name,
    )
    return Dataset(
        name=name,
        graph=graph,
        communities=planted,
        complexes=complex_specs,
        params={
            "num_vertices": num_vertices,
            "num_layers": num_layers,
            "num_communities": num_communities,
            "size_range": size_range,
            "span_choices": tuple(span_choices),
            "p_in": p_in,
            "background_degree": background_degree,
            "overlap": overlap,
            "seed": seed,
        },
    )
