"""Construction of the synthetic stand-in datasets.

See DESIGN.md ("Substitutions"): the paper's six real datasets are not
redistributable offline, so each is replaced by a planted-community
multi-layer graph with the same layer count and qualitatively the same
structure, at a scale a pure-Python implementation can sweep.  The
construction below controls the features the DCCS algorithms actually
react to:

* communities recur on layer subsets of varying width (so both the
  small-``s`` and the large-``s`` experiments have signal);
* communities overlap in membership (diversification pressure);
* a sparse Erdős–Rényi background supplies the noise vertices that the
  vertex-deletion preprocessing exists to remove.
"""

from array import array
from dataclasses import dataclass, field

from repro.graph.generators import planted_communities
from repro.utils.errors import ParameterError
from repro.utils.rng import make_rng

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


@dataclass
class Dataset:
    """A named multi-layer graph plus its planted ground truth.

    Attributes
    ----------
    name:
        Dataset key (``"ppi"``, ``"author"``, ...).
    graph:
        The :class:`~repro.graph.multilayer.MultiLayerGraph`.
    communities:
        The planted community member sets (frozensets) — ground truth for
        recovery metrics.
    complexes:
        Smaller planted "protein complexes" nested inside communities
        (only non-empty for the PPI stand-in); ground truth for Fig. 32.
    params:
        The generation parameters, for provenance in experiment reports.
    """

    name: str
    graph: object
    communities: list
    complexes: list = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def summary(self):
        """The Fig. 12 statistics row for this dataset."""
        row = self.graph.summary()
        row["name"] = self.name
        row["communities"] = len(self.communities)
        return row

    def frozen_graph(self):
        """The graph in its frozen CSR representation.

        Datasets are memoised by the registry and their graphs never
        mutate, so the freeze (also cached, on the graph itself) is paid
        at most once per ``(name, scale, seed)``.  Ground-truth sets in
        :attr:`communities`/:attr:`complexes` keep original labels —
        translate ids with ``frozen_graph().labels_for(...)`` before
        comparing against them.
        """
        return self.graph.freeze()


def build_standin(name, num_vertices, num_layers, num_communities,
                  size_range, span_choices, p_in=0.9,
                  background_degree=2.0, overlap=0.25,
                  plant_complexes=False, seed=0):
    """Build one stand-in dataset.

    Parameters
    ----------
    size_range:
        ``(lo, hi)`` community sizes, sampled uniformly.
    span_choices:
        Sequence of layer-span widths to sample from; e.g. for a 15-layer
        graph, ``(2, 3, 4, 12, 14)`` plants both narrow and broad
        communities.
    background_degree:
        Expected background degree per layer (converted to a G(n, p)
        probability).
    overlap:
        Fraction of each community's members drawn from previously used
        vertices, creating the overlapping covers diversification needs.
    plant_complexes:
        When true, dense sub-blocks ("protein complexes") are planted
        inside communities and returned as extra ground truth.
    """
    if num_vertices < size_range[1]:
        raise ParameterError("communities cannot be larger than the graph")
    rng = make_rng(seed)
    population = list(range(num_vertices))
    used = []
    specs = []
    complex_specs = []
    for _ in range(num_communities):
        size = rng.randint(size_range[0], size_range[1])
        members = set()
        # Draw a share of members from already-planted vertices so the
        # candidate d-CCs overlap, then fill up with fresh vertices.
        if used and overlap > 0:
            reuse = min(int(size * overlap), len(used))
            members.update(rng.sample(used, reuse))
        while len(members) < size:
            members.add(rng.choice(population))
        span = rng.choice(list(span_choices))
        span = min(span, num_layers)
        start = rng.randint(0, num_layers - span)
        layers = list(range(start, start + span))
        specs.append((sorted(members), layers, p_in))
        used.extend(sorted(members))
        if plant_complexes and size >= 8:
            complex_size = rng.randint(3, 6)
            complex_members = rng.sample(sorted(members), complex_size)
            complex_specs.append(frozenset(complex_members))
    background = min(1.0, background_degree / max(1, num_vertices - 1))
    graph, planted = planted_communities(
        num_vertices, num_layers, specs,
        background=background, seed=rng, name=name,
    )
    return Dataset(
        name=name,
        graph=graph,
        communities=planted,
        complexes=complex_specs,
        params={
            "num_vertices": num_vertices,
            "num_layers": num_layers,
            "num_communities": num_communities,
            "size_range": size_range,
            "span_choices": tuple(span_choices),
            "p_in": p_in,
            "background_degree": background_degree,
            "overlap": overlap,
            "seed": seed,
        },
    )


def _assemble_csr(num_vertices, pairs):
    """One layer's CSR ``(indptr, indices)`` from directed vertex pairs.

    ``pairs`` is a flat ``array("i")`` of ``src, dst, src, dst, ...``
    entries (every undirected edge appears in both directions, possibly
    with duplicates — noise sampling redraws collide freely).  The
    output is the *sorted, deduplicated* adjacency, which is what makes
    the two assembly paths below interchangeable: the numpy path
    (``np.unique`` over ``src * n + dst`` codes, then ``bincount`` +
    ``cumsum``) and the pure-Python path (a sorted set of pairs) produce
    byte-for-byte the same CSR content, so a given seed yields the same
    graph whether or not numpy is installed.
    """
    if _np is not None:
        flat = _np.frombuffer(pairs, dtype=_np.int32).astype(_np.int64)
        codes = _np.unique(flat[0::2] * num_vertices + flat[1::2])
        src = (codes // num_vertices).astype(_np.int32)
        dst = (codes % num_vertices).astype(_np.int32)
        counts = _np.bincount(src, minlength=num_vertices)
        indptr = _np.zeros(num_vertices + 1, dtype=_np.int32)
        _np.cumsum(counts, out=indptr[1:])
        return indptr, dst
    unique = sorted({
        (pairs[j], pairs[j + 1]) for j in range(0, len(pairs), 2)
    })
    indptr = array("i", [0]) * (num_vertices + 1)
    indices = array("i")
    cursor = 0
    total = 0
    for u, v in unique:
        while cursor < u:
            cursor += 1
            indptr[cursor] = total
        indices.append(v)
        total += 1
    while cursor < num_vertices:
        cursor += 1
        indptr[cursor] = total
    return indptr, indices


def synthetic_multilayer(num_vertices, num_layers=3, num_communities=8,
                         community_size=64, d=4, span=2, noise_degree=2.0,
                         seed=0, name="synthetic"):
    """A scalable planted-d-CC multilayer graph, built frozen.

    The proving ground for the kernel tier: unlike :func:`build_standin`
    (which routes through the dict backend and tops out around 10^4
    vertices), this generator assembles the CSR arrays of a
    :class:`~repro.graph.frozen.FrozenMultiLayerGraph` directly, one
    layer at a time, so a seeded million-vertex graph fits in a few
    hundred MB and never materialises a dict-of-sets intermediate.
    Labels are the identity ``range`` — no label table is ever built.

    Structure
    ---------
    * ``num_communities`` disjoint *circulant* communities occupy the
      low vertex ids in contiguous blocks of ``community_size``.  Inside
      its block every member is wired to the ``(d + 1) // 2`` nearest
      ring offsets in both directions, giving exact degree
      ``2 * ((d + 1) // 2) >= d`` — each community is a d-core of every
      layer it is planted on, by construction.
    * Community ``c`` is planted on the ``span`` contiguous layers
      starting at ``c % (num_layers - span + 1)``, so every span window
      receives communities and a search with ``s <= span`` finds each
      community coherent on its window.
    * Power-law-ish background noise: per layer,
      ``num_vertices * noise_degree / 2`` edges with one endpoint drawn
      as ``int(n * u**2)`` (quadratically biased toward low ids — hubs)
      and the other uniform.  Noise is drawn from the seeded pure-Python
      RNG, so the graph is identical with and without numpy installed.

    Returns a :class:`Dataset` whose ``graph`` is already frozen and
    whose ``communities`` are the planted member frozensets.
    """
    if num_layers < 1:
        raise ParameterError("num_layers must be positive")
    if not 1 <= span <= num_layers:
        raise ParameterError(
            "span must be in [1, num_layers], got {}".format(span)
        )
    if d < 1:
        raise ParameterError("d must be positive")
    if community_size < d + 2:
        raise ParameterError(
            "community_size must be at least d + 2 (= {}) so the "
            "circulant ring has {} distinct offsets".format(
                d + 2, (d + 1) // 2
            )
        )
    if num_communities * community_size > num_vertices:
        raise ParameterError("communities cannot overfill the graph")
    rng = make_rng(seed)
    half = (d + 1) // 2
    windows = num_layers - span + 1
    communities = [
        frozenset(range(c * community_size, (c + 1) * community_size))
        for c in range(num_communities)
    ]
    noise_per_layer = int(num_vertices * noise_degree / 2)
    # Noise is drawn once, layer by layer, *before* assembly so the
    # stream of RNG draws is independent of how each layer's CSR gets
    # built.  Each draw rejects self-loops and redraws; duplicates are
    # left for assembly-time dedup.
    indptr = []
    indices = []
    edge_counts = []
    layer_masks = [0] * num_vertices
    for layer in range(num_layers):
        pairs = array("i")
        bit = 1 << layer
        for c in range(num_communities):
            start = c % windows
            if not start <= layer < start + span:
                continue
            base = c * community_size
            for offset in range(community_size):
                v = base + offset
                layer_masks[v] |= bit
                for step in range(1, half + 1):
                    pairs.append(v)
                    pairs.append(base + (offset + step) % community_size)
                    pairs.append(v)
                    pairs.append(base + (offset - step) % community_size)
        for _ in range(noise_per_layer):
            u = int(num_vertices * rng.random() ** 2)
            v = int(num_vertices * rng.random())
            if u == v:
                continue
            layer_masks[u] |= bit
            layer_masks[v] |= bit
            pairs.extend((u, v, v, u))
        ptr, idx = _assemble_csr(num_vertices, pairs)
        del pairs
        indptr.append(ptr)
        indices.append(idx)
        edge_counts.append(len(idx) // 2)
    from repro.graph.frozen import FrozenMultiLayerGraph

    graph = FrozenMultiLayerGraph(
        range(num_vertices), indptr, indices, edge_counts, layer_masks,
        name=name,
    )
    return Dataset(
        name=name,
        graph=graph,
        communities=communities,
        params={
            "num_vertices": num_vertices,
            "num_layers": num_layers,
            "num_communities": num_communities,
            "community_size": community_size,
            "d": d,
            "span": span,
            "noise_degree": noise_degree,
            "seed": seed,
        },
    )
