"""Synthetic stand-ins for the paper's six datasets (Fig. 12)."""

from repro.datasets.registry import (
    DATASET_NAMES,
    PAPER_STATISTICS,
    clear_cache,
    dataset_statistics,
    load,
)
from repro.datasets.synthetic import (
    Dataset,
    build_standin,
    synthetic_multilayer,
)

__all__ = [
    "load",
    "clear_cache",
    "dataset_statistics",
    "DATASET_NAMES",
    "PAPER_STATISTICS",
    "Dataset",
    "build_standin",
    "synthetic_multilayer",
]
