"""Packaging metadata for the reproduction.

The project is stdlib-only by design (DESIGN.md): a bare checkout with
``PYTHONPATH=src`` runs every algorithm, the CLI and the serving tier
with no dependencies.  The one optional extra is the numpy kernel tier:

    pip install repro-dccs[fast]

which enables ``kernel="numpy"`` (and makes ``kernel="auto"`` pick it)
for the array-native peel kernels over the frozen CSR backend.  Without
the extra the same call sites run the pure-Python reference kernels and
produce bitwise-identical results — numpy is a speedup, never a
behaviour change (see ``tests/test_kernels.py``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-dccs",
    version="0.8.0",
    description=(
        "Reproduction of diversified coherent d-core search on "
        "multi-layer graphs (ICDE'18)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    install_requires=[],
    extras_require={
        "fast": ["numpy"],
    },
)
