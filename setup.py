"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only exists so
that `pip install -e .` can fall back to the legacy (non-PEP 660)
editable-install path on machines where PEP 660 editable wheels cannot
be built (no `wheel` module, offline).
"""

from setuptools import setup

setup()
