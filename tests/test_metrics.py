"""Tests for the evaluation metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import MultiLayerGraph
from repro.metrics import (
    class_densities,
    complex_recovery_rate,
    complexes_found,
    containment_distribution,
    cover,
    cover_difference_classes,
    cover_size,
    exclusive_counts,
    f1_score,
    fully_contained_fraction,
    jaccard,
    overlap_matrix,
    precision,
    recall,
    recovery_by_cover,
)

SETS_A = [{1, 2, 3}, {3, 4}]
SETS_B = [{2, 3}, {4, 5}]


class TestCoverMetrics:
    def test_cover(self):
        assert cover(SETS_A) == {1, 2, 3, 4}
        assert cover_size(SETS_A) == 4

    def test_cover_empty(self):
        assert cover([]) == set()
        assert cover_size([]) == 0

    def test_precision(self):
        # Cov(A) = {1,2,3,4}, Cov(B) = {2,3,4,5}; intersection = {2,3,4}.
        assert precision(SETS_A, SETS_B) == 3 / 4

    def test_recall(self):
        assert recall(SETS_A, SETS_B) == 3 / 4

    def test_f1(self):
        assert abs(f1_score(SETS_A, SETS_B) - 0.75) < 1e-12

    def test_empty_edge_cases(self):
        assert precision(SETS_A, []) == 0.0
        assert recall([], SETS_B) == 0.0
        assert f1_score([], []) == 0.0

    def test_jaccard(self):
        assert jaccard(SETS_A, SETS_B) == 3 / 5
        assert jaccard([], []) == 1.0

    def test_overlap_matrix(self):
        matrix = overlap_matrix([{1, 2}, {2, 3}])
        assert matrix[0][0] == 1.0
        assert matrix[0][1] == matrix[1][0] == 1 / 3

    def test_exclusive_counts(self):
        counts = exclusive_counts([{1, 2, 3}, {3, 4}])
        assert counts == [2, 1]

    @given(st.lists(
        st.frozensets(st.integers(min_value=0, max_value=12), max_size=6),
        min_size=1, max_size=5,
    ))
    @settings(max_examples=60, deadline=None)
    def test_precision_recall_symmetry(self, sets):
        """precision(A, B) == recall(B, A) by definition."""
        other = [frozenset({1, 2, 3})]
        assert precision(other, sets) == recall(sets, other)


class TestContainment:
    def test_distribution(self):
        cliques = [{1, 2, 3}, {1, 2, 9}, {7, 8, 9}]
        dist = containment_distribution(cliques, {1, 2, 3, 4})
        assert dist[3][3] == 1 / 3
        assert dist[3][2] == 1 / 3
        assert dist[3][0] == 1 / 3

    def test_fully_contained_fraction(self):
        cliques = [{1, 2}, {1, 9}]
        assert fully_contained_fraction(cliques, {1, 2, 3}) == 0.5
        assert fully_contained_fraction([], {1}) == 0.0

    def test_cover_difference_classes(self):
        both, only_dcc, only_quasi = cover_difference_classes(
            {1, 2, 3}, {2, 3, 4}
        )
        assert both == {2, 3}
        assert only_dcc == {1}
        assert only_quasi == {4}

    def test_class_densities_shape(self):
        g = MultiLayerGraph(1, vertices=range(5))
        for u, v in ((0, 1), (1, 2), (0, 2), (2, 3)):
            g.add_edge(0, u, v)
        densities = class_densities(g, {0, 1, 2}, {2, 3})
        assert set(densities) == {"both", "only_dcc", "only_quasi"}
        # only_quasi = {3}, connected only to 2 (in `both`): degree 1.
        assert densities["only_quasi"] == 1.0


class TestComplexes:
    def test_complexes_found(self):
        complexes = [{1, 2}, {3, 4}, {5}]
        dense = [{1, 2, 3}, {5, 6}]
        found = complexes_found(complexes, dense)
        assert frozenset({1, 2}) in found
        assert frozenset({5}) in found
        assert frozenset({3, 4}) not in found

    def test_recovery_rate(self):
        complexes = [{1, 2}, {3, 4}]
        assert complex_recovery_rate(complexes, [{1, 2, 9}]) == 0.5
        assert complex_recovery_rate([], [{1}]) == 0.0

    def test_recovery_by_cover_upper_bounds_strict(self):
        complexes = [{1, 4}]
        dense = [{1, 2}, {3, 4}]
        # Split across two subgraphs: strict containment fails, cover holds.
        assert complex_recovery_rate(complexes, dense) == 0.0
        assert recovery_by_cover(complexes, dense) == 1.0
