"""Suite for :mod:`repro.aio.result_cache` — the cross-time result cache.

The contract under test:

1. **keying** — ``stats`` accumulators never split the key, unhashable
   option values opt out, the graph's ``mutation_version`` is part of
   the identity;
2. **cache semantics** — LRU order (with touch-on-hit), TTL expiry on
   an injectable clock (no sleeps anywhere in this file), per-graph
   watermark purges and explicit invalidation, all with exact counter
   accounting, under scripted *and* hypothesis-drawn schedules;
3. **bitwise equivalence through the async host** — a warm (cached)
   response is indistinguishable from a cold one: same sets, labels,
   cover and replayed :class:`SearchStats` counters, including into a
   caller's own ``stats=`` accumulator, and across mutation ticks,
   detach/re-attach name recycling, TTL expiry and LRU eviction.
"""

import asyncio
import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aio import AsyncDCCHost, ResultCache
from repro.core.stats import SearchStats
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.host import DCCHost
from repro.utils.errors import ParameterError


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.cover_size == second.cover_size, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


class FakeClock:
    """A monotonic clock advanced explicitly by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(scope="module")
def fig_results():
    """Real results to cache, served once per module from a real host."""
    graph = paper_figure1_graph()
    with DCCHost(jobs=1) as host:
        host.attach("fig", graph)
        return {
            "a": host.search("fig", 3, 2, 2),
            "b": host.search("fig", 2, 2, 2),
            "c": host.search("fig", 2, 2, 2, method="greedy"),
        }


def key(name="fig", version=0, d=3, s=2, k=2, method="auto", **options):
    return ResultCache.key_for(name, version, d, s, k, method, options)


# ----------------------------------------------------------------------
# 1. keying
# ----------------------------------------------------------------------


class TestKeying:
    def test_spec_fields_all_split_the_key(self):
        base = key()
        assert key() == base
        for variant in (key(d=2), key(s=1), key(k=3), key(method="greedy"),
                        key(name="other"), key(version=1),
                        key(use_layer_pruning=False)):
            assert variant != base

    def test_stats_accumulator_never_splits_the_key(self):
        assert key(stats=SearchStats()) == key()
        assert key(stats=SearchStats()) == key(stats=SearchStats())

    def test_other_unhashable_options_opt_out(self):
        assert key(weights=[1, 2]) is None
        assert key(weights=(1, 2)) is not None

    def test_constructor_validates_bounds(self):
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ParameterError):
                ResultCache(max_entries=bad)
        for bad in (0, -0.5, True):
            with pytest.raises(ParameterError):
                ResultCache(ttl=bad)
        assert ResultCache(max_entries=None, ttl=None) is not None


# ----------------------------------------------------------------------
# 2. cache semantics (scripted schedules, injectable clock)
# ----------------------------------------------------------------------


class TestSemantics:
    def test_fetch_returns_private_deep_copies(self, fig_results):
        cache = ResultCache()
        cache.put(key(), fig_results["a"])
        first = cache.fetch(key())
        second = cache.fetch(key())
        assert_identical(first, fig_results["a"])
        first.sets.append(frozenset())
        assert second.sets != first.sets
        assert cache.fetch(key()).sets == fig_results["a"].sets

    def test_put_deep_copies_the_stored_result(self, fig_results):
        cache = ResultCache()
        mine = copy.deepcopy(fig_results["a"])
        cache.put(key(), mine)
        mine.sets.append(frozenset())
        assert cache.fetch(key()).sets == fig_results["a"].sets

    def test_user_stats_accumulator_replays_the_delta(self, fig_results):
        # A warm hit must charge a caller's stats= accumulator exactly
        # like the live search charged its own: pre-existing counts stay,
        # the stored delta merges on top, and the returned result
        # reports the accumulator itself (one-shot live semantics).
        cache = ResultCache()
        cache.put(key(), fig_results["a"])
        mine = SearchStats()
        mine.dcc_calls = 7
        got = cache.fetch(key(), user_stats=mine)
        assert got.stats is mine
        want = fig_results["a"].stats.as_dict()
        assert mine.dcc_calls == want["dcc_calls"] + 7
        for field, value in mine.as_dict().items():
            if field != "dcc_calls":
                assert value == want[field]
        # The stored entry itself is untouched by the merge.
        again = cache.fetch(key())
        assert again.stats.as_dict() == want

    def test_ttl_expires_strictly_after_the_deadline(self, fig_results):
        clock = FakeClock()
        cache = ResultCache(ttl=10.0, clock=clock)
        cache.put(key(), fig_results["a"])
        clock.advance(10.0)  # exactly at the bound: still servable
        assert cache.fetch(key()) is not None
        clock.advance(0.001)
        assert cache.fetch(key()) is None
        assert cache.expirations == 1
        assert len(cache) == 0
        # Re-population restarts the clock for that entry.
        cache.put(key(), fig_results["a"])
        clock.advance(9.0)
        assert cache.fetch(key()) is not None

    def test_lru_evicts_least_recent_and_hits_touch(self, fig_results):
        cache = ResultCache(max_entries=2)
        ka, kb, kc = key(d=3), key(d=2), key(d=1)
        cache.put(ka, fig_results["a"])
        cache.put(kb, fig_results["b"])
        assert cache.fetch(ka) is not None  # touch: a is now most recent
        cache.put(kc, fig_results["c"])     # evicts b, not a
        assert cache.evictions == 1
        assert cache.fetch(kb) is None
        assert cache.fetch(ka) is not None
        assert cache.fetch(kc) is not None
        assert len(cache) == 2

    def test_version_watermark_purges_a_mutated_graph(self, fig_results):
        cache = ResultCache()
        cache.put(key(version=0, d=3), fig_results["a"])
        cache.put(key(version=0, d=2), fig_results["b"])
        cache.put(key(name="other", version=0), fig_results["c"])
        # First consultation under version 1 purges fig's entries...
        assert cache.fetch(key(version=1, d=3)) is None
        assert cache.invalidations == 1
        assert len(cache) == 1  # ...but not the other graph's.
        assert cache.fetch(key(name="other", version=0)) is not None
        # Old-version lookups cannot resurrect anything either.
        assert cache.fetch(key(version=0, d=2)) is None

    def test_explicit_invalidation(self, fig_results):
        cache = ResultCache()
        cache.put(key(d=3), fig_results["a"])
        cache.put(key(d=2), fig_results["b"])
        cache.put(key(name="other"), fig_results["c"])
        assert cache.invalidate("fig") == 2
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0

    def test_stats_snapshot_counts_exactly(self, fig_results):
        clock = FakeClock()
        cache = ResultCache(max_entries=1, ttl=5.0, clock=clock)
        assert cache.fetch(key()) is None                   # miss
        cache.put(key(), fig_results["a"])                  # insert
        assert cache.fetch(key()) is not None               # hit
        cache.put(key(d=9), fig_results["b"])               # insert + evict
        clock.advance(6.0)
        assert cache.fetch(key(d=9)) is None                # expire + miss
        snapshot = cache.stats()
        assert snapshot == {
            "entries": 0, "hits": 1, "misses": 2, "insertions": 2,
            "evictions": 1, "expirations": 1, "invalidations": 0,
            "max_entries": 1, "ttl": 5.0,
        }

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_property_any_schedule_serves_current_values(self, fig_results,
                                                         data):
        # Any interleaving of put/fetch/advance/invalidate over a tiny
        # key space, any (max_entries, ttl) configuration: a hit must
        # return exactly the newest value put under the key since the
        # graph's last invalidation, never a stale or cross-key value,
        # and the size bound must hold throughout.  A model dict tracks
        # what is *allowed* to be cached; the cache may drop more
        # (LRU/TTL) but never serve outside the model.
        clock = FakeClock()
        max_entries = data.draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=3)))
        ttl = data.draw(st.one_of(
            st.none(), st.floats(min_value=1.0, max_value=5.0)))
        cache = ResultCache(max_entries=max_entries, ttl=ttl, clock=clock)
        keys = [key(name=name, version=0, d=d)
                for name in ("fig", "ring") for d in (1, 2)]
        values = list(fig_results.values())
        model = {}
        for _ in range(data.draw(st.integers(min_value=1, max_value=30))):
            op = data.draw(st.sampled_from(
                ("put", "fetch", "advance", "invalidate")))
            if op == "put":
                which = data.draw(st.integers(0, len(keys) - 1))
                value = values[data.draw(st.integers(0, len(values) - 1))]
                cache.put(keys[which], value)
                model[keys[which]] = value
            elif op == "fetch":
                which = data.draw(st.integers(0, len(keys) - 1))
                got = cache.fetch(keys[which])
                if got is not None:
                    assert keys[which] in model
                    assert_identical(got, model[keys[which]])
            elif op == "advance":
                clock.advance(data.draw(
                    st.floats(min_value=0.0, max_value=4.0)))
            else:
                name = data.draw(st.sampled_from(("fig", "ring")))
                cache.invalidate(name)
                model = {k: v for k, v in model.items() if k[0] != name}
            if max_entries is not None:
                assert len(cache) <= max_entries


# ----------------------------------------------------------------------
# 3. bitwise equivalence through the async host
# ----------------------------------------------------------------------


class TestHostIntegration:
    def test_warm_repeat_is_a_hit_and_bitwise_identical(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                cold = await host.search("fig", 3, 2, 2)
                warm = await host.search("fig", 3, 2, 2)
                again = await host.search("fig", 3, 2, 2)
                return cold, warm, again, host.info()

        cold, warm, again, info = asyncio.run(serve())
        assert info["requests_cached"] == 2
        assert info["result_cache"]["hits"] == 2
        assert info["result_cache"]["insertions"] == 1
        assert_identical(warm, cold)
        assert_identical(again, cold)
        # Hits are private copies, not shared state.
        warm.sets.append(frozenset())
        assert again.sets != warm.sets

    def test_cache_can_be_disabled(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1, cache_results=False) as host:
                host.attach("fig", graph)
                cold = await host.search("fig", 3, 2, 2)
                warm = await host.search("fig", 3, 2, 2)
                return cold, warm, host.info()

        cold, warm, info = asyncio.run(serve())
        assert info["requests_cached"] == 0
        assert info["result_cache"] is None
        assert_identical(warm, cold)
        with pytest.raises(ParameterError):
            AsyncDCCHost(cache_results=False, result_cache=ResultCache())

    def test_user_stats_requests_read_but_never_populate(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                mine = SearchStats()
                first = await host.search("fig", 3, 2, 2, stats=mine)
                populated = len(host.result_cache)
                plain = await host.search("fig", 3, 2, 2)
                yours = SearchStats()
                warm = await host.search("fig", 3, 2, 2, stats=yours)
                return first, plain, warm, populated, host.info()

        first, plain, warm, populated, info = asyncio.run(serve())
        # The stats-accumulator request did not populate the cache...
        assert populated == 0
        # ...the plain one did, and the second accumulator request hit
        # it with the delta replayed into its own accumulator.
        assert info["requests_cached"] == 1
        assert warm.stats is not first.stats
        assert warm.stats.as_dict() == first.stats.as_dict()
        assert warm.stats.as_dict() == plain.stats.as_dict()
        assert warm.sets == plain.sets

    def test_mutation_tick_invalidates_and_serves_fresh_answers(self):
        # Two-vertex/one-edge deltas change real answers: cache a result,
        # mutate the graph, and the host must serve the *new* graph's
        # answer (bitwise equal to a fresh sequential baseline), with the
        # watermark purging the stale entry.
        graph = MultiLayerGraph(2, vertices=range(6))
        for layer in range(2):
            for i in range(6):
                graph.add_edge(layer, i, (i + 1) % 6)

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("ring", graph)
                before = await host.search("ring", 2, 2, 2)
                cached_before = await host.search("ring", 2, 2, 2)
                graph.add_vertex(99)
                graph.add_edge(0, 0, 99)
                after = await host.search("ring", 2, 2, 2)
                cached_after = await host.search("ring", 2, 2, 2)
                return before, cached_before, after, cached_after, \
                    host.info()

        before, cached_before, after, cached_after, info = \
            asyncio.run(serve())
        assert_identical(cached_before, before)
        assert_identical(cached_after, after)
        assert info["requests_cached"] == 2
        assert info["result_cache"]["invalidations"] >= 1
        fresh = MultiLayerGraph(2, vertices=list(range(6)) + [99])
        for layer in range(2):
            for i in range(6):
                fresh.add_edge(layer, i, (i + 1) % 6)
        fresh.add_edge(0, 0, 99)
        with DCCHost(jobs=1) as host:
            host.attach("ring", fresh)
            assert_identical(after, host.search("ring", 2, 2, 2))

    def test_recycled_name_never_serves_the_old_graph(self):
        # detach + attach a *different* graph under the same name: the
        # versions may coincide, so attach/detach must invalidate.
        fig = paper_figure1_graph()
        ring = MultiLayerGraph(2, vertices=range(8))
        for layer in range(2):
            for i in range(8):
                ring.add_edge(layer, i, (i + 1) % 8)

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("g", fig)
                from_fig = await host.search("g", 2, 2, 2)
                # The dispatcher unpins its lease on a pool thread just
                # after delivering the result; wait out that race.
                for _ in range(500):
                    try:
                        host.detach("g")
                        break
                    except ParameterError:
                        await asyncio.sleep(0.01)
                host.attach("g", ring)
                from_ring = await host.search("g", 2, 2, 2)
                return from_fig, from_ring

        from_fig, from_ring = asyncio.run(serve())
        with DCCHost(jobs=1) as host:
            host.attach("ring", ring)
            assert_identical(from_ring, host.search("ring", 2, 2, 2))
        assert from_fig.sets != from_ring.sets

    def test_injected_cache_honours_ttl_and_eviction_bitwise(self):
        # The injection point the server tests lean on: bring your own
        # clock, script expiry and eviction, and every response — hit,
        # post-expiry recompute, post-eviction recompute — stays bitwise
        # identical to the cold answer.
        graph = paper_figure1_graph()
        clock = FakeClock()
        cache = ResultCache(max_entries=1, ttl=10.0, clock=clock)

        async def serve():
            async with AsyncDCCHost(jobs=1, result_cache=cache) as host:
                host.attach("fig", graph)
                cold = await host.search("fig", 3, 2, 2)
                hit = await host.search("fig", 3, 2, 2)
                clock.advance(11.0)
                expired = await host.search("fig", 3, 2, 2)
                await host.search("fig", 2, 2, 2)  # evicts the d=3 entry
                evicted = await host.search("fig", 3, 2, 2)
                return cold, hit, expired, evicted, host.info()

        cold, hit, expired, evicted, info = asyncio.run(serve())
        assert host_counters_consistent(info)
        assert info["requests_cached"] == 1
        assert info["result_cache"]["expirations"] == 1
        assert info["result_cache"]["evictions"] >= 1
        for got in (hit, expired, evicted):
            assert_identical(got, cold)


def host_counters_consistent(info):
    served = info["requests_accepted"]
    cached = info["requests_cached"]
    coalesced = info["requests_coalesced"]
    return served + cached + coalesced >= served and cached >= 0 \
        and coalesced >= 0
