"""The documentation surface must exist and may not rot.

Runs the same checks as ``tools/check_docs.py`` (which CI also invokes)
inside tier-1, plus negative tests proving the checker actually catches
the failure modes it exists for.
"""

import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOLS = os.path.join(ROOT, "tools")
sys.path.insert(0, TOOLS)

import check_docs  # noqa: E402


class TestSurfaceExists:
    def test_readme_and_docs_present(self):
        assert os.path.exists(os.path.join(ROOT, "README.md"))
        assert os.path.exists(os.path.join(ROOT, "docs", "architecture.md"))
        assert os.path.exists(os.path.join(ROOT, "docs", "experiments.md"))

    def test_readme_covers_the_advertised_surface(self):
        with open(os.path.join(ROOT, "README.md")) as handle:
            text = handle.read()
        for needle in ("--backend", "--jobs", "docs/", "examples/",
                       "pip install", "search_dccs"):
            assert needle in text, needle


class TestChecker:
    def test_current_docs_pass(self, capsys):
        assert check_docs.main() == 0
        assert "docs OK" in capsys.readouterr().out

    def test_cli_invocation(self):
        completed = subprocess.run(
            [sys.executable, os.path.join(TOOLS, "check_docs.py")],
            capture_output=True, text=True,
        )
        assert completed.returncode == 0, completed.stderr

    def test_every_fig_benchmark_is_mapped(self):
        assert check_docs.check_figure_benchmarks_mapped() == []

    # -- negative: the checker must catch each failure mode -------------

    def test_detects_broken_markdown_link(self):
        problems = check_docs.check_markdown_links(
            os.path.join(ROOT, "README.md"),
            "see [the guide](docs/no-such-file.md)",
        )
        assert len(problems) == 1
        assert "no-such-file.md" in problems[0]

    def test_detects_dangling_code_span_path(self):
        problems = check_docs.check_code_span_paths(
            os.path.join(ROOT, "docs", "architecture.md"),
            "rebuilt by `src/repro/not_a_module.py` at import time",
        )
        assert len(problems) == 1
        assert "not_a_module.py" in problems[0]

    def test_ignores_external_links_and_plain_code(self):
        assert check_docs.check_markdown_links(
            os.path.join(ROOT, "README.md"),
            "[paper](https://example.org/icde18) and [top](#anchor)",
        ) == []
        assert check_docs.check_code_span_paths(
            os.path.join(ROOT, "README.md"),
            "run `pytest -q` with `PYTHONPATH=src` and `jobs=4`",
        ) == []

    @pytest.mark.parametrize("token,is_path", [
        ("src/repro/core/api.py", True),
        ("benchmarks/results/", True),
        ("fig12_datasets.txt", True),
        ("pip install -e .", False),
        ("jobs ∈ {1, 2, 4}", False),
        ("repro.parallel", False),
    ])
    def test_path_heuristic(self, token, is_path):
        assert check_docs._looks_like_repo_path(token) == is_path
