"""Tests for the utility modules."""

import random
import time

import pytest

from repro.core.result import DCCSResult
from repro.core.stats import SearchStats
from repro.utils import Timer, make_rng, sample_subset
from repro.utils.errors import (
    GraphError,
    LayerIndexError,
    ParameterError,
    VertexError,
)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(VertexError, GraphError)
        assert issubclass(VertexError, KeyError)
        assert issubclass(LayerIndexError, IndexError)
        assert issubclass(ParameterError, ValueError)

    def test_messages(self):
        assert "'v'" in str(VertexError("v"))
        assert "3" in str(LayerIndexError(3, 2))


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert not timer.running

    def test_live_elapsed(self):
        with Timer() as timer:
            assert timer.running
            first = timer.elapsed
            time.sleep(0.005)
            assert timer.elapsed >= first

    def test_unused_timer(self):
        assert Timer().elapsed == 0.0

    def test_repr(self):
        assert "Timer" in repr(Timer())


class TestRng:
    def test_none_is_deterministic(self):
        assert make_rng().random() == make_rng(None).random()

    def test_seed(self):
        assert make_rng(5).random() == make_rng(5).random()

    def test_passthrough(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_sample_subset_sorted(self):
        rng = make_rng(0)
        picked = sample_subset(rng, range(100), 5)
        assert picked == sorted(picked)
        assert len(set(picked)) == 5

    def test_sample_subset_too_large(self):
        with pytest.raises(ValueError):
            sample_subset(make_rng(0), [1, 2], 5)


class TestStats:
    def test_merge(self):
        a = SearchStats(dcc_calls=2, extra={"x": 1})
        b = SearchStats(dcc_calls=3, candidates_pruned=1, extra={"x": 2})
        a.merge(b)
        assert a.dcc_calls == 5
        assert a.candidates_pruned == 1
        assert a.extra["x"] == 3

    def test_as_dict(self):
        stats = SearchStats(dcc_calls=1, extra={"foo": 9})
        payload = stats.as_dict()
        assert payload["dcc_calls"] == 1
        assert payload["foo"] == 9


class TestResult:
    def test_cover_properties(self):
        result = DCCSResult(
            sets=[frozenset({1, 2}), frozenset({2, 3})],
            labels=[(0,), (1,)],
            algorithm="greedy",
            params=(1, 1, 2),
        )
        assert result.cover == {1, 2, 3}
        assert result.cover_size == 3
        assert "greedy" in repr(result)
