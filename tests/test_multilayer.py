"""Unit tests for the MultiLayerGraph substrate."""

import pytest

from repro.graph import MultiLayerGraph
from repro.utils.errors import (
    GraphError,
    LayerIndexError,
    ParameterError,
    VertexError,
)


def small_graph():
    g = MultiLayerGraph(3, vertices=["a", "b", "c", "d"])
    g.add_edge(0, "a", "b")
    g.add_edge(0, "b", "c")
    g.add_edge(1, "a", "c")
    g.add_edge(2, "a", "b")
    g.add_edge(2, "c", "d")
    return g


class TestConstruction:
    def test_requires_at_least_one_layer(self):
        with pytest.raises(ParameterError):
            MultiLayerGraph(0)

    def test_initial_vertices(self):
        g = MultiLayerGraph(2, vertices=[1, 2, 3])
        assert g.num_vertices == 3
        assert g.vertices() == {1, 2, 3}

    def test_num_layers(self):
        assert MultiLayerGraph(5).num_layers == 5

    def test_vertices_isolated_on_all_layers(self):
        g = MultiLayerGraph(3, vertices=["x"])
        for layer in g.layers():
            assert g.degree(layer, "x") == 0

    def test_empty_graph_len(self):
        assert len(MultiLayerGraph(1)) == 0

    def test_name(self):
        assert MultiLayerGraph(1, name="demo").name == "demo"


class TestMutation:
    def test_add_edge_creates_endpoints(self):
        g = MultiLayerGraph(2)
        g.add_edge(1, "u", "v")
        assert "u" in g and "v" in g
        assert g.has_edge(1, "u", "v")
        assert not g.has_edge(0, "u", "v")

    def test_add_edge_is_symmetric(self):
        g = small_graph()
        assert "b" in g.neighbors(0, "a")
        assert "a" in g.neighbors(0, "b")

    def test_self_loop_rejected(self):
        g = MultiLayerGraph(1)
        with pytest.raises(ParameterError):
            g.add_edge(0, "v", "v")

    def test_duplicate_edge_is_noop(self):
        g = MultiLayerGraph(1)
        g.add_edge(0, "a", "b")
        g.add_edge(0, "a", "b")
        assert g.num_edges(0) == 1

    def test_bad_layer(self):
        g = MultiLayerGraph(2)
        with pytest.raises(LayerIndexError):
            g.add_edge(2, "a", "b")
        with pytest.raises(LayerIndexError):
            g.add_edge(-1, "a", "b")

    def test_remove_edge(self):
        g = small_graph()
        g.remove_edge(0, "a", "b")
        assert not g.has_edge(0, "a", "b")
        assert g.has_edge(2, "a", "b")

    def test_remove_missing_edge(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.remove_edge(1, "b", "d")

    def test_remove_vertex(self):
        g = small_graph()
        g.remove_vertex("b")
        assert "b" not in g
        assert "b" not in g.neighbors(0, "a")
        assert g.validate()

    def test_remove_missing_vertex(self):
        g = small_graph()
        with pytest.raises(VertexError):
            g.remove_vertex("zz")

    def test_remove_vertices(self):
        g = small_graph()
        g.remove_vertices(["a", "b"])
        assert g.vertices() == {"c", "d"}
        assert g.validate()


class TestQueries:
    def test_degree(self):
        g = small_graph()
        assert g.degree(0, "b") == 2
        assert g.degree(1, "b") == 0

    def test_min_degree_over(self):
        g = small_graph()
        assert g.min_degree_over([0, 2], "a") == 1
        assert g.min_degree_over([0, 1], "b") == 0

    def test_num_edges(self):
        g = small_graph()
        assert g.num_edges(0) == 2
        assert g.num_edges(1) == 1
        assert g.total_edges() == 5

    def test_union_edge_count(self):
        g = small_graph()
        # Distinct pairs: ab, bc, ac, cd.
        assert g.union_edge_count() == 4

    def test_edges_emitted_once(self):
        g = small_graph()
        edges = list(g.edges(0))
        assert len(edges) == 2
        assert len({frozenset(edge) for edge in edges}) == 2

    def test_all_edges(self):
        g = small_graph()
        assert sum(1 for _ in g.all_edges()) == 5

    def test_neighbors_of_missing_vertex(self):
        g = small_graph()
        with pytest.raises(VertexError):
            g.neighbors(0, "zz")

    def test_summary(self):
        summary = small_graph().summary()
        assert summary["vertices"] == 4
        assert summary["layers"] == 3


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = small_graph()
        h = g.copy()
        h.add_edge(1, "b", "d")
        assert not g.has_edge(1, "b", "d")
        assert g != h

    def test_copy_equality(self):
        g = small_graph()
        assert g.copy() == g

    def test_induced_subgraph(self):
        g = small_graph()
        sub = g.induced_subgraph({"a", "b", "c"})
        assert sub.vertices() == {"a", "b", "c"}
        assert sub.has_edge(0, "a", "b")
        assert not sub.has_edge(2, "c", "d")
        assert sub.validate()

    def test_induced_subgraph_ignores_unknown(self):
        g = small_graph()
        sub = g.induced_subgraph({"a", "nope"})
        assert sub.vertices() == {"a"}

    def test_subgraph_of_layers(self):
        g = small_graph()
        sub = g.subgraph_of_layers([0, 2])
        assert sub.num_layers == 2
        assert sub.has_edge(1, "c", "d")
        assert sub.vertices() == g.vertices()

    def test_subgraph_of_layers_empty(self):
        with pytest.raises(ParameterError):
            small_graph().subgraph_of_layers([])

    def test_validate_detects_asymmetry(self):
        g = small_graph()
        g.adjacency(0)["a"].add("d")  # corrupt on purpose
        with pytest.raises(GraphError):
            g.validate()
