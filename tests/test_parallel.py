"""Determinism suite for the parallel subsystem (:mod:`repro.parallel`).

The contract under test, in order of strength:

1. **jobs invariance** — for every method, backend and seed,
   ``search_dccs(..., jobs=N)`` returns bitwise identical sets, labels,
   cover sizes *and aggregated stats counters* for every ``N`` (the
   shard structure is jobs-independent and the merge order canonical);
2. **greedy parity** — the parallel greedy is additionally bitwise
   identical, counters included, to the sequential :func:`gd_dccs`
   (its candidate family has no cross-candidate search state);
3. **validity** — parallel tree-search results are genuine d-CCs on
   their reported layer subsets (the shard variants may legally explore
   a different slice of the tree than the sequential searches, but may
   never report an invalid set).

Pool spawns are real in these tests (``jobs=4`` forks four workers), so
hypothesis example counts are kept deliberately small.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import is_coherent_dense, search_dccs
from repro.core.greedy import gd_dccs
from repro.experiments.runner import measure_point
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.parallel import (
    MAX_WORKERS,
    check_jobs,
    effective_jobs,
    graph_payload,
    payload_graph,
    shard_seed,
)
from repro.utils.errors import ParameterError
from tests.strategies import (
    labelled_multilayer_graphs,
    multilayer_graphs,
    search_parameters,
)

METHODS = ("greedy", "bottom-up", "top-down")


def run(graph, d, s, k, **kwargs):
    return search_dccs(graph, d, s, k, seed=5, **kwargs)


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.cover_size == second.cover_size, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


# ----------------------------------------------------------------------
# 1. jobs invariance
# ----------------------------------------------------------------------


class TestJobsInvariance:
    @given(st.data())
    @settings(max_examples=5, deadline=None)
    def test_jobs_1_vs_4_all_methods_both_backends(self, data):
        graph = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph))
        for backend in ("dict", "frozen"):
            for method in METHODS:
                one = run(graph, d, s, k, method=method, backend=backend,
                          jobs=1)
                four = run(graph, d, s, k, method=method, backend=backend,
                           jobs=4)
                assert_identical(one, four, (backend, method, d, s, k))

    @given(labelled_multilayer_graphs(max_vertices=7, max_layers=3))
    @settings(max_examples=4, deadline=None)
    def test_string_labels_survive_parallel_search(self, graph):
        for method in METHODS:
            one = run(graph, 1, 1, 2, method=method, backend="frozen",
                      jobs=1)
            four = run(graph, 1, 1, 2, method=method, backend="frozen",
                       jobs=4)
            assert_identical(one, four, method)
            for members in four.sets:
                assert all(isinstance(vertex, str) for vertex in members)

    def test_jobs_invariance_on_a_candidate_heavy_config(self):
        from repro.datasets import load

        graph = load("english", scale=0.1, seed=0).graph
        for method in METHODS:
            one = run(graph, 3, 2, 4, method=method, jobs=1)
            two = run(graph, 3, 2, 4, method=method, jobs=2)
            four = run(graph, 3, 2, 4, method=method, jobs=4)
            assert_identical(one, two, method)
            assert_identical(one, four, method)

    def test_default_seed_is_deterministic(self):
        graph = paper_figure1_graph()
        first = search_dccs(graph, 3, 2, 2, method="top-down", jobs=2)
        second = search_dccs(graph, 3, 2, 2, method="top-down", jobs=2)
        assert_identical(first, second)

    def test_auto_jobs_matches_explicit(self):
        graph = paper_figure1_graph()
        auto = run(graph, 3, 2, 2, method="bottom-up", jobs=0)
        explicit = run(graph, 3, 2, 2, method="bottom-up", jobs=2)
        assert_identical(auto, explicit)

    def test_top_down_full_support_root_only(self):
        graph = paper_figure1_graph()
        s = graph.num_layers
        one = run(graph, 2, s, 2, method="top-down", jobs=1)
        four = run(graph, 2, s, 2, method="top-down", jobs=4)
        assert_identical(one, four)

    def test_empty_result_under_huge_d(self):
        graph = paper_figure1_graph()
        for method in METHODS:
            one = run(graph, 99, 2, 2, method=method, jobs=1)
            four = run(graph, 99, 2, 2, method=method, jobs=4)
            assert_identical(one, four, method)
            assert four.sets == []


# ----------------------------------------------------------------------
# 2. greedy parity with the sequential algorithm
# ----------------------------------------------------------------------


class TestGreedyParity:
    @given(st.data())
    @settings(max_examples=5, deadline=None)
    def test_parallel_greedy_equals_sequential(self, data):
        graph = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph))
        for backend in ("dict", "frozen"):
            sequential = run(graph, d, s, k, method="greedy",
                             backend=backend)
            parallel = run(graph, d, s, k, method="greedy",
                           backend=backend, jobs=3)
            assert_identical(sequential, parallel, (backend, d, s, k))

    def test_parity_includes_candidate_family_size(self):
        graph = paper_figure1_graph()
        sequential = gd_dccs(graph, 3, 2, 2)
        parallel = search_dccs(graph, 3, 2, 2, method="greedy",
                               backend="dict", jobs=2)
        assert (
            parallel.stats.extra["candidate_family_size"]
            == sequential.stats.extra["candidate_family_size"]
        )


# ----------------------------------------------------------------------
# 3. validity of the tree-search shard variants
# ----------------------------------------------------------------------


class TestParallelTreeSearchValidity:
    @given(st.data())
    @settings(max_examples=5, deadline=None)
    def test_reported_sets_are_coherent_cores(self, data):
        graph = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph))
        for method in ("bottom-up", "top-down"):
            result = run(graph, d, s, k, method=method, jobs=2)
            assert len(result.sets) <= k
            for label, members in zip(result.labels, result.sets):
                assert len(label) == s
                assert is_coherent_dense(graph, members, label, d)


# ----------------------------------------------------------------------
# plumbing: validation, serialization, CLI, runner
# ----------------------------------------------------------------------


class TestJobsValidation:
    def test_check_jobs_accepts_none_zero_and_positive(self):
        assert check_jobs(None) is None
        assert check_jobs(0) == 0
        assert check_jobs(5) == 5

    @pytest.mark.parametrize("bad", [-1, 1.5, True, "four"])
    def test_check_jobs_rejects_garbage(self, bad):
        with pytest.raises(ParameterError):
            check_jobs(bad)

    def test_search_dccs_rejects_bad_jobs(self):
        with pytest.raises(ParameterError):
            search_dccs(paper_figure1_graph(), 1, 1, 1, jobs=-2)

    def test_effective_jobs_resolution(self):
        assert effective_jobs(3) == 3
        assert effective_jobs(0) >= 1
        assert effective_jobs(None) >= 1
        assert effective_jobs(10 ** 6) == MAX_WORKERS


class TestGraphPayloadRoundTrip:
    @given(multilayer_graphs(max_vertices=8, max_layers=3))
    @settings(max_examples=20, deadline=None)
    def test_frozen_round_trip(self, graph):
        frozen = graph.freeze()
        rebuilt = payload_graph(graph_payload(frozen))
        assert rebuilt == frozen
        assert rebuilt.name == frozen.name

    @given(labelled_multilayer_graphs(max_vertices=8, max_layers=3))
    @settings(max_examples=20, deadline=None)
    def test_dict_round_trip(self, graph):
        rebuilt = payload_graph(graph_payload(graph))
        assert rebuilt == graph
        assert rebuilt.name == graph.name

    def test_unknown_payload_kind(self):
        with pytest.raises(ValueError):
            payload_graph(("numpy", None))


class TestShardSeeds:
    def test_distinct_and_stable(self):
        seeds = [shard_seed(7, index) for index in range(16)]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [shard_seed(7, index) for index in range(16)]

    def test_none_aliases_the_library_default(self):
        assert shard_seed(None, 3) == shard_seed(0, 3)


class TestPoolFallback:
    def test_spawn_failure_at_submit_falls_back_inline(self, monkeypatch):
        # CPython spawns pool workers lazily at submit(), so a sandbox
        # that denies fork() fails there, not in the constructor; the
        # shard queue must degrade to inline execution either way.
        from repro.parallel import executor as executor_module

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, *args, **kwargs):
                raise OSError("fork denied")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", BrokenPool
        )
        graph = paper_figure1_graph()
        broken = run(graph, 3, 2, 2, method="bottom-up", jobs=4)
        healthy = run(graph, 3, 2, 2, method="bottom-up", jobs=1)
        assert_identical(broken, healthy)

    def test_worker_exceptions_still_propagate(self, monkeypatch):
        # Only pool-infrastructure failures trigger the fallback; a bug
        # inside shard execution must surface, not be silently retried.
        from repro.parallel import worker as worker_module

        def explode(self, task):
            raise ValueError("shard bug")

        monkeypatch.setattr(worker_module.ShardRunner, "run", explode)
        with pytest.raises(ValueError):
            run(paper_figure1_graph(), 3, 2, 2, method="bottom-up", jobs=1)


class TestPlumbing:
    def test_prefrozen_graph_keeps_id_vocabulary(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        raw = run(frozen, 3, 2, 2, method="greedy", jobs=2)
        translated = run(graph, 3, 2, 2, method="greedy", backend="frozen",
                         jobs=2)
        assert [
            frozen.labels_for(members) for members in raw.sets
        ] == translated.sets

    def test_measure_point_forwards_jobs(self):
        graph = MultiLayerGraph(1, vertices=range(40))
        for i in range(39):
            graph.add_edge(0, i, i + 1)
        sequential = measure_point(graph, 1, 1, 2, methods=["greedy"])
        parallel = measure_point(graph, 1, 1, 2, methods=["greedy"], jobs=2)
        for seq_row, par_row in zip(sequential, parallel):
            assert seq_row["cover"] == par_row["cover"]
            assert seq_row["dcc_calls"] == par_row["dcc_calls"]

    def test_cli_search_jobs(self, capsys):
        assert main([
            "search", "ppi", "--scale", "0.2",
            "-d", "2", "-s", "2", "-k", "2", "--jobs", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "worker cap 2" in out

    def test_cli_info_reports_workers(self, capsys):
        assert main(["info", "ppi", "--scale", "0.2"]) == 0
        assert "parallel_workers_effective" in capsys.readouterr().out
