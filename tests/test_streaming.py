"""Streaming-update suite: delta maintenance without rebind-the-world.

The contract under test, in order of importance:

1. **stream equivalence** (the acceptance-criterion property) — any
   interleaving of batched updates and queries against one persistent
   engine yields, for every query, results and counters bitwise
   identical to a fresh engine built from scratch over an identically
   mutated graph: cold and warm (repeats replay through the artifact
   cache), across backends, kernels, worker pools and sharded
   execution, and through the async host and the socket protocol;
2. **delta bookkeeping** — a mutation batch ticks ``mutation_version``
   exactly once, records the *net* delta (adds cancel queued removes),
   rejects invalid batches atomically, and ``delta_since`` replays any
   missing suffix or reports the history gone;
3. **CSR patching** — ``freeze()`` after a delta patches only the
   touched layers of the cached CSR, bitwise identical to a full
   ``from_graph`` rebuild, with untouched layers shared by reference;
4. **selective invalidation** — a delta-aware rebind keeps untouched
   layers' cached artifacts and the engine's patch-vs-rebuild counters
   make the split observable end to end (engine ``info()``, the
   serving ``stats`` op).
"""

import asyncio
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aio import AsyncDCCHost, DCCServer
from repro.engine import DCCEngine
from repro.graph import MultiLayerGraph
from repro.graph.delta import GraphDelta, merge_entries
from repro.graph.frozen import FrozenMultiLayerGraph
from repro.host import DCCHost, parse_host_spec
from repro.shard import ShardedEngine
from repro.utils.errors import (
    EdgeError,
    FrozenGraphError,
    ParameterError,
    VertexError,
)
from tests.strategies import multilayer_graphs


def stream_graph(seed=11, n=18, layers=3, p=0.3):
    """A deterministic random graph big enough to have interesting cores."""
    rng = random.Random(seed)
    graph = MultiLayerGraph(layers, vertices=range(n))
    for layer in range(layers):
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < p:
                    graph.add_edge(layer, u, v)
    return graph


def random_batch(rng, graph, layer=None, size=3):
    """A valid ``(add, remove)`` pair of edge batches for ``graph``."""
    vertices = sorted(graph.vertices())
    if len(vertices) < 2:
        return [], []
    layers = [layer] if layer is not None else list(graph.layers())
    add, remove = [], []
    for _ in range(size):
        target = rng.choice(layers)
        u, v = rng.sample(vertices, 2)
        if graph.has_edge(target, u, v):
            remove.append((target, u, v))
        else:
            add.append((target, u, v))
    # Dedupe (either orientation) — a batch removing one edge twice is
    # rejected by design, which is not what this helper is for.
    seen = set()
    add = [e for e in add
           if not ((e in seen) or ((e[0], e[2], e[1]) in seen)
                   or seen.add(e))]
    remove = [e for e in remove
              if not ((e in seen) or ((e[0], e[2], e[1]) in seen)
                      or seen.add(e))]
    return add, remove


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.cover_size == second.cover_size, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


# ----------------------------------------------------------------------
# delta bookkeeping on the mutable graph
# ----------------------------------------------------------------------


class TestDeltaBatching:
    def test_batch_ticks_version_once(self):
        graph = stream_graph()
        before = graph.mutation_version
        with graph.update():
            graph.add_edge(0, 0, 1) if not graph.has_edge(0, 0, 1) \
                else graph.remove_edge(0, 0, 1)
            graph.add_edge(1, 2, 3) if not graph.has_edge(1, 2, 3) \
                else graph.remove_edge(1, 2, 3)
        assert graph.mutation_version == before + 1

    def test_bulk_helpers_tick_once(self):
        graph = MultiLayerGraph(2, vertices=range(4))
        before = graph.mutation_version
        graph.add_edges(0, [(0, 1), (1, 2), (2, 3)])
        assert graph.mutation_version == before + 1
        before = graph.mutation_version
        graph.add_vertices([7, 8, 9])
        assert graph.mutation_version == before + 1
        before = graph.mutation_version
        graph.remove_vertices([7, 8])
        assert graph.mutation_version == before + 1

    def test_apply_delta_reports_net_effect(self):
        graph = stream_graph()
        add = [(0, u, v) for u, v in ((0, 1), (2, 5))
               if not graph.has_edge(0, u, v)]
        remove = [(1, u, v) for u, v in ((0, 1), (2, 5), (3, 4))
                  if graph.has_edge(1, u, v)]
        before = graph.mutation_version
        delta = graph.apply_delta(add=add, remove=remove)
        assert delta is not None
        assert delta.base_version == before
        assert delta.version == before + 1 == graph.mutation_version
        assert sorted(delta.edges_added) == sorted(add)
        assert sorted(delta.edges_removed) == sorted(remove)
        assert not delta.structural
        for layer, u, v in add:
            assert graph.has_edge(layer, u, v)
        for layer, u, v in remove:
            assert not graph.has_edge(layer, u, v)

    def test_add_then_remove_nets_to_nothing(self):
        graph = stream_graph()
        edge = next(
            (0, u, v) for u in range(18) for v in range(u + 1, 18)
            if not graph.has_edge(0, u, v)
        )
        before = graph.mutation_version
        # Removal listed with swapped endpoints: orientation must not
        # defeat the cancellation.
        delta = graph.apply_delta(add=[edge],
                                  remove=[(edge[0], edge[2], edge[1])])
        assert delta is None
        assert graph.mutation_version == before
        assert not graph.has_edge(*edge)

    def test_invalid_removal_rejects_whole_batch(self):
        graph = stream_graph()
        missing = next(
            (2, u, v) for u in range(18) for v in range(u + 1, 18)
            if not graph.has_edge(2, u, v)
        )
        new_edge = next(
            (0, u, v) for u in range(18) for v in range(u + 1, 18)
            if not graph.has_edge(0, u, v)
        )
        before = graph.mutation_version
        edges_before = [graph.num_edges(layer) for layer in graph.layers()]
        with pytest.raises(EdgeError):
            graph.apply_delta(add=[new_edge], remove=[missing])
        assert graph.mutation_version == before
        assert not graph.has_edge(*new_edge)
        assert [graph.num_edges(layer)
                for layer in graph.layers()] == edges_before

    def test_duplicate_removal_rejected_atomically(self):
        graph = stream_graph()
        present = next(
            (0, u, v) for u in range(18) for v in range(u + 1, 18)
            if graph.has_edge(0, u, v)
        )
        before = graph.mutation_version
        with pytest.raises(EdgeError):
            graph.apply_delta(
                remove=[present, (present[0], present[2], present[1])]
            )
        assert graph.mutation_version == before
        assert graph.has_edge(*present)

    def test_vertex_creation_marks_structural(self):
        graph = stream_graph()
        delta = graph.apply_delta(add=[(0, 0, "brand-new")])
        assert delta.structural

    def test_delta_since_current_version_is_empty(self):
        graph = stream_graph()
        delta = graph.delta_since(graph.mutation_version)
        assert delta is not None and delta.empty

    def test_delta_since_merges_batches(self):
        graph = stream_graph()
        base = graph.mutation_version
        first = next(
            (0, u, v) for u in range(18) for v in range(u + 1, 18)
            if not graph.has_edge(0, u, v)
        )
        graph.apply_delta(add=[first])
        second = next(
            (1, u, v) for u in range(18) for v in range(u + 1, 18)
            if graph.has_edge(1, u, v)
        )
        graph.apply_delta(remove=[second])
        merged = graph.delta_since(base)
        assert merged.base_version == base
        assert merged.version == graph.mutation_version
        assert tuple(merged.edges_added) == (first,)
        assert tuple(merged.edges_removed) == (second,)
        assert merged.touched_layers() == frozenset({0, 1})
        # Cross-batch cancellation: removing the first batch's addition
        # in a later batch nets the pair out of the merged view entirely
        # (the edge did not exist at ``base`` and does not exist now).
        graph.apply_delta(remove=[first])
        net = graph.delta_since(base)
        assert tuple(net.edges_added) == ()
        assert tuple(net.edges_removed) == (second,)

    def test_delta_since_unknown_or_future_version_is_none(self):
        graph = stream_graph()
        assert graph.delta_since(graph.mutation_version + 1) is None
        assert graph.delta_since(-1) is None

    def test_delta_log_is_bounded(self):
        graph = MultiLayerGraph(1, vertices=range(4))
        base = graph.mutation_version
        for _ in range(80):
            graph.add_edge(0, 0, 1)
            graph.remove_edge(0, 0, 1)
        assert graph.delta_since(base) is None
        recent = graph.mutation_version - 5
        replay = graph.delta_since(recent)
        assert replay is not None
        assert replay.version == graph.mutation_version

    def test_merge_entries_helper(self):
        merged = merge_entries(3, 5, [
            (3, 4, (((0, "a", "b"),)), (), False),
            (4, 5, (), ((0, "b", "a"),), False),
        ])
        assert isinstance(merged, GraphDelta)
        assert merged.empty and not merged.structural


class TestMutationErrors:
    def test_remove_missing_edge_raises_edge_error(self):
        graph = MultiLayerGraph(2, vertices=range(3))
        graph.add_edge(0, 0, 1)
        with pytest.raises(EdgeError) as caught:
            graph.remove_edge(1, 0, 1)
        message = str(caught.value)
        assert "layer 1" in message and "(0, 1)" in message
        # Nothing half-applied: the present edge survives untouched.
        assert graph.has_edge(0, 0, 1)
        assert graph.num_edges(0) == 1 and graph.num_edges(1) == 0

    def test_edge_error_is_a_graph_keyerror(self):
        # Compatibility contract: callers catching KeyError (the old
        # failure mode) keep working.
        assert issubclass(EdgeError, KeyError)

    def test_remove_edge_unknown_vertex_raises_vertex_error(self):
        graph = MultiLayerGraph(1, vertices=range(3))
        graph.add_edge(0, 0, 1)
        with pytest.raises(VertexError):
            graph.remove_edge(0, 0, 99)
        assert graph.has_edge(0, 0, 1)


# ----------------------------------------------------------------------
# CSR patching
# ----------------------------------------------------------------------


class TestFreezePatching:
    def test_patched_freeze_matches_full_rebuild(self):
        graph = stream_graph(layers=4)
        cached = graph.freeze()
        assert graph.freeze_rebuilds == 1
        add, remove = random_batch(random.Random(3), graph, layer=1)
        graph.apply_delta(add=add, remove=remove)
        patched = graph.freeze()
        assert graph.freeze_patches == 1
        rebuilt = FrozenMultiLayerGraph.from_graph(graph)
        assert list(patched.labels) == list(rebuilt.labels)
        for layer in graph.layers():
            assert list(patched._indptr[layer]) == \
                list(rebuilt._indptr[layer])
            assert list(patched._indices[layer]) == \
                list(rebuilt._indices[layer])
        assert patched._edge_counts == rebuilt._edge_counts
        assert patched._layer_masks == rebuilt._layer_masks
        # Untouched layers share the cached CSR arrays by reference —
        # that sharing is the whole point of the patch.
        for layer in graph.layers():
            if layer != 1:
                assert patched._indices[layer] is cached._indices[layer]

    @given(multilayer_graphs(max_vertices=8, max_layers=4),
           st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_patched_freeze_matches_rebuild_randomised(self, graph, rng):
        graph.freeze()
        add, remove = random_batch(rng, graph)
        if not add and not remove:
            return
        graph.apply_delta(add=add, remove=remove)
        patched = graph.freeze()
        rebuilt = FrozenMultiLayerGraph.from_graph(graph)
        for layer in graph.layers():
            assert list(patched._indptr[layer]) == \
                list(rebuilt._indptr[layer])
            assert list(patched._indices[layer]) == \
                list(rebuilt._indices[layer])
        assert patched._edge_counts == rebuilt._edge_counts
        assert patched._layer_masks == rebuilt._layer_masks

    def test_structural_delta_forces_rebuild(self):
        graph = stream_graph()
        graph.freeze()
        graph.apply_delta(add=[(0, 0, "newcomer")])
        graph.freeze()
        assert graph.freeze_patches == 0
        assert graph.freeze_rebuilds == 2

    def test_wide_delta_prefers_rebuild(self):
        # Touching more than half the layers makes patching pointless;
        # the heuristic falls back to one full rebuild.
        graph = stream_graph(layers=2)
        graph.freeze()
        add = []
        for layer in graph.layers():
            add.append(next(
                (layer, u, v) for u in range(18) for v in range(u + 1, 18)
                if not graph.has_edge(layer, u, v)
            ))
        graph.apply_delta(add=add)
        graph.freeze()
        assert graph.freeze_patches == 0
        assert graph.freeze_rebuilds == 2


# ----------------------------------------------------------------------
# engine-level stream equivalence
# ----------------------------------------------------------------------

QUERY_SPECS = [
    dict(d=2, s=2, k=2),
    dict(d=2, s=1, k=2, method="greedy"),
]

# One streaming script: (kind, payload) steps.  Queries repeat so the
# warm (artifact-cache-replayed) path is compared against a cold fresh
# engine; updates deliberately concentrate on layer 0 so the delta
# rebind keeps other layers' artifacts.
STREAM_SCRIPT = [
    ("query", 0), ("query", 1), ("query", 0),
    ("update", 0), ("query", 0), ("query", 0), ("query", 1),
    ("update", 1), ("update", 2), ("query", 1), ("query", 0),
]


def engine_configs():
    return [
        pytest.param(lambda g: DCCEngine(g, backend="dict", jobs=1),
                     id="dict-inline"),
        pytest.param(lambda g: DCCEngine(g, backend="frozen", jobs=1,
                                         kernel="python"),
                     id="frozen-python"),
        pytest.param(lambda g: DCCEngine(g, backend="frozen", jobs=1,
                                         kernel="auto"),
                     id="frozen-auto"),
        pytest.param(lambda g: DCCEngine(g, backend="frozen", jobs=2),
                     id="frozen-pooled"),
        pytest.param(lambda g: ShardedEngine(g, shards=2, jobs=1),
                     id="sharded"),
    ]


class TestEngineStreamEquivalence:
    @pytest.mark.parametrize("make_engine", engine_configs())
    def test_interleaved_stream_matches_rebuild_from_scratch(
            self, make_engine):
        graph = stream_graph()
        rng = random.Random(29)
        rebinds = 0
        stale = False
        with make_engine(graph) as engine:
            for kind, payload in STREAM_SCRIPT:
                if kind == "update":
                    add, remove = random_batch(rng, graph, layer=0)
                    assert graph.apply_delta(add=add, remove=remove) \
                        is not None
                    stale = True
                    continue
                if stale:
                    # Consecutive updates coalesce into one lazy rebind
                    # on the first query that observes them.
                    rebinds += 1
                    stale = False
                spec = QUERY_SPECS[payload]
                streamed = engine.search(**spec)
                with make_engine(graph.copy()) as fresh:
                    scratch = fresh.search(**spec)
                assert_identical(streamed, scratch,
                                 "step {!r} diverged".format((kind,
                                                              payload)))
            status = engine.info()
        assert status["invalidations"] == rebinds
        assert status["rebinds_patched"] + status["rebinds_full"] == rebinds

    def test_delta_rebind_patches_and_keeps_artifacts(self):
        graph = stream_graph(layers=4)
        with DCCEngine(graph, backend="frozen", jobs=1) as engine:
            engine.search(d=2, s=2, k=2)
            add, remove = random_batch(random.Random(7), graph, layer=0)
            graph.apply_delta(add=add, remove=remove)
            engine.search(d=2, s=2, k=2)
            status = engine.info()
        assert status["rebinds_patched"] == 1
        assert status["rebinds_full"] == 0
        assert status["freeze_patches"] == 1
        # Layer 0's per-layer core was re-peeled; layers 1-3 survived
        # the selective invalidation and replayed from cache.
        assert status["cache_invalidations_kept"] == 3
        assert status["cache_layer_core_hits"] == 3

    def test_structural_delta_falls_back_to_full_rebind(self):
        graph = stream_graph()
        with DCCEngine(graph, backend="frozen", jobs=1) as engine:
            engine.search(d=2, s=2, k=2)
            graph.apply_delta(add=[(0, 0, 99)])
            result = engine.search(d=2, s=2, k=2)
            status = engine.info()
        assert status["rebinds_full"] == 1
        assert status["rebinds_patched"] == 0
        with DCCEngine(graph.copy(), backend="frozen", jobs=1) as fresh:
            assert_identical(result, fresh.search(d=2, s=2, k=2))

    def test_pooled_workers_receive_deltas(self):
        graph = stream_graph()
        rng = random.Random(13)
        with DCCEngine(graph, backend="frozen", jobs=2) as engine:
            engine.search(d=2, s=2, k=2)
            spawned_before = engine.info()["pool_spawned"]
            for _ in range(2):
                add, remove = random_batch(rng, graph, layer=0)
                graph.apply_delta(add=add, remove=remove)
                result = engine.search(d=2, s=2, k=2)
                with DCCEngine(graph.copy(), backend="frozen",
                               jobs=2) as fresh:
                    assert_identical(result, fresh.search(d=2, s=2, k=2))
            status = engine.info()
        if spawned_before:
            # The pool was live across the mutations: the deltas were
            # shipped to the workers, not respawned around.
            assert status["pool_deltas_shipped"] >= 1
            assert status["pool_spawned"] == spawned_before

    @given(
        multilayer_graphs(max_vertices=8, max_layers=3),
        st.randoms(use_true_random=False),
        st.lists(st.sampled_from(["query", "update"]), min_size=2,
                 max_size=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_randomised_stream_equivalence(self, graph, rng, script):
        with DCCEngine(graph, backend="dict", jobs=1) as engine:
            for kind in script:
                if kind == "update":
                    add, remove = random_batch(rng, graph, size=2)
                    if add or remove:
                        graph.apply_delta(add=add, remove=remove)
                    continue
                streamed = engine.search(d=2, s=1, k=2)
                with DCCEngine(graph.copy(), backend="dict",
                               jobs=1) as fresh:
                    assert_identical(streamed, fresh.search(d=2, s=1, k=2))


# ----------------------------------------------------------------------
# serving tier: async host and socket protocol
# ----------------------------------------------------------------------


class TestAsyncHostUpdates:
    def test_update_barrier_orders_batch(self):
        graph = stream_graph()
        mirror = stream_graph()
        add, remove = random_batch(random.Random(17), graph, layer=0)

        async def run():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("g", graph)
                return await host.search_many([
                    {"graph": "g", "d": 2, "s": 2, "k": 2},
                    {"op": "update", "graph": "g",
                     "add": [list(edge) for edge in add],
                     "remove": [list(edge) for edge in remove]},
                    {"graph": "g", "d": 2, "s": 2, "k": 2},
                ]), host.info()

        results, info = asyncio.run(run())
        before, receipt, after = results
        assert receipt["applied"] == len(add) + len(remove)
        assert receipt["mutation_version"] == graph.mutation_version
        with DCCHost(jobs=1) as sync:
            sync.attach("old", mirror)
            baseline_before = sync.search("old", d=2, s=2, k=2)
            mirror.apply_delta(add=add, remove=remove)
            baseline_after = sync.search("old", d=2, s=2, k=2)
        assert_identical(before, baseline_before, "pre-update query")
        assert_identical(after, baseline_after, "post-update query")
        assert info["updates_applied"] == 1
        assert info["update_edges_applied"] == len(add) + len(remove)
        assert info["update_latency"]["count"] == 1

    def test_post_update_repeat_is_cached_and_identical(self):
        graph = stream_graph()

        async def run():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("g", graph)
                await host.search("g", d=2, s=2, k=2)
                add, remove = random_batch(random.Random(23), graph,
                                           layer=0)
                await host.update("g", add=add, remove=remove)
                first = await host.search("g", d=2, s=2, k=2)
                second = await host.search("g", d=2, s=2, k=2)
                return first, second, host.info()

        first, second, info = asyncio.run(run())
        assert_identical(first, second, "warm repeat diverged")
        assert info["result_cache"]["invalidations"] >= 1
        assert info["requests_cached"] >= 1
        engine_status = info["host"]["engines"]["g"]
        assert engine_status["rebinds_patched"] + \
            engine_status["rebinds_full"] == 1

    def test_update_rejects_immutable_graph(self):
        frozen = stream_graph().freeze()

        async def run():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("f", frozen)
                with pytest.raises(FrozenGraphError):
                    await host.update("f", add=[(0, 0, 1)])

        asyncio.run(run())

    def test_failed_update_leaves_graph_and_serving_intact(self):
        graph = stream_graph()
        missing = next(
            (0, u, v) for u in range(18) for v in range(u + 1, 18)
            if not graph.has_edge(0, u, v)
        )

        async def run():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("g", graph)
                before = await host.search("g", d=2, s=2, k=2)
                version = graph.mutation_version
                with pytest.raises(EdgeError):
                    await host.update("g", remove=[missing])
                assert graph.mutation_version == version
                after = await host.search("g", d=2, s=2, k=2)
                assert_identical(before, after)
                assert host.info()["updates_applied"] == 0

        asyncio.run(run())


class TestServerUpdateProtocol:
    @staticmethod
    async def _client(port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return reader, writer

    @staticmethod
    async def _ask(reader, writer, entry):
        writer.write((json.dumps(entry) + "\n").encode("utf-8"))
        await writer.drain()
        line = await reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    def test_update_op_round_trip(self):
        graph = stream_graph()
        mirror = stream_graph()
        add, remove = random_batch(random.Random(31), graph, layer=0)

        async def run():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("g", graph)
                async with DCCServer(host, port=0) as server:
                    reader, writer = await self._client(server.port)
                    first = await self._ask(reader, writer, {
                        "graph": "g", "d": 2, "s": 2, "k": 2, "id": "q1",
                    })
                    receipt = await self._ask(reader, writer, {
                        "op": "update", "graph": "g", "id": "u1",
                        "add": [list(edge) for edge in add],
                        "remove": [list(edge) for edge in remove],
                    })
                    second = await self._ask(reader, writer, {
                        "graph": "g", "d": 2, "s": 2, "k": 2, "id": "q2",
                    })
                    stats = await self._ask(reader, writer,
                                            {"op": "stats"})
                    writer.close()
                    return first, receipt, second, stats

        first, receipt, second, stats = asyncio.run(run())
        assert first["ok"] and second["ok"] and receipt["ok"]
        assert receipt["id"] == "u1"
        assert receipt["update"]["applied"] == len(add) + len(remove)
        assert receipt["update"]["mutation_version"] == \
            graph.mutation_version
        with DCCHost(jobs=1) as sync:
            sync.attach("g", mirror)
            baseline_first = sync.search("g", d=2, s=2, k=2)
            mirror.apply_delta(add=add, remove=remove)
            baseline_second = sync.search("g", d=2, s=2, k=2)
        assert first["cover"] == baseline_first.cover_size
        assert second["cover"] == baseline_second.cover_size
        assert second["sets"] == [sorted(members, key=repr)
                                  for members in baseline_second.sets]
        serving = stats["stats"]["serving"]
        assert serving["updates_applied"] == 1
        assert serving["update_latency"]["count"] == 1
        engine_status = serving["host"]["engines"]["g"]
        assert engine_status["rebinds_patched"] + \
            engine_status["rebinds_full"] == 1

    def test_malformed_updates_answer_typed_errors(self):
        graph = stream_graph()

        async def run():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("g", graph)
                async with DCCServer(host, port=0) as server:
                    reader, writer = await self._client(server.port)
                    answers = []
                    for entry in (
                        {"op": "update"},                        # no graph
                        {"op": "update", "graph": "g"},          # no edges
                        {"op": "update", "graph": "g",
                         "add": [[0, 1]]},                       # bad shape
                        {"op": "update", "graph": "g",
                         "add": "not-a-list"},                   # bad type
                        {"op": "bogus"},                         # unknown
                    ):
                        answers.append(
                            await self._ask(reader, writer, entry)
                        )
                    follow_up = await self._ask(reader, writer, {
                        "graph": "g", "d": 2, "s": 2, "k": 2,
                    })
                    writer.close()
                    return answers, follow_up

        answers, follow_up = asyncio.run(run())
        for answer in answers:
            assert answer["ok"] is False
            assert answer["error_type"] == "ProtocolError"
        assert "update" in answers[-1]["error"]
        assert follow_up["ok"], "connection must survive bad updates"


class TestSpecFileUpdates:
    def test_update_entries_accepted(self):
        graphs, queries, _ = parse_host_spec({
            "graphs": {"g": "figure1"},
            "queries": [
                {"graph": "g", "d": 3, "s": 2, "k": 2},
                {"op": "update", "graph": "g", "add": [[0, 1, 9]]},
                {"graph": "g", "d": 3, "s": 2, "k": 2},
            ],
        })
        assert len(queries) == 3
        assert queries[1]["op"] == "update"

    def test_update_entry_requires_edges(self):
        with pytest.raises(ParameterError):
            parse_host_spec({
                "graphs": {"g": "figure1"},
                "queries": [{"op": "update", "graph": "g"}],
            })

    def test_unknown_op_rejected(self):
        with pytest.raises(ParameterError):
            parse_host_spec({
                "graphs": {"g": "figure1"},
                "queries": [{"op": "detach", "graph": "g"}],
            })
