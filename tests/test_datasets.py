"""Tests for the stand-in dataset registry."""

import pytest

from repro.core.api import search_dccs
from repro.datasets import (
    DATASET_NAMES,
    PAPER_STATISTICS,
    build_standin,
    clear_cache,
    dataset_statistics,
    load,
)
from repro.utils.errors import ParameterError


class TestRegistry:
    def test_all_names_present(self):
        assert set(DATASET_NAMES) == {
            "ppi", "author", "german", "wiki", "english", "stack",
        }

    def test_unknown_name(self):
        with pytest.raises(ParameterError):
            load("nope")

    def test_invalid_scale(self):
        with pytest.raises(ParameterError):
            load("ppi", scale=0)

    def test_layer_counts_match_paper(self):
        for name in DATASET_NAMES:
            dataset = load(name, scale=0.2)
            assert dataset.graph.num_layers == PAPER_STATISTICS[name]["layers"]

    def test_memoisation(self):
        clear_cache()
        first = load("ppi", scale=0.3)
        second = load("ppi", scale=0.3)
        assert first is second
        clear_cache()
        third = load("ppi", scale=0.3)
        assert third is not first

    def test_scale_shrinks(self):
        small = load("author", scale=0.2, seed=1)
        full = load("author", scale=1.0, seed=1)
        assert small.graph.num_vertices < full.graph.num_vertices

    def test_ppi_has_complexes(self):
        dataset = load("ppi")
        assert dataset.complexes
        members = set()
        for complex_set in dataset.complexes:
            members |= complex_set
        assert members <= dataset.graph.vertices()

    def test_statistics_table(self):
        rows = dataset_statistics(names=("ppi",), scale=0.5)
        assert rows[0]["name"] == "ppi"
        assert rows[0]["paper"]["vertices"] == 328

    def test_deterministic_per_seed(self):
        clear_cache()
        a = load("german", scale=0.2, seed=5)
        clear_cache()
        b = load("german", scale=0.2, seed=5)
        assert a.graph == b.graph

    def test_searchable(self):
        dataset = load("ppi", scale=0.5)
        result = search_dccs(dataset.graph, d=2, s=2, k=3)
        assert result.cover_size > 0


class TestBuildStandin:
    def test_community_too_large(self):
        with pytest.raises(ParameterError):
            build_standin("x", 10, 2, 1, (5, 20), (1,))

    def test_overlap_creates_shared_members(self):
        dataset = build_standin(
            "x", 200, 4, 8, (20, 30), (2, 3), overlap=0.5, seed=2
        )
        shared = 0
        for i, first in enumerate(dataset.communities):
            for second in dataset.communities[i + 1:]:
                if first & second:
                    shared += 1
        assert shared > 0

    def test_complexes_nested_in_communities(self):
        dataset = build_standin(
            "x", 100, 3, 4, (10, 16), (2,), plant_complexes=True, seed=3
        )
        for complex_set in dataset.complexes:
            assert any(
                complex_set <= community
                for community in dataset.communities
            )
