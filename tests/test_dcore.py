"""Unit and property tests for single-layer d-core computation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcore import core_decomposition, core_sizes_by_threshold, d_core
from repro.utils.errors import ParameterError


def adjacency_from_edges(edges, vertices=()):
    adj = {v: set() for v in vertices}
    for u, v in edges:
        adj.setdefault(u, set()).add(v)
        adj.setdefault(v, set()).add(u)
    return adj


def triangle_plus_tail():
    # Triangle a-b-c with a path c-d-e hanging off it.
    return adjacency_from_edges(
        [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d"), ("d", "e")]
    )


def naive_d_core(adj, d, within=None):
    alive = set(adj) if within is None else set(within) & set(adj)
    while True:
        bad = {v for v in alive if len(adj[v] & alive) < d}
        if not bad:
            return alive
        alive -= bad


@st.composite
def random_adjacency(draw):
    n = draw(st.integers(min_value=0, max_value=14))
    vertices = list(range(n))
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((i, j))
    return adjacency_from_edges(edges, vertices)


class TestDCore:
    def test_zero_core_is_everything(self):
        adj = triangle_plus_tail()
        assert d_core(adj, 0) == set(adj)

    def test_two_core_is_triangle(self):
        assert d_core(triangle_plus_tail(), 2) == {"a", "b", "c"}

    def test_high_d_empty(self):
        assert d_core(triangle_plus_tail(), 3) == set()

    def test_negative_d(self):
        with pytest.raises(ParameterError):
            d_core(triangle_plus_tail(), -1)

    def test_within_restriction(self):
        adj = triangle_plus_tail()
        # Without c the triangle collapses entirely for d=2.
        assert d_core(adj, 2, within={"a", "b", "d", "e"}) == set()

    def test_within_unknown_vertices_ignored(self):
        adj = triangle_plus_tail()
        assert d_core(adj, 2, within={"a", "b", "c", "zz"}) == {"a", "b", "c"}

    def test_empty_graph(self):
        assert d_core({}, 1) == set()

    @given(random_adjacency(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=120, deadline=None)
    def test_matches_naive_peeling(self, adj, d):
        assert d_core(adj, d) == naive_d_core(adj, d)

    @given(random_adjacency(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_result_is_d_dense_and_maximal(self, adj, d):
        core = d_core(adj, d)
        for v in core:
            assert len(adj[v] & core) >= d
        # Maximality: adding any outside vertex breaks closure under
        # peeling (the naive fixed point from the larger seed shrinks back).
        for v in set(adj) - core:
            assert naive_d_core(adj, d, within=core | {v}) == core


class TestCoreDecomposition:
    def test_triangle_plus_tail(self):
        core = core_decomposition(triangle_plus_tail())
        assert core == {"a": 2, "b": 2, "c": 2, "d": 1, "e": 1}

    def test_empty(self):
        assert core_decomposition({}) == {}

    def test_single_vertex(self):
        assert core_decomposition({"v": set()}) == {"v": 0}

    @given(random_adjacency())
    @settings(max_examples=100, deadline=None)
    def test_core_number_consistent_with_d_core(self, adj):
        core = core_decomposition(adj)
        max_core = max(core.values(), default=0)
        for d in range(max_core + 2):
            expected = {v for v, value in core.items() if value >= d}
            assert d_core(adj, d) == expected

    @given(random_adjacency())
    @settings(max_examples=50, deadline=None)
    def test_within_restriction_matches_subgraph(self, adj):
        keep = {v for v in adj if v % 2 == 0}
        restricted = core_decomposition(adj, within=keep)
        sub_adj = {v: adj[v] & keep for v in keep}
        assert restricted == core_decomposition(sub_adj)


class TestCoreSizes:
    def test_sizes_histogram(self):
        sizes = core_sizes_by_threshold(triangle_plus_tail())
        assert sizes[0] == 5
        assert sizes[1] == 5
        assert sizes[2] == 3

    def test_empty(self):
        assert core_sizes_by_threshold({}) == {0: 0}

    @given(random_adjacency())
    @settings(max_examples=50, deadline=None)
    def test_sizes_match_d_core(self, adj):
        sizes = core_sizes_by_threshold(adj)
        for d, size in sizes.items():
            assert size == len(d_core(adj, d))
