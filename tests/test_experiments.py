"""Integration tests for the experiment harness (tiny scales)."""

from repro.datasets import clear_cache
from repro.experiments import (
    DEFAULTS,
    compare_mimag,
    figure12_table,
    figure13_table,
    figure29,
    figure30,
    figure30_table,
    figure31,
    figure32,
    format_series,
    format_table,
    pivot_series,
    preprocessing_ablation,
    pruning_ablation,
    s_large,
    s_large_values,
    search_space_reduction,
    sweep,
    vary_d,
    vary_k,
    vary_large_s,
    vary_p,
    vary_q,
    vary_small_s,
)

TINY = 0.15


def teardown_module(module):
    clear_cache()


class TestConfig:
    def test_defaults_match_paper(self):
        assert DEFAULTS["k"] == 10
        assert DEFAULTS["d"] == 4
        assert DEFAULTS["s_small"] == 3

    def test_s_large(self):
        assert s_large(24) == 22
        assert s_large(15, offset=0) == 15
        assert s_large_values(24) == (20, 21, 22, 23, 24)


class TestSweeps:
    def test_vary_small_s_rows(self):
        rows = vary_small_s("english", scale=TINY, s_values=(1, 2))
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"greedy", "bottom-up"}
        assert all(row["dataset"] == "english" for row in rows)
        assert {row["s"] for row in rows} == {1, 2}

    def test_vary_large_s_rows(self):
        rows = vary_large_s("english", scale=TINY, s_values=(14, 15))
        assert {row["algorithm"] for row in rows} == {
            "greedy", "bottom-up", "top-down",
        }

    def test_cover_decreases_with_s(self):
        rows = vary_small_s(
            "english", methods=("greedy",), scale=0.3, s_values=(1, 3, 5)
        )
        covers = {row["s"]: row["cover"] for row in rows}
        assert covers[1] >= covers[3] >= covers[5]

    def test_vary_d_small_and_large(self):
        small = vary_d("german", large_s=False, d_values=(2, 4), scale=TINY)
        assert {row["algorithm"] for row in small} == {"greedy", "bottom-up"}
        large = vary_d("german", large_s=True, d_values=(2, 4), scale=TINY)
        assert {row["algorithm"] for row in large} == {"greedy", "top-down"}

    def test_cover_decreases_with_d(self):
        rows = vary_d("german", methods=("greedy",), d_values=(2, 6),
                      scale=0.3)
        covers = {row["d"]: row["cover"] for row in rows}
        assert covers[2] >= covers[6]

    def test_vary_k(self):
        rows = vary_k("wiki", k_values=(5, 10), scale=TINY)
        covers = {}
        for row in rows:
            if row["algorithm"] == "greedy":
                covers[row["k"]] = row["cover"]
        assert covers[10] >= covers[5]

    def test_vary_p_shrinks_graph(self):
        rows = vary_p("stack", p_values=(0.3, 1.0), scale=TINY,
                      methods=("bottom-up",))
        assert {row["p"] for row in rows} == {0.3, 1.0}

    def test_vary_q_clamps_s(self):
        rows = vary_q("stack", q_values=(0.2,), scale=TINY,
                      methods=("bottom-up",))
        assert all(row["s"] <= 24 * 0.2 + 1 for row in rows)


class TestAblation:
    def test_preprocessing_variants(self):
        rows = preprocessing_ablation("english", scale=TINY)
        assert {row["variant"] for row in rows} == {
            "full", "No-SL", "No-IR", "No-VD", "No-Pre",
        }

    def test_pruning_variants_td(self):
        rows = pruning_ablation("english", large_s=True, scale=TINY)
        assert "No-Index" in {row["variant"] for row in rows}

    def test_search_space_reduction(self):
        payload = search_space_reduction("english", scale=0.3)
        assert payload["bu_candidates"] < payload["gd_candidates"]
        assert 0.0 <= payload["reduction"] <= 1.0


class TestComparisons:
    def test_compare_mimag_row(self):
        row, quasi, dcc = compare_mimag("ppi", 3, scale=0.5,
                                        node_budget=4000)
        assert row["dataset"] == "ppi"
        assert 0.0 <= row["precision"] <= 1.0
        assert 0.0 <= row["recall"] <= 1.0

    def test_figure29_rows(self):
        rows = figure29(dataset_names=("ppi",), d_values=(3,), scale=0.5,
                        node_budget=3000)
        assert len(rows) == 1

    def test_figure30_distribution_sums_to_one(self):
        payload = figure30("ppi", d=3, scale=0.5, node_budget=4000)
        for fractions in payload["distribution"].values():
            assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_figure31_classes(self):
        payload = figure31("ppi", d=3, scale=0.5, node_budget=4000)
        assert payload["both"] >= 0
        assert set(payload["densities"]) == {"both", "only_dcc", "only_quasi"}

    def test_figure32_rates(self):
        rows = figure32(d_values=(3,), scale=0.6, node_budget=4000)
        assert 0.0 <= rows[0]["bu_recovery"] <= 1.0


class TestTables:
    def test_format_table(self):
        text = format_table(
            [{"a": 1, "b": 2.5}], ["a", "b"], title="T"
        )
        assert "T" in text
        assert "2.500" in text

    def test_pivot_and_series(self):
        rows = [
            {"algorithm": "x", "s": 1, "time_s": 0.5},
            {"algorithm": "x", "s": 2, "time_s": 0.7},
        ]
        series = pivot_series(rows, "s")
        assert series["x"] == [(1, 0.5), (2, 0.7)]
        assert "x" in format_series(rows, "s")

    def test_figure12_table(self):
        text = figure12_table(scale=TINY)
        assert "ppi" in text
        assert "328" in text  # the paper column

    def test_figure13_table(self):
        text = figure13_table()
        assert "s (small)" in text

    def test_figure30_table_render(self):
        payload = {
            "dataset": "ppi", "d": 3,
            "distribution": {3: {3: 1.0}},
            "fully_contained": 1.0,
        }
        assert "|Q|=3" in figure30_table(payload)


class TestRunner:
    def test_sweep_records_parameter(self):
        from repro.datasets import load
        graph = load("ppi", scale=0.4).graph
        rows = sweep(
            graph, "d", (2, 3), {"d": 2, "s": 2, "k": 3}, ("bottom-up",)
        )
        assert [row["d"] for row in rows] == [2, 3]
        assert all("time_s" in row for row in rows)
