"""Adversarial and degenerate instances for all three DCCS algorithms.

These are the structures most likely to break search invariants:
identical layers (every layer subset yields the same core), disjoint
layer supports (every intersection is empty), complete graphs (nothing
peels), stars (everything peels), d = 0 (the core is the whole graph),
and k far beyond the number of distinct candidates.
"""

import pytest

from repro.core import search_dccs
from repro.core.dcc import coherent_core, is_coherent_dense
from repro.graph import MultiLayerGraph, replicate_layer

METHODS = ("greedy", "bottom-up", "top-down")


def complete_graph(n, layers):
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return replicate_layer(edges, layers)


def star_graph(n, layers):
    edges = [(0, i) for i in range(1, n)]
    return replicate_layer(edges, layers)


def disjoint_supports_graph():
    """Layer i hosts its own clique; no vertex is dense on two layers."""
    g = MultiLayerGraph(3, vertices=range(12))
    for layer in range(3):
        block = range(layer * 4, layer * 4 + 4)
        block = list(block)
        for i, u in enumerate(block):
            for v in block[i + 1:]:
                g.add_edge(layer, u, v)
    return g


class TestIdenticalLayers:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_subset_gives_same_core(self, method):
        g = complete_graph(6, 4)
        result = search_dccs(g, d=3, s=2, k=3, method=method)
        # Only one distinct candidate exists; output is deduplicated.
        assert len(result.sets) == 1
        assert result.sets[0] == frozenset(range(6))

    def test_cover_equals_clique(self):
        g = complete_graph(5, 3)
        for method in METHODS:
            assert search_dccs(g, 4, 3, 2, method=method).cover_size == 5


class TestDisjointSupports:
    @pytest.mark.parametrize("method", METHODS)
    def test_s_two_yields_nothing(self, method):
        g = disjoint_supports_graph()
        result = search_dccs(g, d=3, s=2, k=3, method=method)
        assert result.cover_size == 0

    @pytest.mark.parametrize("method", METHODS)
    def test_s_one_finds_all_cliques(self, method):
        g = disjoint_supports_graph()
        result = search_dccs(g, d=3, s=1, k=3, method=method)
        assert result.cover_size == 12


class TestStars:
    @pytest.mark.parametrize("method", METHODS)
    def test_star_has_no_two_dense_core(self, method):
        g = star_graph(8, 3)
        result = search_dccs(g, d=2, s=2, k=2, method=method)
        assert result.cover_size == 0

    @pytest.mark.parametrize("method", METHODS)
    def test_star_one_dense_core_is_whole_star(self, method):
        g = star_graph(8, 3)
        result = search_dccs(g, d=1, s=3, k=1, method=method)
        assert result.cover_size == 8


class TestDZero:
    @pytest.mark.parametrize("method", METHODS)
    def test_d_zero_covers_everything(self, method):
        g = disjoint_supports_graph()
        result = search_dccs(g, d=0, s=3, k=1, method=method)
        assert result.cover_size == 12

    def test_d_zero_core_is_vertex_set(self):
        g = star_graph(5, 2)
        assert coherent_core(g, [0, 1], 0) == frozenset(g.vertices())


class TestLargeK:
    @pytest.mark.parametrize("method", METHODS)
    def test_k_exceeding_candidates(self, method):
        g = disjoint_supports_graph()
        result = search_dccs(g, d=3, s=1, k=50, method=method)
        assert len(result.sets) <= 3
        assert result.cover_size == 12
        for layers, members in zip(result.labels, result.sets):
            assert is_coherent_dense(g, members, layers, 3)


class TestSingletonDimensions:
    @pytest.mark.parametrize("method", METHODS)
    def test_single_layer_graph(self, method):
        g = complete_graph(4, 1)
        result = search_dccs(g, d=2, s=1, k=2, method=method)
        assert result.cover_size == 4

    @pytest.mark.parametrize("method", METHODS)
    def test_single_vertex_graph(self, method):
        g = MultiLayerGraph(2, vertices=["only"])
        result = search_dccs(g, d=1, s=2, k=1, method=method)
        assert result.cover_size == 0

    @pytest.mark.parametrize("method", METHODS)
    def test_s_equals_l_on_identical_layers(self, method):
        g = complete_graph(5, 4)
        result = search_dccs(g, d=2, s=4, k=2, method=method)
        assert result.cover_size == 5


class TestMixedScales:
    @pytest.mark.parametrize("method", METHODS)
    def test_nested_cliques(self, method):
        # K8 on layers {0,1}; its sub-K4 additionally on layer 2: the
        # algorithms must report the large core for s=2 and the small
        # one for s=3.
        g = MultiLayerGraph(3, vertices=range(8))
        for layer in (0, 1):
            for i in range(8):
                for j in range(i + 1, 8):
                    g.add_edge(layer, i, j)
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(2, i, j)
        wide = search_dccs(g, d=3, s=2, k=1, method=method)
        assert wide.cover_size == 8
        narrow = search_dccs(g, d=3, s=3, k=1, method=method)
        assert narrow.sets[0] == frozenset(range(4))
