"""Fault-injection suite: worker processes dying under the stack, and
clients misbehaving above it.

The contract under test, layer by layer:

1. **pool** — a worker killed under a spawned :class:`WorkerPool`
   surfaces :class:`WorkerCrashError` (typed, never a hang and never a
   silent inline rerun), the executor is reset, and the next query
   respawns fresh workers and returns correct results;
2. **engine / host / async front-end** — the typed error propagates to
   exactly the affected request, the session stays usable, and
   subsequent queries return results bitwise identical to a healthy
   run;
3. **spawn-incapable environments keep their legacy behavior** — a pool
   that never ran degrades to inline execution silently (that is an
   environment property, not a fault);
4. **socket tier** (:class:`~repro.aio.DCCServer`) — a client
   disconnecting mid-request has its pending work cancelled (or
   completed) without disturbing other connections; malformed and
   oversized request lines answer per-line typed errors through a
   bounded read and the connection keeps serving; ``aclose()``
   mid-traffic drains every accepted request, and closing the host
   afterwards returns ``live_pool_count()`` to baseline.

Every process-crash test kills real forked processes with SIGKILL,
which is the closest stand-in for the OOM killer the serving layer will
actually meet; every network test misbehaves over a real localhost
socket.
"""

import os
import signal
import time

import pytest

from repro.core import search_dccs
from repro.engine import DCCEngine
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.host import DCCHost
from repro.parallel import live_pool_count
from repro.parallel.executor import WorkerPool
from repro.parallel.plan import make_query, plan_query
from repro.utils.errors import WorkerCrashError


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


def kill_one_worker(pool):
    """SIGKILL one live worker process and wait for the executor's
    management thread to notice the corpse (its ``_broken`` flag), so
    the next submit/collect deterministically sees the fault."""
    pids = pool.worker_pids()
    assert pids, "pool has no live workers to kill"
    os.kill(pids[0], signal.SIGKILL)
    executor = pool._pool
    deadline = time.time() + 5.0
    while time.time() < deadline:
        if getattr(executor, "_broken", True):
            break
        time.sleep(0.01)
    time.sleep(0.05)


class TestPoolCrash:
    def test_killed_worker_surfaces_typed_error_and_respawns(self):
        graph = paper_figure1_graph().freeze()
        query = make_query("greedy", 2, 2, 3)
        with WorkerPool(graph, jobs=2) as pool:
            plan = plan_query(graph, query, workers=pool.workers)
            assert pool.warm() is True
            healthy = pool.map_query(query, plan.tasks, plan)
            kill_one_worker(pool)
            with pytest.raises(WorkerCrashError):
                pool.map_query(query, plan.tasks, plan)
            assert pool.crashes == 1
            # The crash reset, rather than broke, the pool: the next
            # query spawns fresh workers and matches the healthy run.
            assert pool.spawned is False
            assert pool.inline_fallback is False
            respawned = pool.map_query(query, plan.tasks, plan)
            assert pool.spawned is True
            assert respawned == healthy

    def test_crash_error_reports_its_cause(self):
        graph = paper_figure1_graph().freeze()
        query = make_query("greedy", 2, 2, 3)
        with WorkerPool(graph, jobs=2) as pool:
            plan = plan_query(graph, query, workers=pool.workers)
            assert pool.warm() is True
            kill_one_worker(pool)
            with pytest.raises(WorkerCrashError) as crashed:
                pool.map_query(query, plan.tasks, plan)
        assert crashed.value.cause is not None
        assert "respawn" in str(crashed.value)

    def test_spawn_incapable_pool_keeps_inline_fallback(self, monkeypatch):
        # Legacy contract: an environment that cannot fork at all (the
        # pool never ran) silently degrades to inline execution — no
        # WorkerCrashError, because nothing crashed.
        from repro.parallel import executor as executor_module

        class BrokenPool:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise OSError("fork denied")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor",
                            BrokenPool)
        graph = paper_figure1_graph().freeze()
        query = make_query("greedy", 2, 2, 3)
        with WorkerPool(graph, jobs=4) as pool:
            plan = plan_query(graph, query, workers=pool.workers)
            results = pool.map_query(query, plan.tasks, plan)
            assert pool.inline_fallback is True
            assert pool.crashes == 0
        assert len(results) == len(plan.tasks)


class TestEngineCrash:
    def test_engine_surfaces_error_then_recovers(self):
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=2) as engine:
            assert engine.warm() is True
            healthy = engine.search(3, 2, 2, method="greedy")
            kill_one_worker(engine._pool)
            with pytest.raises(WorkerCrashError):
                engine.search(3, 2, 2, method="greedy")
            # Same engine, next query: respawned pool, correct results,
            # honest accounting.
            recovered = engine.search(3, 2, 2, method="greedy")
            assert engine._pool.crashes == 1
            assert engine.info()["pool_spawned"] is True
        assert_identical(recovered, healthy)
        assert_identical(
            recovered,
            search_dccs(graph, 3, 2, 2, method="greedy", jobs=1),
        )

    @pytest.mark.slow
    def test_mid_search_kill_does_not_hang(self):
        # Kill while shard futures are genuinely in flight.  Whatever
        # the interleaving, the call must return promptly — either the
        # typed crash error or (if every shard finished first) the
        # correct result; it must never wedge on a dead process.  The
        # recovery search follows the error's own advice and retries
        # once: when the kill lands after the shards completed, it is
        # the *next* submission that finds the corpse.
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=2) as engine:
            assert engine.warm() is True
            baseline = engine.search(3, 2, 2, method="greedy")
            handle = engine.submit(3, 3, 2, method="greedy")
            kill_one_worker(engine._pool)
            try:
                result = handle.collect()
            except WorkerCrashError:
                pass
            else:
                assert_identical(
                    result,
                    search_dccs(graph, 3, 3, 2, method="greedy", jobs=1),
                )
            try:
                recovered = engine.search(3, 2, 2, method="greedy")
            except WorkerCrashError:
                recovered = engine.search(3, 2, 2, method="greedy")
        assert_identical(recovered, baseline)


class TestShardedEngineCrash:
    def test_sharded_engine_surfaces_error_then_recovers(self):
        # Same crash contract as the unsharded engine: pooled workers
        # serve a *sharded* graph rebuilt from its payload, a SIGKILLed
        # worker surfaces the typed error on the affected query only,
        # and the respawned pool returns results bitwise identical to
        # an unsharded healthy run.
        from repro.shard import ShardedEngine

        graph = paper_figure1_graph()
        with ShardedEngine(graph, shards=2, jobs=2) as engine:
            assert engine.warm() is True
            healthy = engine.search(3, 2, 2, method="greedy")
            kill_one_worker(engine._pool)
            with pytest.raises(WorkerCrashError):
                engine.search(3, 2, 2, method="greedy")
            recovered = engine.search(3, 2, 2, method="greedy")
            assert engine._pool.crashes == 1
            assert engine.info()["pool_spawned"] is True
        assert_identical(recovered, healthy)
        assert_identical(
            recovered,
            search_dccs(graph, 3, 2, 2, method="greedy", jobs=1),
        )


class TestHostCrash:
    def test_host_session_survives_a_crash(self):
        graphs = {"fig": paper_figure1_graph()}
        with DCCHost(jobs=2) as host:
            host.attach("fig", graphs["fig"])
            healthy = host.search("fig", 3, 2, 2, method="greedy")
            host.engine("fig").warm()
            kill_one_worker(host.engine("fig")._pool)
            with pytest.raises(WorkerCrashError):
                host.search("fig", 2, 2, 2, method="greedy")
            recovered = host.search("fig", 3, 2, 2, method="greedy")
            served_after = host.search("fig", 2, 2, 2, method="greedy")
        assert_identical(recovered, healthy)
        assert_identical(
            served_after,
            search_dccs(graphs["fig"], 2, 2, 2, method="greedy", jobs=1),
        )

    def test_async_host_fails_one_request_not_the_service(self):
        import asyncio

        from repro.aio import AsyncDCCHost

        graph = paper_figure1_graph()
        pools_before = live_pool_count()

        async def serve():
            async with AsyncDCCHost(jobs=2) as host:
                host.attach("fig", graph)
                healthy = await host.search("fig", 3, 2, 2,
                                            method="greedy")
                engine = host.host.engine("fig")
                engine.warm()
                kill_one_worker(engine._pool)
                with pytest.raises(WorkerCrashError):
                    await host.search("fig", 2, 2, 2, method="greedy")
                recovered = await host.search("fig", 3, 2, 2,
                                              method="greedy")
                return healthy, recovered

        healthy, recovered = asyncio.run(serve())
        assert_identical(recovered, healthy)
        assert live_pool_count() == pools_before

    @pytest.mark.stress
    def test_repeated_crashes_keep_recovering(self):
        graph = paper_figure1_graph()
        with DCCEngine(graph, jobs=2) as engine:
            baseline = engine.search(3, 2, 2, method="greedy")
            for round_number in range(3):
                assert engine.warm() is True
                kill_one_worker(engine._pool)
                with pytest.raises(WorkerCrashError):
                    engine.search(3, 2, 2, method="greedy")
                assert_identical(engine.search(3, 2, 2, method="greedy"),
                                 baseline, round_number)
            assert engine._pool.crashes == 3


class TestNetworkFaults:
    """Client misbehaviour over real sockets; see tests/test_server.py
    for the cooperative-protocol suite."""

    pytestmark = pytest.mark.network

    @staticmethod
    async def _connect(port):
        import asyncio
        import json

        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def ask(entry):
            writer.write((json.dumps(entry) + "\n").encode())
            await writer.drain()
            return json.loads(await reader.readline())

        return reader, writer, ask

    @staticmethod
    def _gate(host):
        """Park every dispatcher batch behind an event the test holds."""
        import asyncio

        gate = asyncio.Event()
        real_serve = host._serve_batch

        async def gated(name, batch):
            await gate.wait()
            await real_serve(name, batch)

        host._serve_batch = gated
        return gate

    def test_client_disconnect_cancels_without_disrupting_others(self):
        import asyncio

        from repro.aio import AsyncDCCHost, DCCServer

        graph = paper_figure1_graph()
        pools_before = live_pool_count()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                gate = self._gate(host)
                async with DCCServer(host, port=0) as server:
                    port = server.port
                    _, victim_writer, victim_ask = await self._connect(port)
                    _, other_writer, other_ask = await self._connect(port)
                    victim_writer.write(
                        b'{"graph": "fig", "d": 3, "s": 2, "k": 2}\n'
                    )
                    await victim_writer.drain()
                    other = asyncio.ensure_future(
                        other_ask({"graph": "fig", "d": 2, "s": 2, "k": 2})
                    )
                    while host.requests_accepted < 2:
                        await asyncio.sleep(0.01)
                    # The victim walks away with its request parked on
                    # the gated dispatcher.
                    victim_writer.close()
                    await victim_writer.wait_closed()
                    while server.counters()["connections_open"] > 1:
                        await asyncio.sleep(0.01)
                    gate.set()
                    # The surviving client is answered, and the server
                    # still accepts fresh connections and requests.
                    answered = await other
                    _, late_writer, late_ask = await self._connect(port)
                    late = await late_ask(
                        {"graph": "fig", "d": 3, "s": 2, "k": 2}
                    )
                    for writer in (other_writer, late_writer):
                        writer.close()
                        await writer.wait_closed()
                # Counters read after aclose: the surviving connections
                # have been torn down by the drain.
                return answered, late, server.counters()

        answered, late, counters = asyncio.run(serve())
        assert answered["ok"] and late["ok"]
        with DCCHost(jobs=1) as host:
            host.attach("fig", graph)
            want = host.search("fig", 2, 2, 2)
        assert answered["cover"] == want.cover_size
        assert len(answered["sets"]) == len(want.sets)
        # Every request was read, but the victim's response was never
        # deliverable: at most the two surviving answers were written.
        assert counters["requests_received"] == 3
        assert counters["responses_ok"] <= 2
        assert counters["connections_open"] == 0
        assert live_pool_count() == pools_before

    def test_malformed_lines_answer_typed_errors_per_line(self):
        import asyncio

        from repro.aio import AsyncDCCHost, DCCServer

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", paper_figure1_graph())
                async with DCCServer(host, port=0) as server:
                    reader, writer, ask = await self._connect(server.port)
                    broken = await ask_raw(reader, writer, b"not json\n")
                    listed = await ask_raw(reader, writer, b"[1, 2, 3]\n")
                    scalar = await ask_raw(reader, writer, b"42\n")
                    healthy = await ask(
                        {"graph": "fig", "d": 3, "s": 2, "k": 2}
                    )
                    writer.close()
                    await writer.wait_closed()
                    return broken, listed, scalar, healthy, \
                        server.counters()

        async def ask_raw(reader, writer, data):
            import json

            writer.write(data)
            await writer.drain()
            return json.loads(await reader.readline())

        broken, listed, scalar, healthy, counters = asyncio.run(serve())
        assert not broken["ok"]
        assert broken["error_type"] == "JSONDecodeError"
        for response in (listed, scalar):
            assert not response["ok"]
            assert response["error_type"] == "ProtocolError"
            assert "JSON object" in response["error"]
        assert healthy["ok"]  # the connection kept serving
        assert counters["requests_malformed"] == 3
        assert counters["responses_ok"] == 1

    def test_oversized_line_is_rejected_through_a_bounded_read(self):
        import asyncio

        from repro.aio import AsyncDCCHost, DCCServer

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", paper_figure1_graph())
                async with DCCServer(host, port=0,
                                     max_request_bytes=128) as server:
                    reader, writer, ask = await self._connect(server.port)
                    # One hostile line, far beyond the bound, streamed as
                    # a single write; the server must reject it without
                    # buffering it whole, discard through its newline,
                    # and keep the connection.
                    writer.write(b'{"pad": "' + b"x" * 4096 + b'"}\n')
                    await writer.drain()
                    import json

                    rejected = json.loads(await reader.readline())
                    healthy = await ask(
                        {"graph": "fig", "d": 3, "s": 2, "k": 2}
                    )
                    writer.close()
                    await writer.wait_closed()
                    return rejected, healthy, server.counters()

        rejected, healthy, counters = asyncio.run(serve())
        assert not rejected["ok"]
        assert rejected["error_type"] == "RequestTooLargeError"
        assert "128" in rejected["error"]
        assert healthy["ok"]
        assert counters["requests_oversized"] == 1
        assert counters["responses_ok"] == 1

    def test_aclose_mid_traffic_drains_accepted_work(self):
        import asyncio
        import json

        from repro.aio import AsyncDCCHost, DCCServer

        graph = paper_figure1_graph()
        pools_before = live_pool_count()
        specs = [
            {"graph": "fig", "d": 3, "s": 2, "k": 2},
            {"graph": "fig", "d": 2, "s": 2, "k": 2},
        ]

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                gate = self._gate(host)
                async with DCCServer(host, port=0) as server:
                    clients = []  # hold the writers: a GC'd transport
                    for spec in specs:  # would look like a disconnect
                        reader, writer, _ = await self._connect(server.port)
                        writer.write((json.dumps(spec) + "\n").encode())
                        await writer.drain()
                        clients.append((reader, writer))
                    while host.requests_accepted < len(specs):
                        await asyncio.sleep(0.01)
                    # Close mid-traffic: both requests are accepted and
                    # parked; aclose must wait for them, not drop them.
                    closing = asyncio.ensure_future(server.aclose())
                    await asyncio.sleep(0.05)
                    assert not closing.done()  # draining, not dropping
                    gate.set()
                    await closing
                    # Every accepted request got its response written
                    # before its connection closed.
                    return [json.loads(await reader.readline())
                            for reader, _ in clients], server.counters()

        responses, counters = asyncio.run(serve())
        with DCCHost(jobs=1) as host:
            host.attach("fig", graph)
            for spec, response in zip(specs, responses):
                want = host.search("fig", spec["d"], spec["s"], spec["k"])
                assert response["ok"], response
                assert response["cover"] == want.cover_size
                assert len(response["sets"]) == len(want.sets)
        assert counters["responses_ok"] == len(specs)
        assert counters["connections_open"] == 0
        assert counters["closing"] is True
        # The host outlives the server by design; closing it afterwards
        # (the async-with above) returned every pool to baseline.
        assert live_pool_count() == pools_before
