"""Suite for :mod:`repro.shard` — sharded graph execution behind the
plan → execute → merge pipeline.

The contract under test, in order of importance:

1. **bitwise equivalence** — a :class:`ShardedEngine` returns, for every
   shard count, partitioning strategy, method, backend of the source
   graph, and cache temperature, exactly what an unsharded
   :class:`DCCEngine` returns over the same graph: sets, labels, cover
   and the full aggregated counter dict;
2. **partitioning** — the cut is deterministic, rows are complete (the
   halo is whatever the rows reference outside the owned range, never a
   truncation), the layer-subset rule has no halo at all, and both
   rules validate their inputs;
3. **pipeline surface** — the plan stage emits one :class:`ShardTask`
   per shard, the execute stage routes through the installed plan, the
   sharded graph answers the full read-only graph protocol identically
   to the frozen original, and payloads round-trip so pooled workers
   rebuild the same partition;
4. **integration** — ``search_dccs(shards=N)``, ``DCCHost.attach(...,
   shards=N)`` admission (budgeted by the largest shard, so a graph
   bigger than the budget still serves), and the async layer's
   cross-time result cache treating sharded and unsharded servings of
   one graph as the same entry.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import search_dccs
from repro.engine import DCCEngine
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.host import DCCHost
from repro.parallel.plan import plan_shard_tasks
from repro.shard import (
    MAX_SHARDS,
    GraphShard,
    Partitioner,
    ShardedEngine,
    ShardedGraph,
    check_shards,
    check_strategy,
)
from repro.shard.partition import _cut_points
from repro.utils.errors import LayerIndexError, ParameterError
from tests.strategies import (
    labelled_multilayer_graphs,
    multilayer_graphs,
    search_parameters,
)

METHODS = ("greedy", "bottom-up", "top-down")


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.cover_size == second.cover_size, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


def ring_graph(n=12, layers=2):
    graph = MultiLayerGraph(layers, vertices=range(n))
    for layer in range(layers):
        for i in range(n):
            graph.add_edge(layer, i, (i + 1) % n)
    return graph


# ----------------------------------------------------------------------
# 1. partitioning
# ----------------------------------------------------------------------


class TestPartitioner:
    def test_cut_points_are_even_and_exhaustive(self):
        for total in (0, 1, 7, 100, 101):
            for parts in (1, 2, 3, 64):
                bounds = _cut_points(total, parts)
                assert len(bounds) == parts + 1
                assert bounds[0] == 0 and bounds[-1] == total
                sizes = [bounds[i + 1] - bounds[i] for i in range(parts)]
                assert all(size >= 0 for size in sizes)
                assert max(sizes) - min(sizes) <= 1

    def test_vertex_range_rows_are_complete(self):
        # Every owned row must equal the frozen row, global ids and all;
        # the halo is what those rows reference outside the range.
        frozen = paper_figure1_graph().freeze()
        shards = Partitioner(3).partition(frozen)
        assert [shard.lo for shard in shards] == \
            _cut_points(frozen.num_vertices, 3)[:-1]
        for shard in shards:
            assert shard.layers == tuple(frozen.layers())
            outside = set()
            for layer in shard.layers:
                ptr, nbrs = shard.row_arrays(layer)
                assert len(ptr) == shard.num_owned + 1
                for v in range(shard.lo, shard.hi):
                    i = v - shard.lo
                    row = list(nbrs[ptr[i]:ptr[i + 1]])
                    assert sorted(row) == sorted(frozen.neighbors(layer, v))
                    outside.update(
                        u for u in row if not shard.lo <= u < shard.hi
                    )
            assert shard.halo_vertices() == len(outside)
            assert shard.memory_bytes() > 0

    def test_layer_subset_covers_layers_without_halo(self):
        frozen = paper_figure1_graph().freeze()
        shards = Partitioner(
            frozen.num_layers, strategy="layer-subset"
        ).partition(frozen)
        covered = []
        for shard in shards:
            assert (shard.lo, shard.hi) == (0, frozen.num_vertices)
            assert shard.halo_vertices() == 0
            covered.extend(shard.layers)
        assert covered == list(frozen.layers())

    def test_layer_subset_rejects_too_many_shards(self):
        frozen = paper_figure1_graph().freeze()
        partitioner = Partitioner(
            frozen.num_layers + 1, strategy="layer-subset"
        )
        with pytest.raises(ParameterError):
            partitioner.partition(frozen)

    def test_partition_requires_a_frozen_graph(self):
        with pytest.raises(ParameterError):
            Partitioner(2).partition(paper_figure1_graph())

    def test_check_shards_validation(self):
        for bad in (0, -1, True, False, "2", 2.0, MAX_SHARDS + 1):
            with pytest.raises(ParameterError):
                check_shards(bad)
        assert check_shards(1) == 1
        assert check_shards(MAX_SHARDS) == MAX_SHARDS

    def test_check_strategy_validation(self):
        with pytest.raises(ParameterError):
            check_strategy("vertex_range")
        assert check_strategy("layer-subset") == "layer-subset"

    def test_shard_payload_round_trip(self):
        frozen = paper_figure1_graph().freeze()
        for shard in Partitioner(2).partition(frozen):
            rebuilt = GraphShard.from_payload(shard.payload())
            assert (rebuilt.index, rebuilt.lo, rebuilt.hi) == \
                (shard.index, shard.lo, shard.hi)
            assert rebuilt.layers == shard.layers
            for layer in shard.layers:
                assert rebuilt.row_arrays(layer) == shard.row_arrays(layer)


# ----------------------------------------------------------------------
# 2. the sharded graph view
# ----------------------------------------------------------------------


class TestShardedGraphProtocol:
    @pytest.mark.parametrize("strategy", ["vertex-range", "layer-subset"])
    def test_matches_the_frozen_view(self, strategy):
        frozen = paper_figure1_graph().freeze()
        shards = frozen.num_layers if strategy == "layer-subset" else 3
        sharded = ShardedGraph.from_frozen(frozen, shards, strategy)
        assert sharded.num_vertices == frozen.num_vertices
        assert sharded.num_layers == frozen.num_layers
        assert sharded.vertex_set() == frozen.vertex_set()
        assert len(sharded) == len(frozen)
        subset = list(frozen.vertices())[::2]
        for layer in frozen.layers():
            assert sharded.num_edges(layer) == frozen.num_edges(layer)
            assert sorted(sharded.edges(layer)) == \
                sorted(frozen.edges(layer))
            assert sharded.induced_degrees(layer, None) == \
                frozen.induced_degrees(layer, None)
            assert sharded.induced_degrees(layer, subset) == \
                frozen.induced_degrees(layer, subset)
            for v in frozen.vertices():
                assert sharded.degree(layer, v) == frozen.degree(layer, v)
                assert sharded.neighbors(layer, v) == \
                    frozen.neighbors(layer, v)
        for v in frozen.vertices():
            assert sharded.layers_of(v) == frozen.layers_of(v)
        assert sharded.total_edges() == frozen.total_edges()
        assert sharded.union_edge_count() == frozen.union_edge_count()

    def test_core_computations_match_frozen(self):
        from repro.graph.frozen import (
            frozen_coherent_core,
            frozen_layer_core,
        )

        frozen = paper_figure1_graph().freeze()
        sharded = ShardedGraph.from_frozen(frozen, 4)
        layers = tuple(frozen.layers())[:2]
        for d in range(0, 5):
            for layer in frozen.layers():
                assert sharded.layer_core(layer, d) == \
                    frozen_layer_core(frozen, layer, d)
            assert sharded.coherent_core(layers, d) == \
                frozen_coherent_core(frozen, layers, d)
        with pytest.raises(ParameterError):
            sharded.layer_core(0, -1)
        with pytest.raises(LayerIndexError):
            sharded.layer_core(frozen.num_layers, 1)

    def test_budget_is_the_largest_shard(self):
        frozen = ring_graph(40, 2).freeze()
        sharded = ShardedGraph.from_frozen(frozen, 4)
        per_shard = [shard.memory_bytes() for shard in sharded.shards]
        assert sharded.budget_bytes() == max(per_shard)
        assert sharded.budget_bytes() < sharded.memory_bytes()

    def test_graph_payload_round_trip(self):
        sharded = ShardedGraph.from_frozen(
            paper_figure1_graph().freeze(), 3
        )
        rebuilt = ShardedGraph.from_payload(sharded.payload())
        assert rebuilt.num_shards == sharded.num_shards
        assert rebuilt.strategy == sharded.strategy
        assert rebuilt.vertex_set() == sharded.vertex_set()
        for layer in sharded.layers():
            assert rebuilt.layer_core(layer, 2) == \
                sharded.layer_core(layer, 2)

    def test_plan_stage_emits_one_task_per_shard(self):
        sharded = ShardedGraph.from_frozen(
            paper_figure1_graph().freeze(), 3
        )
        plan = plan_shard_tasks(sharded, spec=(2, 2, 2, "greedy"))
        assert plan.spec == (2, 2, 2, "greedy")
        assert len(plan.tasks) == 3
        assert [task.shard for task in plan.tasks] == [0, 1, 2]
        for layer in sharded.layers():
            assert plan.shards_for(layer) == (0, 1, 2)
        installed = sharded.plans_installed
        sharded.install_plan(plan)
        assert sharded.active_plan is plan
        assert sharded.plans_installed == installed + 1


# ----------------------------------------------------------------------
# 3. bitwise equivalence (the acceptance property)
# ----------------------------------------------------------------------


class TestShardedEquivalence:
    @given(st.data())
    @settings(max_examples=12, deadline=None)
    def test_sharded_matches_unsharded_bitwise(self, data):
        # The tentpole property: shard count, strategy, method and cache
        # temperature never change a single byte of the result.
        graph = data.draw(multilayer_graphs(max_vertices=9, max_layers=3))
        d, s, k = data.draw(search_parameters(graph))
        method = data.draw(st.sampled_from(METHODS))
        shards = data.draw(st.sampled_from((1, 2, 4)))
        strategy = data.draw(st.sampled_from(
            ("vertex-range", "layer-subset")
        ))
        if strategy == "layer-subset":
            shards = min(shards, graph.num_layers)
        with DCCEngine(graph, jobs=1) as engine:
            want_cold = engine.search(d, s, k, method=method, seed=7)
            want_warm = engine.search(d, s, k, method=method, seed=7)
        with ShardedEngine(graph, shards=shards, strategy=strategy,
                           jobs=1) as engine:
            cold = engine.search(d, s, k, method=method, seed=7)
            warm = engine.search(d, s, k, method=method, seed=7)
        assert_identical(cold, want_cold, (shards, strategy, method))
        assert_identical(warm, want_warm, (shards, strategy, method))

    @given(st.data())
    @settings(max_examples=6, deadline=None)
    def test_labelled_dict_source_translates_identically(self, data):
        # The other backend: a dict-backed graph over string labels is
        # frozen inside the engine and reported sets are translated
        # back — sharding must not disturb the label mapping.
        graph = data.draw(
            labelled_multilayer_graphs(max_vertices=8, max_layers=3)
        )
        d, s, k = data.draw(search_parameters(graph))
        method = data.draw(st.sampled_from(METHODS))
        with DCCEngine(graph, backend="frozen", jobs=1) as engine:
            want = engine.search(d, s, k, method=method, seed=7)
        with ShardedEngine(graph, shards=3, jobs=1) as engine:
            got = engine.search(d, s, k, method=method, seed=7)
        assert_identical(got, want, method)
        assert all(
            isinstance(label, str)
            for members in got.sets for label in members
        )

    def test_frozen_source_is_served_without_a_copy(self):
        frozen = paper_figure1_graph().freeze()
        want = search_dccs(frozen, 3, 2, 2, jobs=1)
        for shards in (1, 2, 4):
            with ShardedEngine(frozen, shards=shards, jobs=1) as engine:
                assert_identical(engine.search(3, 2, 2), want, shards)


# ----------------------------------------------------------------------
# 4. the engine surface and integration layers
# ----------------------------------------------------------------------


class TestShardedEngineSurface:
    def test_rejects_the_dict_backend(self):
        with pytest.raises(ParameterError):
            ShardedEngine(paper_figure1_graph(), backend="dict")

    def test_validates_shards_and_strategy(self):
        graph = paper_figure1_graph()
        with pytest.raises(ParameterError):
            ShardedEngine(graph, shards=0)
        with pytest.raises(ParameterError):
            ShardedEngine(graph, shards=MAX_SHARDS + 1)
        with pytest.raises(ParameterError):
            ShardedEngine(graph, strategy="hash")

    def test_info_reports_the_shard_picture(self):
        with ShardedEngine(paper_figure1_graph(), shards=2,
                           jobs=1) as engine:
            engine.search(3, 2, 2)
            status = engine.info()
        assert status["backend"] == "sharded-csr"
        picture = status["shards"]
        assert picture["shards"] == 2
        assert picture["strategy"] == "vertex-range"
        assert picture["merges"] > 0
        assert len(picture["per_shard"]) == 2
        for entry in picture["per_shard"]:
            assert entry["memory_bytes"] > 0
        assert picture["budget_bytes"] == max(
            entry["memory_bytes"] for entry in picture["per_shard"]
        )

    def test_pooled_workers_rebuild_the_sharded_graph(self):
        # jobs=2 ships the ("sharded", ...) payload to real worker
        # processes; results must match the inline run exactly.
        graph = paper_figure1_graph()
        with ShardedEngine(graph, shards=2, jobs=1) as engine:
            want = engine.search(3, 2, 2, method="greedy")
        with ShardedEngine(graph, shards=2, jobs=2) as engine:
            if not engine.warm():
                pytest.skip("environment cannot spawn worker processes")
            got = engine.search(3, 2, 2, method="greedy")
            assert engine.info()["pool_spawned"] is True
        assert_identical(got, want)

    def test_search_many_pipelines_identically(self):
        graph = paper_figure1_graph()
        specs = [(3, 2, 2, "greedy"), (2, 2, 2, "bottom-up"),
                 (3, 2, 2, "top-down")]
        with DCCEngine(graph, jobs=1) as engine:
            want = [engine.search(d, s, k, method=m)
                    for d, s, k, m in specs]
        with ShardedEngine(graph, shards=3, jobs=1) as engine:
            got = engine.search_many(
                [{"d": d, "s": s, "k": k, "method": m}
                 for d, s, k, m in specs]
            )
        for one, two, spec in zip(got, want, specs):
            assert_identical(one, two, spec)

    def test_one_shot_search_dccs_accepts_shards(self):
        graph = paper_figure1_graph()
        want = search_dccs(graph, 3, 2, 2, jobs=1)
        assert_identical(search_dccs(graph, 3, 2, 2, shards=2), want)
        assert_identical(search_dccs(graph, 3, 2, 2, shards=1, jobs=1),
                         want)
        with pytest.raises(ParameterError):
            search_dccs(graph, 3, 2, 2, shards=-2)
        with pytest.raises(ParameterError):
            search_dccs(graph, 3, 2, 2, shards=2, backend="dict")


class TestHostSharding:
    def test_attach_with_shards_serves_identically(self):
        graph = paper_figure1_graph()
        with DCCHost(jobs=1) as host:
            host.attach("plain", graph)
            host.attach("cut", graph, shards=2)
            assert isinstance(host.engine("cut"), ShardedEngine)
            plain = host.search("plain", 3, 2, 2)
            cut = host.search("cut", 3, 2, 2)
            status = host.info()
        assert_identical(plain, cut)
        assert "shards" in status["engines"]["cut"]
        assert "shards" not in status["engines"]["plain"]

    def test_host_default_shards_applies_to_attaches(self):
        with DCCHost(jobs=1, shards=2) as host:
            host.attach("a", paper_figure1_graph())
            host.attach("b", paper_figure1_graph(), shards=1)
            assert isinstance(host.engine("a"), ShardedEngine)
            assert not isinstance(host.engine("b"), ShardedEngine)

    def test_shards_conflict_with_dict_backend_fails_eagerly(self):
        with pytest.raises(ParameterError):
            DCCHost(backend="dict", shards=2)
        with DCCHost(backend="dict", jobs=1) as host:
            with pytest.raises(ParameterError):
                host.attach("a", paper_figure1_graph(), shards=2)
            assert not host.is_attached("a")
        with pytest.raises(ParameterError):
            DCCHost(shards=0)

    def test_over_budget_graph_serves_under_per_shard_admission(self):
        # The acceptance scenario in miniature: the whole graph busts
        # the host budget, its largest shard does not — attached with
        # shards=N it admits without evicting anything and still
        # returns the unsharded bytes.
        graph = ring_graph(60, 2)
        frozen_bytes = graph.freeze().memory_bytes()
        with DCCHost(jobs=1) as host:
            host.attach("big", graph, shards=4)
            served = host.search("big", 2, 1, 2)
            engine = host.engine("big")
            assert engine.memory_bytes() > engine.budget_bytes()
            # Budget just above the (now warm) largest shard, well below
            # the whole graph: re-serving stays admitted, nothing evicts.
            host.memory_budget_bytes = engine.budget_bytes() + 1
            assert host.memory_budget_bytes < frozen_bytes
            again = host.search("big", 2, 1, 2)
            assert host.resident() == ("big",)
            assert host.evictions == 0
            assert host.budget_bytes() <= host.memory_budget_bytes
        assert_identical(served, again)
        assert_identical(served, search_dccs(graph, 2, 1, 2, jobs=1))

    def test_async_cache_entry_is_shard_free(self):
        # The cross-time result cache keys on (graph, version, spec) —
        # never on the shard count — so the entry a sharded host stores
        # is byte-for-byte the entry an unsharded host would store and
        # fetch for the same search.
        import asyncio

        from repro.aio import AsyncDCCHost
        from repro.aio.result_cache import ResultCache

        graph = paper_figure1_graph()
        cache = ResultCache()

        async def serve():
            async with AsyncDCCHost(jobs=1, result_cache=cache,
                                    shards=2) as host:
                host.attach("fig", graph)
                first = await host.search("fig", 3, 2, 2)
                second = await host.search("fig", 3, 2, 2)
                return first, second, host.requests_cached

        first, second, cached = asyncio.run(serve())
        assert cached == 1 and cache.hits == 1
        key = next(iter(cache._entries))
        assert key == ResultCache.key_for(
            "fig", graph.mutation_version, 3, 2, 2, "auto", {}
        )
        assert_identical(first, second)
        assert_identical(first, search_dccs(graph, 3, 2, 2, jobs=1))
