"""Tests for dynamic d-CC maintenance under edge updates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcc import coherent_core
from repro.core.dynamic import CoherentCoreTracker
from repro.graph import MultiLayerGraph, replicate_layer
from repro.utils.errors import EdgeError, ParameterError
from tests.strategies import multilayer_graphs


def triangle_tracker(d=2):
    g = replicate_layer([(0, 1), (1, 2), (0, 2)], 2)
    return CoherentCoreTracker(g, [0, 1], d)


class TestBasics:
    def test_initial_core(self):
        tracker = triangle_tracker()
        assert tracker.core == frozenset({0, 1, 2})

    def test_negative_d(self):
        g = replicate_layer([(0, 1)], 1)
        with pytest.raises(ParameterError):
            CoherentCoreTracker(g, [0], -1)

    def test_owns_a_copy(self):
        g = replicate_layer([(0, 1), (1, 2), (0, 2)], 2)
        tracker = CoherentCoreTracker(g, [0, 1], 2)
        g.remove_edge(0, 0, 1)  # mutate the ORIGINAL graph
        assert tracker.core == frozenset({0, 1, 2})
        tracker.check()


class TestDeletion:
    def test_inside_edge_cascades(self):
        tracker = triangle_tracker()
        tracker.remove_edge(0, 0, 1)
        assert tracker.core == frozenset()
        tracker.check()

    def test_outside_edge_is_noop(self):
        g = replicate_layer([(0, 1), (1, 2), (0, 2), (2, 3)], 2)
        tracker = CoherentCoreTracker(g, [0, 1], 2)
        before = tracker.core
        tracker.remove_edge(0, 2, 3)
        assert tracker.core == before
        assert tracker.recomputations == 0
        tracker.check()

    def test_untracked_layer_ignored(self):
        g = replicate_layer([(0, 1), (1, 2), (0, 2)], 3)
        tracker = CoherentCoreTracker(g, [0, 1], 2)
        tracker.remove_edge(2, 0, 1)  # layer 2 is outside L
        assert tracker.core == frozenset({0, 1, 2})
        tracker.check()


class TestInsertion:
    def test_inside_edge_is_noop(self):
        g = MultiLayerGraph(1, vertices=range(4))
        for u, v in ((0, 1), (1, 2), (0, 2), (2, 3), (0, 3)):
            g.add_edge(0, u, v)
        tracker = CoherentCoreTracker(g, [0], 2)
        assert tracker.core == frozenset({0, 1, 2, 3})
        tracker.add_edge(0, 1, 3)
        assert tracker.core == frozenset({0, 1, 2, 3})
        assert tracker.recomputations == 0
        tracker.check()

    def test_growth_from_outside(self):
        g = replicate_layer([(0, 1), (1, 2), (0, 2), (2, 3)], 1)
        tracker = CoherentCoreTracker(g, [0], 2)
        assert 3 not in tracker.core
        tracker.add_edge(0, 3, 0)
        assert 3 in tracker.core
        tracker.check()

    def test_refresh_after_out_of_band_mutation(self):
        tracker = triangle_tracker()
        tracker.graph.add_edge(0, 2, 3)
        tracker.graph.add_edge(0, 3, 0)
        tracker.graph.add_edge(1, 2, 3)
        tracker.graph.add_edge(1, 3, 0)
        refreshed = tracker.refresh()
        assert refreshed == coherent_core(tracker.graph, [0, 1], 2)


class TestErrorPaths:
    def test_remove_edge_wrong_layer_raises_edge_error(self):
        g = MultiLayerGraph(2, vertices=range(3))
        g.add_edge(0, 0, 1)
        g.add_edge(0, 1, 2)
        g.add_edge(0, 0, 2)
        tracker = CoherentCoreTracker(g, [0], 2)
        before = tracker.core
        with pytest.raises(EdgeError):
            tracker.remove_edge(1, 0, 1)  # edge lives on layer 0 only
        assert tracker.core == before
        tracker.check()


class TestRandomisedAgainstScratch:
    @given(
        multilayer_graphs(max_vertices=8, max_layers=3),
        st.integers(min_value=1, max_value=3),
        st.lists(
            st.tuples(
                st.booleans(),            # insert or delete
                st.integers(min_value=0, max_value=2),   # layer
                st.integers(min_value=0, max_value=7),   # u
                st.integers(min_value=0, max_value=7),   # v
            ),
            max_size=15,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_tracker_matches_recompute(self, graph, d, updates):
        layers = list(range(min(2, graph.num_layers)))
        tracker = CoherentCoreTracker(graph, layers, d)
        n = graph.num_vertices
        for insert, layer, u, v in updates:
            layer %= graph.num_layers
            u %= n
            v %= n
            if u == v:
                continue
            vertices = sorted(tracker.graph.vertices(), key=str)
            u, v = vertices[u % len(vertices)], vertices[v % len(vertices)]
            if u == v:
                continue
            if insert:
                tracker.add_edge(layer, u, v)
            elif tracker.graph.has_edge(layer, u, v):
                tracker.remove_edge(layer, u, v)
            assert tracker.core == coherent_core(
                tracker.graph, layers, d
            )

    @given(
        multilayer_graphs(max_vertices=8, max_layers=3),
        st.integers(min_value=1, max_value=3),
        st.lists(
            st.tuples(
                st.booleans(),            # insert or delete
                st.integers(min_value=0, max_value=2),   # layer
                st.integers(min_value=0, max_value=7),   # u
                st.integers(min_value=0, max_value=7),   # v
            ),
            max_size=12,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_invariants_hold_each_step(self, graph, d, updates):
        """Interleaved stream: per-step check(), rejected ops harmless.

        Unlike the scratch comparison above, this property drives the
        tracker's *own* consistency check after every step and verifies
        that a removal of a missing edge raises :class:`EdgeError`
        without disturbing either the graph copy or the cached core.
        """
        layers = list(range(min(2, graph.num_layers)))
        tracker = CoherentCoreTracker(graph, layers, d)
        vertices = sorted(tracker.graph.vertices(), key=str)
        for insert, layer, u, v in updates:
            layer %= graph.num_layers
            u, v = vertices[u % len(vertices)], vertices[v % len(vertices)]
            if u == v:
                continue
            if insert:
                tracker.add_edge(layer, u, v)
            elif tracker.graph.has_edge(layer, u, v):
                tracker.remove_edge(layer, u, v)
            else:
                core_before = tracker.core
                version_before = tracker.graph.mutation_version
                with pytest.raises(EdgeError):
                    tracker.remove_edge(layer, u, v)
                assert tracker.core == core_before
                assert tracker.graph.mutation_version == version_before
            tracker.check()
