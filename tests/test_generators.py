"""Tests for the synthetic graph generators."""

import pytest

from repro.core.dcc import coherent_core
from repro.graph.generators import (
    chung_lu_layers,
    erdos_renyi_layers,
    paper_figure1_graph,
    planted_communities,
    random_coherent_graph,
    temporal_snapshots,
)
from repro.utils.errors import ParameterError


class TestErdosRenyi:
    def test_shape(self):
        g = erdos_renyi_layers(30, 3, 0.2, seed=1)
        assert g.num_vertices == 30
        assert g.num_layers == 3
        assert g.validate()

    def test_p_zero_empty(self):
        g = erdos_renyi_layers(10, 2, 0.0, seed=1)
        assert g.total_edges() == 0

    def test_p_one_complete(self):
        g = erdos_renyi_layers(6, 1, 1.0, seed=1)
        assert g.num_edges(0) == 15

    def test_deterministic(self):
        a = erdos_renyi_layers(20, 2, 0.3, seed=9)
        b = erdos_renyi_layers(20, 2, 0.3, seed=9)
        assert a == b

    def test_invalid_probability(self):
        with pytest.raises(ParameterError):
            erdos_renyi_layers(5, 1, 1.5)

    def test_density_roughly_matches(self):
        g = erdos_renyi_layers(120, 1, 0.1, seed=4)
        expected = 0.1 * 119 * 120 / 2
        assert 0.6 * expected < g.num_edges(0) < 1.4 * expected


class TestChungLu:
    def test_shape_and_heavy_tail(self):
        g = chung_lu_layers(80, 2, average_degree=4, seed=2)
        assert g.num_vertices == 80
        degrees = sorted(
            (g.degree(0, v) for v in g.vertices()), reverse=True
        )
        # Power-law-ish: the top vertex clearly beats the median.
        assert degrees[0] >= 2 * max(1, degrees[len(degrees) // 2])

    def test_invalid_degree(self):
        with pytest.raises(ParameterError):
            chung_lu_layers(10, 1, 0)


class TestPlantedCommunities:
    def test_planted_block_is_dense(self):
        members = list(range(10))
        g, planted = planted_communities(
            40, 3, [(members, [0, 1], 1.0)], seed=3
        )
        assert planted == [frozenset(members)]
        # With p_in = 1 the block is a clique on the planted layers.
        core = coherent_core(g, [0, 1], 9)
        assert frozenset(members) <= core

    def test_background_noise(self):
        g, _ = planted_communities(50, 2, [], background=0.1, seed=3)
        assert g.total_edges() > 0

    def test_member_out_of_range(self):
        with pytest.raises(ParameterError):
            planted_communities(5, 1, [([10], [0], 1.0)])

    def test_random_coherent_graph(self):
        g, planted = random_coherent_graph(
            60, 4, num_communities=3, community_size=8,
            layers_per_community=2, seed=5,
        )
        assert len(planted) == 3
        assert all(len(c) == 8 for c in planted)
        assert g.num_layers == 4

    def test_random_coherent_validation(self):
        with pytest.raises(ParameterError):
            random_coherent_graph(5, 2, 1, community_size=9,
                                  layers_per_community=1)
        with pytest.raises(ParameterError):
            random_coherent_graph(9, 2, 1, community_size=3,
                                  layers_per_community=5)


class TestTemporalSnapshots:
    def test_stories_span_windows(self):
        g, stories = temporal_snapshots(
            40, 6, events_per_layer=3, seed=7
        )
        assert g.num_layers == 6
        assert stories
        for members, (start, end) in stories:
            assert 0 <= start <= end < 6
            assert len(members) == 6


class TestPaperFigure1:
    def test_vertices(self):
        g = paper_figure1_graph()
        assert g.num_vertices == 15
        assert g.num_layers == 4

    def test_block_dense_on_all_layers(self):
        g = paper_figure1_graph()
        for layer in g.layers():
            core = coherent_core(g, [layer], 3)
            assert set("abcdefghi") <= core

    def test_appendage_sparse(self):
        g = paper_figure1_graph()
        for layer in g.layers():
            assert g.degree(layer, "j") <= 2

    def test_example_claims(self):
        g = paper_figure1_graph()
        assert coherent_core(g, [0, 2], 3) == frozenset("abcdefghi") | {"y", "m"}
        assert coherent_core(g, [1, 3], 3) == (
            frozenset("abcdefghi") | {"m", "n", "k"}
        )
