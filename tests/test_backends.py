"""Equivalence suite for the dict and frozen graph backends.

The contract under test: freezing is a pure change of representation.
Every query, every peeling primitive and every search algorithm must
return *identical* results on the two backends (modulo the dense-id /
label translation), and ``freeze()``/``thaw()`` must round-trip exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    coherent_core,
    coherent_core_binsort,
    enumerate_candidates,
    layer_core,
    search_dccs,
)
from repro.core.maintain import MultiLayerCoreMaintainer
from repro.graph import (
    BACKENDS,
    FrozenMultiLayerGraph,
    MultiLayerGraph,
    check_backend,
    paper_figure1_graph,
    resolve_search_graph,
    should_freeze,
)
from repro.utils.errors import FrozenGraphError, ParameterError, VertexError
from tests.strategies import (
    graph_with_layer_subset,
    labelled_multilayer_graphs,
    multilayer_graphs,
    search_parameters,
)


def frozen_pair(graph):
    """``(frozen, to_labels)`` for a dict-backend graph."""
    frozen = graph.freeze()
    return frozen, frozen.labels_for


# ----------------------------------------------------------------------
# round trip and structural equivalence
# ----------------------------------------------------------------------


class TestFreezeThawRoundTrip:
    @given(multilayer_graphs())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_is_identity(self, graph):
        assert graph.freeze().thaw() == graph

    @given(labelled_multilayer_graphs())
    @settings(max_examples=40, deadline=None)
    def test_round_trip_with_string_labels(self, graph):
        thawed = graph.freeze().thaw()
        assert thawed == graph
        assert thawed.name == graph.name

    @given(multilayer_graphs())
    @settings(max_examples=40, deadline=None)
    def test_structure_preserved(self, graph):
        frozen = graph.freeze()
        assert frozen.num_layers == graph.num_layers
        assert frozen.num_vertices == graph.num_vertices
        assert frozen.total_edges() == graph.total_edges()
        assert frozen.union_edge_count() == graph.union_edge_count()
        for layer in graph.layers():
            assert frozen.num_edges(layer) == graph.num_edges(layer)

    @given(labelled_multilayer_graphs(max_vertices=8))
    @settings(max_examples=40, deadline=None)
    def test_per_vertex_queries_agree(self, graph):
        frozen = graph.freeze()
        for label in graph.vertices():
            vid = frozen.id_of(label)
            assert frozen.label_of(vid) == label
            assert frozen.layers_of(vid) == graph.layers_of(label)
            for layer in graph.layers():
                assert frozen.degree(layer, vid) == graph.degree(layer, label)
                assert frozen.labels_for(
                    frozen.neighbors(layer, vid)
                ) == frozenset(graph.neighbors(layer, label))

    @given(multilayer_graphs(max_vertices=8))
    @settings(max_examples=40, deadline=None)
    def test_induced_degrees_agree(self, graph):
        frozen = graph.freeze()
        vertices = sorted(graph.vertices())
        subset = set(vertices[::2])
        ids = frozen.ids_for(subset)
        for layer in graph.layers():
            expected = graph.induced_degrees(layer, subset)
            got = frozen.induced_degrees(layer, ids)
            assert {
                frozen.label_of(v): deg for v, deg in got.items()
            } == expected

    def test_has_edge_agrees(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        for layer in graph.layers():
            for u in graph.vertices():
                for v in graph.vertices():
                    assert frozen.has_edge(
                        layer, frozen.id_of(u), frozen.id_of(v)
                    ) == graph.has_edge(layer, u, v)

    def test_freeze_is_cached_until_mutation(self):
        graph = paper_figure1_graph()
        first = graph.freeze()
        assert graph.freeze() is first
        graph.add_edge(0, "a", "zz-new")
        second = graph.freeze()
        assert second is not first
        assert second.num_vertices == first.num_vertices + 1
        # Re-adding an existing edge is a no-op and must keep the cache.
        third = graph.freeze()
        graph.add_edge(0, "a", "zz-new")
        assert graph.freeze() is third


# ----------------------------------------------------------------------
# immutability and vocabulary
# ----------------------------------------------------------------------


class TestFrozenBehaviour:
    def test_mutation_raises(self):
        frozen = paper_figure1_graph().freeze()
        for attempt in (
            lambda: frozen.add_vertex("x"),
            lambda: frozen.add_vertices(["x"]),
            lambda: frozen.add_edge(0, 1, 2),
            lambda: frozen.add_edges(0, [(1, 2)]),
            lambda: frozen.remove_edge(0, 1, 2),
            lambda: frozen.remove_vertex(1),
            lambda: frozen.remove_vertices([1]),
        ):
            with pytest.raises(FrozenGraphError):
                attempt()

    def test_vertices_are_dense_ints(self):
        frozen = paper_figure1_graph().freeze()
        assert frozen.vertices() == set(range(frozen.num_vertices))
        assert set(frozen) == frozen.vertices()
        assert len(frozen) == frozen.num_vertices
        assert 0 in frozen and frozen.has_vertex(frozen.num_vertices - 1)
        assert frozen.num_vertices not in frozen
        # bools alias their integer value, exactly as in a dict backend
        # whose vertices are ints (True == 1).
        assert frozen.has_vertex(True) == frozen.has_vertex(1)
        assert "a" not in frozen

    def test_kernel_validation_matches_generic_entry_points(self):
        from repro.graph import frozen_coherent_core, frozen_layer_core
        from repro.utils.errors import LayerIndexError

        frozen = paper_figure1_graph().freeze()
        with pytest.raises(ParameterError):
            frozen_coherent_core(frozen, (0, 1), -1)
        with pytest.raises(LayerIndexError):
            frozen_coherent_core(frozen, (99,), 1)
        with pytest.raises(ParameterError):
            frozen_layer_core(frozen, 0, -1)
        with pytest.raises(LayerIndexError):
            frozen_layer_core(frozen, 99, 1)

    def test_unknown_label_raises(self):
        frozen = paper_figure1_graph().freeze()
        with pytest.raises(VertexError):
            frozen.id_of("nope")
        with pytest.raises(VertexError):
            frozen.label_of(10 ** 9)

    def test_freeze_of_frozen_is_self(self):
        frozen = paper_figure1_graph().freeze()
        assert frozen.freeze() is frozen

    def test_thaw_keeping_ids(self):
        frozen = paper_figure1_graph().freeze()
        thawed = frozen.thaw(original_labels=False)
        assert thawed.vertices() == frozen.vertices()
        assert thawed.total_edges() == frozen.total_edges()

    def test_memory_estimate_positive_and_smaller(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        assert 0 < frozen.memory_bytes() < graph.memory_bytes()

    def test_neighbors_is_set_valued(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        nbrs = frozen.neighbors(0, frozen.id_of("a"))
        # Set operators must work, exactly as on the dict backend.
        assert nbrs & frozen.vertices() == set(nbrs)
        merged = set()
        merged |= nbrs
        assert merged == set(nbrs)

    def test_adjacency_compatibility_view(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        adjacency = frozen.adjacency(1)
        assert set(adjacency) == frozen.vertices()
        for v, nbrs in adjacency.items():
            assert frozen.labels_for(nbrs) == frozenset(
                graph.neighbors(1, frozen.label_of(v))
            )
        # Cached: repeated access returns the same object.
        assert frozen.adjacency(1) is adjacency


# ----------------------------------------------------------------------
# peeling primitive equivalence
# ----------------------------------------------------------------------


class TestBoundedNeighborSetCache:
    """The lazy per-layer neighbour-set cache stays under its entry cap."""

    def _line(self, n=24):
        graph = MultiLayerGraph(2, vertices=range(n))
        for i in range(n - 1):
            graph.add_edge(0, i, i + 1)
            graph.add_edge(1, i, i + 1)
        return graph.freeze()

    def test_cap_bounds_entries_with_lru_discard(self):
        frozen = self._line()
        frozen._nbr_set_cap = 4
        for v in range(frozen.num_vertices):
            frozen.neighbors(0, v)
        cache = frozen._nbr_sets[0]
        assert len(cache) == 4
        # Discard is LRU: re-touching a survivor keeps it resident while
        # a fresh vertex pushes out the oldest entry.
        frozen.neighbors(0, 22)
        frozen.neighbors(0, 5)
        assert len(cache) == 4

    def test_evicted_entries_rebuild_identically(self):
        frozen = self._line()
        frozen._nbr_set_cap = 2
        before = {v: frozen.neighbors(0, v)
                  for v in range(frozen.num_vertices)}
        after = {v: frozen.neighbors(0, v)
                 for v in range(frozen.num_vertices)}
        assert before == after
        unbounded = self._line()
        assert before == {v: unbounded.neighbors(0, v)
                          for v in range(unbounded.num_vertices)}

    def test_induced_degrees_unchanged_by_a_tiny_cap(self):
        frozen = self._line()
        subset = set(range(0, frozen.num_vertices, 3))
        expected = frozen.induced_degrees(0, within=subset)
        bounded = self._line()
        bounded._nbr_set_cap = 1
        assert bounded.induced_degrees(0, within=subset) == expected

    def test_memory_bytes_tracks_cache_occupancy(self):
        frozen = self._line()
        frozen._nbr_set_cap = 4
        empty = frozen.memory_bytes()
        for v in range(frozen.num_vertices):
            frozen.neighbors(0, v)
        warm = frozen.memory_bytes()
        assert warm > empty
        assert warm - empty <= 4 * 1024  # bounded: 4 entries, not n

    def test_default_cap_is_applied(self):
        from repro.graph.frozen import DEFAULT_NEIGHBOR_SET_CAP

        frozen = self._line()
        assert frozen._nbr_set_cap == DEFAULT_NEIGHBOR_SET_CAP
        explicit = type(frozen)(
            frozen.labels, frozen._indptr, frozen._indices,
            list(frozen._edge_counts), list(frozen._layer_masks),
            neighbor_set_cap=7,
        )
        assert explicit._nbr_set_cap == 7


class TestPrimitiveEquivalence:
    @given(graph_with_layer_subset())
    @settings(max_examples=60, deadline=None)
    def test_layer_core_agrees(self, graph_and_layers):
        graph, layers = graph_and_layers
        frozen, to_labels = frozen_pair(graph)
        for layer in layers:
            for d in (1, 2, 3):
                assert to_labels(
                    layer_core(frozen, layer, d)
                ) == frozenset(layer_core(graph, layer, d))

    @given(graph_with_layer_subset())
    @settings(max_examples=60, deadline=None)
    def test_coherent_core_agrees(self, graph_and_layers):
        graph, layers = graph_and_layers
        frozen, to_labels = frozen_pair(graph)
        for d in (0, 1, 2, 3):
            expected = coherent_core(graph, layers, d)
            assert to_labels(coherent_core(frozen, layers, d)) == expected

    @given(graph_with_layer_subset())
    @settings(max_examples=40, deadline=None)
    def test_binsort_runs_on_frozen(self, graph_and_layers):
        graph, layers = graph_and_layers
        frozen, to_labels = frozen_pair(graph)
        for d in (1, 2):
            assert to_labels(
                coherent_core_binsort(frozen, layers, d)
            ) == coherent_core_binsort(graph, layers, d)

    @given(graph_with_layer_subset())
    @settings(max_examples=40, deadline=None)
    def test_coherent_core_within_restriction(self, graph_and_layers):
        graph, layers = graph_and_layers
        frozen, to_labels = frozen_pair(graph)
        within = {v for v in graph.vertices() if v % 2 == 0}
        expected = coherent_core(graph, layers, 1, within=within)
        got = coherent_core(
            frozen, layers, 1, within=frozen.ids_for(within)
        )
        assert to_labels(got) == expected

    def test_hash_equal_numerics_alias_their_vertex(self):
        # A dict backend over int vertices resolves 2.0 (and True) onto
        # vertex 2 (resp. 1) by hash equality; the frozen backend must
        # agree everywhere membership is decided.
        graph = MultiLayerGraph(1, vertices=range(3))
        graph.add_edge(0, 0, 1)
        graph.add_edge(0, 1, 2)
        graph.add_edge(0, 0, 2)
        frozen = graph.freeze()
        assert frozen.has_vertex(2.0) == graph.has_vertex(2.0) is True
        assert frozen.has_edge(0, 0.0, 2) == graph.has_edge(0, 0.0, 2) is True
        assert frozen.degree(0, 2.0) == graph.degree(0, 2.0)
        expected = coherent_core(graph, (0,), 2, within=[0.0, 1, 2])
        got = coherent_core(frozen, (0,), 2, within=[0.0, 1, 2])
        assert frozen.labels_for(got) == expected == frozenset({0, 1, 2})
        assert frozen.induced_degrees(0, [0.0, 1]) == graph.induced_degrees(
            0, [0.0, 1]
        )

    def test_neighbor_row_parity(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        for layer in graph.layers():
            dict_row = graph.neighbor_row(layer)
            frozen_row = frozen.neighbor_row(layer)
            for label in graph.vertices():
                assert frozen.labels_for(
                    frozen_row(frozen.id_of(label))
                ) == frozenset(dict_row(label))

    def test_within_as_iterator_with_foreign_labels(self):
        # A one-shot iterator containing a non-integer must behave like
        # the dict backend: foreign vertices dropped, the rest kept.
        graph = MultiLayerGraph(2, vertices=range(6))
        for i in range(5):
            graph.add_edge(0, i, i + 1)
            graph.add_edge(1, i, i + 1)
        frozen = graph.freeze()
        expected = coherent_core(graph, (0, 1), 1,
                                 within=iter([0, 1, 2, "x", 3, 4]))
        got = coherent_core(frozen, (0, 1), 1,
                            within=iter([0, 1, 2, "x", 3, 4]))
        assert frozen.labels_for(got) == expected

    def test_hierarchy_runs_on_frozen(self):
        from repro.core import coherent_core_numbers

        graph = paper_figure1_graph()
        frozen = graph.freeze()
        expected = coherent_core_numbers(graph, (0, 1))
        got = coherent_core_numbers(frozen, (0, 1))
        assert {
            frozen.label_of(v): number for v, number in got.items()
        } == expected

    def test_layer_view_on_frozen(self):
        from repro.graph import LayerView

        graph = paper_figure1_graph()
        frozen = graph.freeze()
        subset = frozen.ids_for(list(graph.vertices())[:6])
        view = LayerView(frozen, 0, within=subset)
        for v in view.vertices():
            assert view.degree(v) == len(view.neighbors(v))

    @given(multilayer_graphs(max_layers=3))
    @settings(max_examples=40, deadline=None)
    def test_enumerate_candidates_agrees(self, graph):
        frozen, to_labels = frozen_pair(graph)
        for s in (1, min(2, graph.num_layers)):
            expected = [
                (subset, core)
                for subset, core in enumerate_candidates(graph, 2, s)
            ]
            got = [
                (subset, to_labels(core))
                for subset, core in enumerate_candidates(frozen, 2, s)
            ]
            assert got == expected

    @given(multilayer_graphs(max_layers=3))
    @settings(max_examples=30, deadline=None)
    def test_maintainer_agrees_under_deletion(self, graph):
        frozen, to_labels = frozen_pair(graph)
        dict_maint = MultiLayerCoreMaintainer(graph, 2)
        froz_maint = MultiLayerCoreMaintainer(frozen, 2)
        victims = sorted(graph.vertices())[:2]
        dict_maint.remove(victims)
        froz_maint.remove(frozen.ids_for(victims))
        froz_maint.check_consistency()
        assert to_labels(froz_maint.alive) == frozenset(dict_maint.alive)
        for layer in graph.layers():
            assert to_labels(froz_maint.cores[layer]) == frozenset(
                dict_maint.cores[layer]
            )


# ----------------------------------------------------------------------
# whole-search equivalence
# ----------------------------------------------------------------------


class TestSearchEquivalence:
    @given(multilayer_graphs(max_vertices=9, max_layers=4))
    @settings(max_examples=30, deadline=None)
    def test_all_methods_agree_across_backends(self, graph):
        s = max(1, graph.num_layers // 2)
        for method in ("greedy", "bottom-up", "top-down"):
            base = search_dccs(
                graph, 2, s, 3, method=method, backend="dict", seed=7
            )
            frozen = search_dccs(
                graph, 2, s, 3, method=method, backend="frozen", seed=7
            )
            assert frozen.sets == base.sets
            assert frozen.labels == base.labels
            assert frozen.cover_size == base.cover_size

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_parameters_agree_across_backends(self, data):
        graph = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph))
        base = search_dccs(graph, d, s, k, backend="dict", seed=11)
        frozen = search_dccs(graph, d, s, k, backend="frozen", seed=11)
        assert frozen.sets == base.sets
        assert frozen.labels == base.labels

    @given(labelled_multilayer_graphs(max_vertices=8, max_layers=3))
    @settings(max_examples=20, deadline=None)
    def test_string_labels_survive_frozen_search(self, graph):
        base = search_dccs(graph, 1, 1, 2, method="greedy", backend="dict")
        frozen = search_dccs(graph, 1, 1, 2, method="greedy",
                             backend="frozen")
        assert frozen.sets == base.sets
        for members in frozen.sets:
            assert all(isinstance(v, str) for v in members)

    def test_prefrozen_graph_keeps_id_vocabulary(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        result = search_dccs(frozen, 3, 2, 2, backend="frozen")
        translated = search_dccs(graph, 3, 2, 2, backend="frozen")
        assert [
            frozen.labels_for(members) for members in result.sets
        ] == translated.sets

    def test_auto_backend_matches_both(self):
        graph = paper_figure1_graph()
        auto = search_dccs(graph, 3, 2, 2, backend="auto")
        explicit = search_dccs(graph, 3, 2, 2, backend="dict")
        assert auto.sets == explicit.sets

    def test_dict_backend_on_frozen_input(self):
        frozen = paper_figure1_graph().freeze()
        as_dict = search_dccs(frozen, 3, 2, 2, backend="dict")
        as_frozen = search_dccs(frozen, 3, 2, 2, backend="frozen")
        assert as_dict.sets == as_frozen.sets


# ----------------------------------------------------------------------
# backend selection policy
# ----------------------------------------------------------------------


class TestBackendSelection:
    def test_backends_constant(self):
        assert BACKENDS == ("auto", "dict", "frozen")
        assert check_backend("auto") == "auto"
        with pytest.raises(ParameterError):
            check_backend("numpy")

    def test_search_rejects_bad_backend(self):
        with pytest.raises(ParameterError):
            search_dccs(paper_figure1_graph(), 1, 1, 1, backend="bogus")

    def test_resolution_table(self):
        graph = paper_figure1_graph()
        frozen = graph.freeze()
        resolved, translate = resolve_search_graph(graph, "frozen")
        assert isinstance(resolved, FrozenMultiLayerGraph) and translate
        resolved, translate = resolve_search_graph(graph, "dict")
        assert resolved is graph and not translate
        resolved, translate = resolve_search_graph(frozen, "frozen")
        assert resolved is frozen and not translate
        resolved, translate = resolve_search_graph(frozen, "dict")
        assert isinstance(resolved, MultiLayerGraph) and not translate

    def test_dict_resolution_of_frozen_input_is_cached(self):
        frozen = paper_figure1_graph().freeze()
        first, _ = resolve_search_graph(frozen, "dict")
        second, _ = resolve_search_graph(frozen, "dict")
        assert first is second
        # thaw() itself must keep returning fresh mutable copies.
        assert frozen.thaw() is not frozen.thaw()

    def test_measure_point_warms_conversion_before_timing(self):
        from repro.experiments.runner import measure_point

        graph = MultiLayerGraph(1, vertices=range(300))
        for i in range(299):
            graph.add_edge(0, i, i + 1)
        assert graph._frozen_cache is None
        measure_point(graph, 1, 1, 2, methods=["greedy"])
        # auto resolved to frozen and the warm-up populated the cache
        # before any method timer started.
        assert graph._frozen_cache is not None

    def test_should_freeze_threshold(self):
        small = MultiLayerGraph(1, vertices=range(4))
        assert not should_freeze(small)
        big = MultiLayerGraph(1, vertices=range(5000))
        assert should_freeze(big)
        resolved, translate = resolve_search_graph(big, "auto")
        assert isinstance(resolved, FrozenMultiLayerGraph) and translate


# ----------------------------------------------------------------------
# the incremental edge-count cache (dict backend satellite)
# ----------------------------------------------------------------------


class TestEdgeCountCache:
    def test_add_remove_sequence_stays_consistent(self):
        graph = MultiLayerGraph(2, vertices=range(5))
        assert graph.num_edges(0) == 0
        graph.add_edge(0, 0, 1)
        graph.add_edge(0, 0, 1)  # duplicate must not double-count
        graph.add_edge(0, 1, 2)
        graph.add_edge(1, 3, 4)
        assert graph.num_edges(0) == 2
        assert graph.num_edges(1) == 1
        assert graph.total_edges() == 3
        graph.remove_edge(0, 0, 1)
        assert graph.num_edges(0) == 1
        graph.remove_vertex(1)
        assert graph.num_edges(0) == 0
        assert graph.total_edges() == 1
        graph.validate()

    @given(multilayer_graphs())
    @settings(max_examples=40, deadline=None)
    def test_cache_matches_recount(self, graph):
        for layer in graph.layers():
            recounted = sum(
                1 for _ in graph.edges(layer)
            )
            assert graph.num_edges(layer) == recounted
        graph.validate()

    def test_derived_graphs_inherit_counts(self):
        graph = paper_figure1_graph()
        copied = graph.copy()
        assert copied.total_edges() == graph.total_edges()
        copied.validate()
        sub = graph.induced_subgraph(list(graph.vertices())[:8])
        sub.validate()
        layers = graph.subgraph_of_layers([0, 2])
        assert layers.num_edges(0) == graph.num_edges(0)
        assert layers.num_edges(1) == graph.num_edges(2)
        layers.validate()

    def test_has_vertex_sugar(self):
        graph = MultiLayerGraph(1, vertices=["a"])
        assert graph.has_vertex("a")
        assert not graph.has_vertex("b")
        assert "a" in graph
