"""Tests for the bottom-up DCCS algorithm (BU-DCCS)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.exact import exact_dccs
from repro.core.bottomup import bu_dccs
from repro.core.dcc import is_coherent_dense
from repro.core.greedy import gd_dccs
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.utils.errors import ParameterError
from tests.strategies import multilayer_graphs


class TestBuDccs:
    def test_paper_example(self):
        graph = paper_figure1_graph()
        result = bu_dccs(graph, d=3, s=2, k=2)
        assert result.cover_size == 13
        assert result.algorithm == "bottom-up"
        covered = result.cover
        assert set("abcdefghi") <= covered

    def test_parameter_validation(self):
        g = paper_figure1_graph()
        with pytest.raises(ParameterError):
            bu_dccs(g, -1, 2, 2)
        with pytest.raises(ParameterError):
            bu_dccs(g, 3, 5, 2)
        with pytest.raises(ParameterError):
            bu_dccs(g, 3, 2, 0)

    def test_empty_graph_result(self):
        g = MultiLayerGraph(2, vertices=range(3))
        result = bu_dccs(g, d=1, s=2, k=2)
        assert result.sets == []

    def test_s_equals_one(self):
        g = paper_figure1_graph()
        result = bu_dccs(g, d=3, s=1, k=4)
        for layers, members in zip(result.labels, result.sets):
            assert len(layers) == 1
            assert is_coherent_dense(g, members, layers, 3)

    def test_s_equals_l(self):
        g = paper_figure1_graph()
        result = bu_dccs(g, d=3, s=4, k=2)
        for layers, members in zip(result.labels, result.sets):
            assert len(layers) == 4
            assert is_coherent_dense(g, members, layers, 3)

    def test_all_switches_off_keeps_ratio(self):
        # Without the greedy seeding, Rule 2's (1 + 1/k) growth bar can
        # freeze an early mediocre pair — that is exactly the 1/4-ratio
        # regime, not the exact optimum of 13.
        g = paper_figure1_graph()
        result = bu_dccs(
            g, d=3, s=2, k=2,
            use_vertex_deletion=False,
            use_layer_sorting=False,
            use_init_topk=False,
            use_order_pruning=False,
            use_layer_pruning=False,
        )
        assert 4 * result.cover_size >= 13
        for layers, members in zip(result.labels, result.sets):
            assert is_coherent_dense(g, members, layers, 3)

    def test_prunes_relative_to_greedy(self):
        # On a graph with clear winners and many layers, BU examines far
        # fewer candidates than greedy's binom(l, s) enumeration.
        g = MultiLayerGraph(10, vertices=range(30))
        block = list(range(10))
        for layer in range(4):
            for i, u in enumerate(block):
                for v in block[i + 1:]:
                    g.add_edge(layer, u, v)
        greedy = gd_dccs(g, d=3, s=3, k=2)
        bottom_up = bu_dccs(g, d=3, s=3, k=2)
        assert bottom_up.cover_size == greedy.cover_size
        # Greedy materialises all binom(10, 3) = 120 layer subsets; the
        # bottom-up tree offers far fewer level-s candidates.
        assert greedy.stats.candidates_generated == 120
        assert (
            bottom_up.stats.candidates_generated
            < greedy.stats.candidates_generated
        )

    @given(multilayer_graphs(max_vertices=8, max_layers=4),
           st.integers(min_value=1, max_value=3),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_results_are_valid_dccs(self, graph, d, k):
        for s in range(1, graph.num_layers + 1):
            result = bu_dccs(graph, d, s, k)
            assert len(result.sets) <= k
            for layers, members in zip(result.labels, result.sets):
                assert len(layers) == s
                assert is_coherent_dense(graph, members, layers, d)

    @given(multilayer_graphs(max_vertices=8, max_layers=3),
           st.integers(min_value=1, max_value=2),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_theorem3_approximation_ratio(self, graph, d, k):
        """BU cover >= 1/4 of the optimal cover (Theorem 3)."""
        for s in range(1, graph.num_layers + 1):
            optimum = exact_dccs(graph, d, s, k, max_candidates=64)
            result = bu_dccs(graph, d, s, k)
            assert 4 * result.cover_size >= optimum.cover_size

    @given(multilayer_graphs(max_vertices=8, max_layers=3))
    @settings(max_examples=30, deadline=None)
    def test_pruning_switches_do_not_break_ratio(self, graph):
        d, s, k = 1, min(2, graph.num_layers), 2
        optimum = exact_dccs(graph, d, s, k, max_candidates=64)
        for options in (
            {"use_order_pruning": False},
            {"use_layer_pruning": False},
            {"use_init_topk": False},
            {"use_layer_sorting": False},
            {"use_vertex_deletion": False},
        ):
            result = bu_dccs(graph, d, s, k, **options)
            assert 4 * result.cover_size >= optimum.cover_size
