"""Tests for vertex deletion, support counts and layer ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dcc import coherent_core, enumerate_candidates
from repro.core.preprocess import (
    compute_support,
    order_layers,
    vertex_deletion,
)
from repro.core.stats import SearchStats
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.utils.errors import ParameterError
from tests.strategies import multilayer_graphs


def two_community_graph():
    g = MultiLayerGraph(3, vertices=range(9))
    # Community A = K4 {0..3} on layers 0 and 1; community B = K4 {4..7}
    # only on layer 2; vertex 8 isolated.
    for block, layers in (((0, 1, 2, 3), (0, 1)), ((4, 5, 6, 7), (2,))):
        for layer in layers:
            for i, u in enumerate(block):
                for v in block[i + 1:]:
                    g.add_edge(layer, u, v)
    return g


class TestVertexDeletion:
    def test_deletes_low_support_vertices(self):
        g = two_community_graph()
        prep = vertex_deletion(g, d=3, s=2)
        # Community B supports only one layer, so s=2 kills it; A survives.
        assert prep.alive == {0, 1, 2, 3}
        assert prep.deleted == 5

    def test_support_counts(self):
        g = two_community_graph()
        prep = vertex_deletion(g, d=3, s=1)
        assert prep.support[0] == 2
        assert prep.support[4] == 1
        assert 8 not in prep.alive

    def test_disabled_keeps_everything(self):
        g = two_community_graph()
        prep = vertex_deletion(g, d=3, s=2, enabled=False)
        assert prep.alive == g.vertices()
        assert prep.deleted == 0

    def test_invalid_s(self):
        with pytest.raises(ParameterError):
            vertex_deletion(two_community_graph(), 2, 0)
        with pytest.raises(ParameterError):
            vertex_deletion(two_community_graph(), 2, 4)

    def test_stats(self):
        stats = SearchStats()
        vertex_deletion(two_community_graph(), 3, 2, stats=stats)
        assert stats.vertices_deleted == 5

    def test_paper_example(self):
        g = paper_figure1_graph()
        prep = vertex_deletion(g, d=3, s=2)
        # x and j never sit in any 3-core, so they are deleted.
        assert "x" not in prep.alive
        assert "j" not in prep.alive
        assert set("abcdefghi") <= prep.alive

    @given(multilayer_graphs(max_vertices=9, max_layers=3),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_deletion_is_lossless_for_candidates(self, graph, d):
        """No d-CC with |L| = s loses vertices to the preprocessing."""
        for s in range(1, graph.num_layers + 1):
            prep = vertex_deletion(graph, d, s)
            for layers, members in enumerate_candidates(graph, d, s):
                assert members <= prep.alive
                # And recomputing inside the alive set changes nothing.
                assert members == coherent_core(
                    graph, layers, d, within=prep.alive
                )

    @given(multilayer_graphs(max_vertices=9, max_layers=3),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_fixed_point_support(self, graph, d):
        s = min(2, graph.num_layers)
        prep = vertex_deletion(graph, d, s)
        for vertex in prep.alive:
            assert prep.support.get(vertex, 0) >= s


class TestSupportAndOrdering:
    def test_compute_support(self):
        support = compute_support([{1, 2}, {2, 3}, {2}])
        assert support == {1: 1, 2: 3, 3: 1}

    def test_order_layers_descending(self):
        cores = [{1}, {1, 2, 3}, {1, 2}]
        assert order_layers(cores, descending=True) == [1, 2, 0]

    def test_order_layers_ascending(self):
        cores = [{1}, {1, 2, 3}, {1, 2}]
        assert order_layers(cores, descending=False) == [0, 2, 1]

    def test_order_layers_disabled(self):
        cores = [{1}, {1, 2, 3}, {1, 2}]
        assert order_layers(cores, enabled=False) == [0, 1, 2]
