"""The kernel-tier contract: numpy peel kernels are invisible.

Three layers of guarantees, all enforced here:

* **flag semantics** — ``kernel=auto|python|numpy`` validation, the
  auto-resolution rule (numpy exactly when importable), the hard error
  on an explicit ``"numpy"`` request without numpy, and the lenient
  worker-payload coercion that falls back instead of crashing a pool;
* **bitwise equivalence** — for every frozen-backend primitive
  (induced degrees, layer core, coherent core, core decomposition) and
  for full ``search_dccs`` runs across methods, jobs counts and warm
  caches, the two tiers return identical values, labels, cover sizes
  and ``SearchStats`` counters;
* **bookkeeping honesty** — ``memory_bytes`` counts numpy-backed CSR
  storage and lazily-built degree vectors, and the synthetic generator
  builds the same graph with or without numpy installed.

The suite runs in both CI legs: with numpy it exercises the real numpy
kernels; without numpy the equivalence tests skip and the flag/fallback
tests prove the pure-Python path is what ``"auto"`` serves.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.datasets.synthetic as synthetic_module
import repro.graph.kernels as kernels_module
from repro.aio import AsyncDCCHost
from repro.core import search_dccs
from repro.core.dcore import core_decomposition, layer_core_decomposition
from repro.core.stats import SearchStats
from repro.datasets import synthetic_multilayer
from repro.engine import DCCEngine
from repro.graph import paper_figure1_graph
from repro.graph.frozen import frozen_coherent_core, frozen_layer_core
from repro.graph.kernels import (
    KERNELS,
    buffer_nbytes,
    check_kernel,
    coerce_kernel,
    numpy_available,
    numpy_version,
    resolve_kernel,
)
from repro.parallel.serialize import graph_payload, payload_graph
from repro.utils.errors import ParameterError

from tests.strategies import multilayer_graphs

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy kernel tier not importable"
)


# ----------------------------------------------------------------------
# flag semantics
# ----------------------------------------------------------------------


class TestKernelFlag:
    def test_flag_universe(self):
        assert KERNELS == ("auto", "python", "numpy")
        for kernel in KERNELS:
            assert check_kernel(kernel) == kernel

    @pytest.mark.parametrize("bad", ["fast", "", None, 1, "NUMPY"])
    def test_bad_flag_rejected(self, bad):
        with pytest.raises(ParameterError):
            check_kernel(bad)
        with pytest.raises(ParameterError):
            resolve_kernel(bad)

    def test_auto_resolution_follows_numpy(self):
        expected = "numpy" if numpy_available() else "python"
        assert resolve_kernel("auto") == expected
        assert resolve_kernel("python") == "python"

    def test_version_reporting(self):
        if numpy_available():
            assert isinstance(numpy_version(), str)
        else:
            assert numpy_version() is None

    def test_numpyless_interpreter_fallback(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_np", None)
        assert not numpy_available()
        assert numpy_version() is None
        assert resolve_kernel("auto") == "python"
        with pytest.raises(ParameterError, match="fast"):
            resolve_kernel("numpy")
        # Worker payloads coerce instead of raising: a degraded worker
        # serves on the python tier rather than crashing the pool.
        assert coerce_kernel("numpy") == "python"
        assert coerce_kernel("auto") == "python"
        assert coerce_kernel("garbage") == "python"
        # And the whole search stack still runs on kernel="auto".
        result = search_dccs(paper_figure1_graph(), 3, 2, 2,
                             backend="frozen", kernel="auto")
        assert result.cover_size == 13

    def test_explicit_numpy_fails_eagerly_everywhere(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_np", None)
        graph = paper_figure1_graph()
        with pytest.raises(ParameterError):
            search_dccs(graph, 3, 2, 2, kernel="numpy")
        with pytest.raises(ParameterError):
            DCCEngine(graph, kernel="numpy")
        from repro.host import DCCHost

        with pytest.raises(ParameterError):
            DCCHost(kernel="numpy")
        with DCCHost() as host:
            with pytest.raises(ParameterError):
                host.attach("g", graph, kernel="numpy")

    def test_set_kernel_is_execution_preference(self):
        frozen = paper_figure1_graph().freeze()
        resolved = frozen.set_kernel("auto")
        assert resolved == resolve_kernel("auto")
        assert frozen.kernel == resolved
        before = frozen_coherent_core(frozen, (0, 1), 3)
        assert frozen.set_kernel("python") == "python"
        assert frozen_coherent_core(frozen, (0, 1), 3) == before


# ----------------------------------------------------------------------
# primitive equivalence (hypothesis)
# ----------------------------------------------------------------------


@needs_numpy
class TestPrimitiveEquivalence:
    @given(multilayer_graphs(max_vertices=9, max_layers=3), st.data())
    @settings(max_examples=25, deadline=None)
    def test_primitives_bitwise_identical(self, graph, data):
        frozen = graph.freeze()
        d = data.draw(st.integers(min_value=0, max_value=4))
        layers = tuple(range(frozen.num_layers))
        within = data.draw(st.one_of(
            st.none(),
            st.lists(st.integers(min_value=-1,
                                 max_value=frozen.num_vertices),
                     max_size=frozen.num_vertices + 2),
        ))
        outputs = {}
        for kernel in ("python", "numpy"):
            frozen.set_kernel(kernel)
            stats = SearchStats()
            outputs[kernel] = (
                frozen.induced_degrees(0, within),
                frozen_layer_core(frozen, 0, d, within=within),
                frozen_coherent_core(frozen, layers, d, within=within,
                                     stats=stats),
                stats.peel_operations,
                layer_core_decomposition(frozen, 0, within=within),
            )
        assert outputs["python"] == outputs["numpy"]

    @given(multilayer_graphs(max_vertices=9, max_layers=2))
    @settings(max_examples=15, deadline=None)
    def test_core_decomposition_matches_dict_reference(self, graph):
        frozen = graph.freeze()
        frozen.set_kernel("numpy")
        assert layer_core_decomposition(frozen, 0) == core_decomposition(
            graph.adjacency(0)
        )


# ----------------------------------------------------------------------
# whole-search equivalence
# ----------------------------------------------------------------------


def _snapshot(result):
    return (
        [set(members) for members in result.sets],
        list(result.labels),
        result.cover_size,
        result.stats.as_dict(),
    )


@needs_numpy
class TestSearchEquivalence:
    @given(multilayer_graphs(max_vertices=9, max_layers=3), st.data())
    @settings(max_examples=10, deadline=None)
    def test_methods_identical_across_tiers(self, graph, data):
        d = data.draw(st.integers(min_value=1, max_value=3))
        s = data.draw(st.integers(min_value=1, max_value=graph.num_layers))
        k = data.draw(st.integers(min_value=1, max_value=3))
        method = data.draw(st.sampled_from(
            ("greedy", "bottom-up", "top-down")
        ))
        runs = {
            kernel: _snapshot(search_dccs(
                graph, d, s, k, method=method, backend="frozen",
                kernel=kernel, seed=0,
            ))
            for kernel in ("python", "numpy")
        }
        assert runs["python"] == runs["numpy"]

    @pytest.mark.parametrize("jobs", [None, 1, 2])
    def test_jobs_identical_across_tiers(self, jobs):
        dataset = synthetic_multilayer(600, num_layers=3,
                                       num_communities=4,
                                       community_size=30, d=3, span=2,
                                       seed=5)
        runs = {
            kernel: _snapshot(search_dccs(
                dataset.graph, 3, 2, 3, method="greedy",
                backend="frozen", kernel=kernel, jobs=jobs,
            ))
            for kernel in ("python", "numpy")
        }
        assert runs["python"] == runs["numpy"]

    def test_warm_artifact_cache_replay_identical(self):
        graph = paper_figure1_graph()
        snapshots = {}
        for kernel in ("python", "numpy"):
            with DCCEngine(graph, backend="frozen", jobs=1,
                           kernel=kernel) as engine:
                cold = _snapshot(engine.search(3, 2, 2, method="greedy"))
                warm = _snapshot(engine.search(3, 2, 2, method="greedy"))
                assert engine.info()["cache_hits"] > 0
            assert cold == warm
            snapshots[kernel] = warm
        assert snapshots["python"] == snapshots["numpy"]

    def test_warm_result_cache_replay_identical(self):
        spec = {"graph": "g", "d": 3, "s": 2, "k": 2, "method": "greedy"}
        snapshots = {}
        for kernel in ("python", "numpy"):
            host = AsyncDCCHost(backend="frozen", jobs=1, kernel=kernel)
            host.attach("g", paper_figure1_graph())

            async def run():
                first = await host.search_many([spec])
                second = await host.search_many([spec])
                info = host.info()
                await host.aclose()
                return first, second, info

            first, second, info = asyncio.run(run())
            assert info["requests_cached"] >= 1
            assert _snapshot(first[0]) == _snapshot(second[0])
            snapshots[kernel] = _snapshot(second[0])
        assert snapshots["python"] == snapshots["numpy"]

    def test_worker_payload_carries_kernel(self):
        frozen = paper_figure1_graph().freeze()
        frozen.set_kernel("numpy")
        rebuilt = payload_graph(graph_payload(frozen))
        assert rebuilt == frozen
        assert rebuilt.kernel == "numpy"
        frozen.set_kernel("python")
        assert payload_graph(graph_payload(frozen)).kernel == "python"

    def test_payload_coerces_in_numpyless_worker(self, monkeypatch):
        frozen = paper_figure1_graph().freeze()
        frozen.set_kernel(resolve_kernel("auto"))
        expected = frozen_coherent_core(frozen, (0, 1), 3)
        payload = graph_payload(frozen)
        monkeypatch.setattr(kernels_module, "_np", None)
        rebuilt = payload_graph(payload)
        assert rebuilt.kernel == "python"
        assert frozen_coherent_core(rebuilt, (0, 1), 3) == expected


# ----------------------------------------------------------------------
# bookkeeping
# ----------------------------------------------------------------------


class TestMemoryAccounting:
    def test_memory_bytes_counts_csr_buffers(self):
        graph = synthetic_multilayer(2000, num_communities=4,
                                     community_size=40, seed=1).graph
        floor = sum(
            buffer_nbytes(graph._indptr[layer])
            + buffer_nbytes(graph._indices[layer])
            for layer in graph.layers()
        )
        assert graph.memory_bytes() >= floor

    @needs_numpy
    def test_memory_bytes_counts_lazy_degree_vectors(self):
        graph = synthetic_multilayer(2000, num_communities=4,
                                     community_size=40, seed=1).graph
        graph.set_kernel("numpy")
        before = graph.memory_bytes()
        frozen_layer_core(graph, 0, 3)  # builds the layer's degree vector
        assert graph.memory_bytes() > before


class TestSyntheticGenerator:
    def test_seeded_determinism(self):
        a = synthetic_multilayer(1500, num_communities=3,
                                 community_size=50, seed=9)
        b = synthetic_multilayer(1500, num_communities=3,
                                 community_size=50, seed=9)
        c = synthetic_multilayer(1500, num_communities=3,
                                 community_size=50, seed=10)
        assert a.graph == b.graph
        assert a.graph != c.graph
        assert a.communities == b.communities

    def test_identical_with_and_without_numpy(self, monkeypatch):
        with_numpy = synthetic_multilayer(800, num_communities=3,
                                          community_size=30, seed=2)
        monkeypatch.setattr(synthetic_module, "_np", None)
        without = synthetic_multilayer(800, num_communities=3,
                                       community_size=30, seed=2)
        assert with_numpy.graph == without.graph

    def test_planted_degree_guarantee(self):
        d = 5
        dataset = synthetic_multilayer(3000, num_layers=4,
                                       num_communities=6,
                                       community_size=d + 2, d=d, span=2,
                                       seed=4)
        windows = dataset.graph.num_layers - 2 + 1
        for c, community in enumerate(dataset.communities):
            start = c % windows
            for layer in range(start, start + 2):
                degrees = dataset.graph.induced_degrees(layer, community)
                assert min(degrees.values()) >= d

    def test_recovers_planted_communities(self):
        dataset = synthetic_multilayer(5000, num_layers=3,
                                       num_communities=6,
                                       community_size=40, d=4, span=2,
                                       seed=7)
        result = search_dccs(dataset.graph, 4, 2, 4, method="greedy")
        reported = [set(members) for members in result.sets]
        for community in dataset.communities:
            assert any(community <= found for found in reported)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            synthetic_multilayer(100, community_size=4, d=4)
        with pytest.raises(ParameterError):
            synthetic_multilayer(100, num_communities=10,
                                 community_size=20)
        with pytest.raises(ParameterError):
            synthetic_multilayer(100, span=5, num_layers=3,
                                 num_communities=1, community_size=10)
        with pytest.raises(ParameterError):
            synthetic_multilayer(100, d=0, num_communities=1,
                                 community_size=10)

    def test_labels_are_identity_range(self):
        graph = synthetic_multilayer(500, num_communities=2,
                                     community_size=20, seed=0).graph
        assert type(graph.labels) is range
        assert graph.id_of(123) == 123
        payload = graph_payload(graph)
        assert type(payload[2]) is range  # shipped as a range, not a list
        assert payload_graph(payload) == graph
