"""Suite for :mod:`repro.aio` — the async serving front-end.

The contract under test, in order of importance:

1. **async equivalence** (the acceptance-criterion property) — any
   interleaving of concurrent async clients over any number of graphs
   yields, for every request, results and counters bitwise identical to
   the same spec run sequentially on a plain :class:`DCCHost`,
   including across evictions (``max_engines=1``), coalesced duplicate
   specs, and warm-vs-cold sessions;
2. **coalescing** — identical in-flight specs execute once, every
   waiter gets an independent (deep-copied) result, and coalesced
   requests never occupy queue slots;
3. **backpressure** — a full per-graph queue rejects with
   :class:`QueueFullError` and frees up as the dispatcher drains;
4. **lifecycle** — ``aclose()`` serves everything already accepted,
   refuses new work, and returns ``live_pool_count()`` to its baseline.
"""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aio import AsyncDCCHost
from repro.engine import DCCEngine
from repro.graph import MultiLayerGraph, paper_figure1_graph
from repro.host import DCCHost
from repro.parallel import live_pool_count
from repro.utils.errors import (
    HostClosedError,
    ParameterError,
    QueueFullError,
    UnknownGraphError,
)
from tests.strategies import multilayer_graphs, search_parameters


def ring_graph(n=12, layers=2):
    graph = MultiLayerGraph(layers, vertices=range(n))
    for layer in range(layers):
        for i in range(n):
            graph.add_edge(layer, i, (i + 1) % n)
    return graph


def assert_identical(first, second, context=""):
    assert first.sets == second.sets, context
    assert first.labels == second.labels, context
    assert first.cover_size == second.cover_size, context
    assert first.stats.as_dict() == second.stats.as_dict(), context


def spec_call(host, spec):
    """One ``await``-able host.search call from a dict spec."""
    entry = dict(spec)
    name = entry.pop("graph")
    return host.search(name, entry.pop("d"), entry.pop("s"),
                       entry.pop("k"), method=entry.pop("method", "auto"),
                       **entry)


def sequential_baseline(graphs, specs, **host_options):
    """Each spec's canonical result from a plain synchronous host."""
    host_options.setdefault("jobs", 1)
    with DCCHost(**host_options) as host:
        for name, graph in graphs.items():
            host.attach(name, graph)
        return host.search_many(specs)


MIXED_SPECS = [
    {"graph": "fig", "d": 3, "s": 2, "k": 2},
    {"graph": "ring", "d": 2, "s": 1, "k": 2},
    {"graph": "fig", "d": 3, "s": 2, "k": 2},  # duplicate: coalesces
    {"graph": "fig", "d": 2, "s": 2, "k": 2, "method": "greedy"},
    {"graph": "ring", "d": 2, "s": 2, "k": 1},
]


# ----------------------------------------------------------------------
# 1. async equivalence
# ----------------------------------------------------------------------


class TestAsyncEquivalence:
    def test_single_search_matches_host_and_engine(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                return await host.search("fig", 3, 2, 2, method="greedy")

        served = asyncio.run(serve())
        with DCCHost(jobs=1) as host:
            host.attach("fig", graph)
            hosted = host.search("fig", 3, 2, 2, method="greedy")
        with DCCEngine(graph, jobs=1) as engine:
            session = engine.search(3, 2, 2, method="greedy")
        assert_identical(served, hosted)
        assert_identical(served, session)

    def test_concurrent_clients_interleave_bitwise_identically(self):
        # Three clients, staggered differently, over two graphs sharing
        # one engine slot: every response must equal the sequential
        # host's answer for its spec — eviction races, dispatcher
        # batching and coalescing included.
        graphs = {"fig": paper_figure1_graph(), "ring": ring_graph()}
        baseline = sequential_baseline(graphs, MIXED_SPECS, max_engines=1)

        async def client(host, lag):
            out = []
            for index, spec in enumerate(MIXED_SPECS):
                if (index + lag) % 2:
                    await asyncio.sleep(0)  # shuffle the interleaving
                out.append(await spec_call(host, spec))
            return out

        async def serve():
            async with AsyncDCCHost(max_engines=1, jobs=1) as host:
                for name, graph in graphs.items():
                    host.attach(name, graph)
                results = await asyncio.gather(*(client(host, lag)
                                                 for lag in range(3)))
                return results, host.info()

        results, info = asyncio.run(serve())
        for per_client in results:
            for spec, got, want in zip(MIXED_SPECS, per_client, baseline):
                assert_identical(got, want, spec)
        assert info["host"]["evictions"] >= 1  # the slot really thrashed

    @given(st.data())
    @settings(max_examples=3, deadline=None)
    def test_property_async_equals_sequential(self, data):
        # The acceptance criterion, property-shaped: arbitrary graphs,
        # arbitrary parameters, >= 3 concurrent clients each running a
        # drawn shuffle of the spec list (duplicates included) over 2
        # graphs behind one engine slot.  Every response — and the
        # warm-repeat of the whole workload — must be bitwise identical
        # to the sequential DCCHost baseline.
        graph_a = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        graph_b = data.draw(multilayer_graphs(max_vertices=8, max_layers=3))
        d, s, k = data.draw(search_parameters(graph_a))
        db, sb, kb = data.draw(search_parameters(graph_b))
        specs = [
            {"graph": "a", "d": d, "s": s, "k": k},
            {"graph": "b", "d": db, "s": sb, "k": kb},
            {"graph": "a", "d": d, "s": s, "k": k},  # guaranteed duplicate
        ]
        graphs = {"a": graph_a, "b": graph_b}
        orders = [
            data.draw(st.permutations(range(len(specs))))
            for _ in range(3)
        ]
        baseline = sequential_baseline(graphs, specs, max_engines=1)

        async def client(host, order):
            results = {}
            for index in order:
                results[index] = await spec_call(host, specs[index])
                await asyncio.sleep(0)
            return results

        async def serve():
            async with AsyncDCCHost(max_engines=1, jobs=1) as host:
                for name, graph in graphs.items():
                    host.attach(name, graph)
                cold = await asyncio.gather(*(client(host, order)
                                              for order in orders))
                warm = await asyncio.gather(*(client(host, order)
                                              for order in orders))
                return cold + warm

        for per_client in asyncio.run(serve()):
            for index, got in per_client.items():
                assert_identical(got, baseline[index],
                                 (index, specs[index]))

    def test_search_many_returns_input_order(self):
        graphs = {"fig": paper_figure1_graph(), "ring": ring_graph()}
        baseline = sequential_baseline(graphs, MIXED_SPECS)

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                for name, graph in graphs.items():
                    host.attach(name, graph)
                return await host.search_many(MIXED_SPECS)

        for got, want in zip(asyncio.run(serve()), baseline):
            assert_identical(got, want)

    def test_run_batch_bridges_across_loops(self):
        graphs = {"fig": paper_figure1_graph(), "ring": ring_graph()}
        baseline = sequential_baseline(graphs, MIXED_SPECS)
        host = AsyncDCCHost(jobs=1)
        for name, graph in graphs.items():
            host.attach(name, graph)
        try:
            first = host.run_batch(MIXED_SPECS)
            second = host.run_batch(MIXED_SPECS)  # rebinds to a new loop
        finally:
            asyncio.run(host.aclose())
        for got, want in zip(first, baseline):
            assert_identical(got, want)
        for got, want in zip(second, baseline):
            assert_identical(got, want)

    @pytest.mark.stress
    def test_stress_many_clients_with_real_pools(self):
        # Eight clients, two pooled engines (jobs=2) sharing two slots
        # over three graphs: the heavyweight version of the
        # interleaving property, with real worker processes.
        graphs = {
            "fig": paper_figure1_graph(),
            "ring": ring_graph(16, 2),
            "ring3": ring_graph(10, 3),
        }
        specs = MIXED_SPECS + [
            {"graph": "ring3", "d": 2, "s": 2, "k": 2},
            {"graph": "ring3", "d": 2, "s": 3, "k": 1},
        ]
        baseline = sequential_baseline(graphs, specs, max_engines=2,
                                       jobs=2)
        pools_before = live_pool_count()

        async def client(host, lag):
            out = []
            for index, spec in enumerate(specs):
                if (index + lag) % 3:
                    await asyncio.sleep(0)
                out.append(await spec_call(host, spec))
            return out

        async def serve():
            async with AsyncDCCHost(max_engines=2, jobs=2) as host:
                for name, graph in graphs.items():
                    host.attach(name, graph)
                return await asyncio.gather(*(client(host, lag)
                                              for lag in range(8)))

        results = asyncio.run(serve())
        for per_client in results:
            for spec, got, want in zip(specs, per_client, baseline):
                assert_identical(got, want, spec)
        assert live_pool_count() == pools_before


# ----------------------------------------------------------------------
# 2. coalescing
# ----------------------------------------------------------------------


class TestCoalescing:
    def test_duplicates_coalesce_to_independent_copies(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                results = await asyncio.gather(*(
                    host.search("fig", 3, 2, 2) for _ in range(5)
                ))
                return results, host.info()

        results, info = asyncio.run(serve())
        assert info["requests_coalesced"] >= 1
        assert info["requests_accepted"] + info["requests_coalesced"] == 5
        for got in results[1:]:
            assert_identical(got, results[0])
        # Deep copies: mutating one client's result must not leak into
        # another's.
        mutated, witness = results[0], results[1]
        mutated.sets.append(frozenset())
        assert witness.sets != mutated.sets

    def test_coalescing_distinguishes_options(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                plain, pruned = await asyncio.gather(
                    host.search("fig", 3, 2, 2, method="bottom-up"),
                    host.search("fig", 3, 2, 2, method="bottom-up",
                                use_layer_pruning=False),
                )
                return plain, pruned, host.info()

        plain, pruned, info = asyncio.run(serve())
        assert info["requests_coalesced"] == 0
        assert plain.sets == pruned.sets  # pruning never changes results

    def test_coalescing_can_be_disabled(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1, coalesce=False) as host:
                host.attach("fig", graph)
                results = await asyncio.gather(*(
                    host.search("fig", 3, 2, 2) for _ in range(3)
                ))
                return results, host.info()

        results, info = asyncio.run(serve())
        assert info["requests_coalesced"] == 0
        assert info["requests_accepted"] == 3
        for got in results[1:]:
            assert_identical(got, results[0])

    def test_unhashable_options_opt_out_of_coalescing(self):
        from repro.core.stats import SearchStats

        graph = paper_figure1_graph()
        mine, yours = SearchStats(), SearchStats()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                return await asyncio.gather(
                    host.search("fig", 3, 2, 2, stats=mine),
                    host.search("fig", 3, 2, 2, stats=yours),
                ), host.info()

        (first, second), info = asyncio.run(serve())
        assert info["requests_coalesced"] == 0
        assert first.stats is mine and second.stats is yours
        assert mine.as_dict() == yours.as_dict()


# ----------------------------------------------------------------------
# 3. backpressure
# ----------------------------------------------------------------------


class TestBackpressure:
    def test_full_queue_rejects_with_queue_full_error(self):
        graph = paper_figure1_graph()
        gate = None

        async def serve():
            nonlocal gate
            gate = asyncio.Event()
            host = AsyncDCCHost(jobs=1, max_pending=1, coalesce=False)
            host.attach("fig", graph)
            real_serve = host._serve_batch

            async def gated(name, batch):
                await gate.wait()
                await real_serve(name, batch)

            host._serve_batch = gated
            first = asyncio.ensure_future(host.search("fig", 3, 2, 2))
            # Let the dispatcher take the first request off the queue
            # and park on the gate.
            for _ in range(10):
                await asyncio.sleep(0)
            second = asyncio.ensure_future(
                host.search("fig", 2, 2, 2)  # occupies the single slot
            )
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError) as rejected:
                await host.search("fig", 2, 1, 2)
            assert rejected.value.max_pending == 1
            info_while_full = host.info()
            gate.set()
            results = await asyncio.gather(first, second)
            # The queue drained: the next request is accepted again.
            retry = await host.search("fig", 2, 1, 2)
            await host.aclose()
            return results, retry, info_while_full, host.info()

        (first, second), retry, while_full, after = asyncio.run(serve())
        assert while_full["requests_rejected"] == 1
        assert while_full["pending"] == {"fig": 1}
        assert after["requests_rejected"] == 1
        with DCCHost(jobs=1) as host:
            host.attach("fig", graph)
            assert_identical(first, host.search("fig", 3, 2, 2))
            assert_identical(second, host.search("fig", 2, 2, 2))
            assert_identical(retry, host.search("fig", 2, 1, 2))

    def test_coalesced_duplicates_do_not_occupy_slots(self):
        graph = paper_figure1_graph()

        async def serve():
            gate = asyncio.Event()
            host = AsyncDCCHost(jobs=1, max_pending=1)
            host.attach("fig", graph)
            real_serve = host._serve_batch

            async def gated(name, batch):
                await gate.wait()
                await real_serve(name, batch)

            host._serve_batch = gated
            primary = asyncio.ensure_future(host.search("fig", 3, 2, 2))
            for _ in range(10):
                await asyncio.sleep(0)
            occupant = asyncio.ensure_future(host.search("fig", 2, 2, 2))
            await asyncio.sleep(0)
            # The queue is full, but duplicates of either in-flight spec
            # attach to it instead of needing a slot.
            duplicates = [asyncio.ensure_future(host.search("fig", 3, 2, 2))
                          for _ in range(4)]
            await asyncio.sleep(0)
            gate.set()
            results = await asyncio.gather(primary, occupant, *duplicates)
            info = host.info()
            await host.aclose()
            return results, info

        results, info = asyncio.run(serve())
        assert info["requests_coalesced"] == 4
        assert info["requests_rejected"] == 0
        for duplicate in results[2:]:
            assert_identical(duplicate, results[0])


# ----------------------------------------------------------------------
# 4. lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_aclose_drains_accepted_requests(self):
        graph = paper_figure1_graph()

        async def serve():
            host = AsyncDCCHost(jobs=1)
            host.attach("fig", graph)
            accepted = [
                asyncio.ensure_future(host.search("fig", 3, 2, 2)),
                asyncio.ensure_future(host.search("fig", 2, 2, 2)),
            ]
            await asyncio.sleep(0)
            await host.aclose()
            # Everything accepted before aclose() was served...
            results = await asyncio.gather(*accepted)
            # ...and nothing after it is.
            with pytest.raises(HostClosedError):
                await host.search("fig", 2, 1, 2)
            await host.aclose()  # idempotent
            return results

        first, second = asyncio.run(serve())
        with DCCHost(jobs=1) as host:
            host.attach("fig", graph)
            assert_identical(first, host.search("fig", 3, 2, 2))
            assert_identical(second, host.search("fig", 2, 2, 2))

    def test_aclose_returns_pools_to_baseline(self):
        pools_before = live_pool_count()

        async def serve():
            async with AsyncDCCHost(jobs=2) as host:
                host.attach("fig", paper_figure1_graph())
                result = await host.search("fig", 3, 2, 2)
                spawned = live_pool_count()
                return result, spawned

        result, spawned_during = asyncio.run(serve())
        assert spawned_during >= pools_before
        assert live_pool_count() == pools_before
        assert result.sets  # the search actually ran

    def test_registry_surface_delegates(self):
        graph = paper_figure1_graph()

        async def serve():
            async with AsyncDCCHost(jobs=1) as host:
                host.attach("fig", graph)
                assert host.is_attached("fig")
                assert host.names() == ("fig",)
                assert host.graph("fig") is graph
                with pytest.raises(UnknownGraphError):
                    await host.search("nope", 2, 2, 2)
                host.detach("fig")
                assert not host.is_attached("fig")

        asyncio.run(serve())

    def test_constructor_validates(self):
        with pytest.raises(ParameterError):
            AsyncDCCHost(max_pending=0)
        with pytest.raises(ParameterError):
            AsyncDCCHost(host=DCCHost(), jobs=2)
        host = DCCHost(jobs=1)
        wrapped = AsyncDCCHost(host=host)
        assert wrapped.host is host
        host.close()

    def test_wrapping_an_existing_host_preserves_registrations(self):
        graph = paper_figure1_graph()
        inner = DCCHost(jobs=1)
        inner.attach("fig", graph)

        async def serve():
            async with AsyncDCCHost(host=inner) as host:
                return await host.search("fig", 3, 2, 2)

        served = asyncio.run(serve())
        with DCCHost(jobs=1) as fresh:
            fresh.attach("fig", graph)
            assert_identical(served, fresh.search("fig", 3, 2, 2))


# ----------------------------------------------------------------------
# 5. the `repro serve` JSON-lines loop
# ----------------------------------------------------------------------


class TestServeCli:
    def _serve(self, tmp_path, monkeypatch, capsys, lines, spec_body=None,
               extra_args=()):
        import io
        import json

        from repro.cli import main

        spec = tmp_path / "serve.json"
        spec.write_text(spec_body or
                        '{"graphs": {"fig": "figure1"}, "max_engines": 1}')
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(lines) + "\n"))
        code = main(["serve", str(spec), "--jobs", "1", *extra_args])
        captured = capsys.readouterr()
        responses = [json.loads(line)
                     for line in captured.out.splitlines() if line]
        return code, responses, captured.err

    def test_serve_answers_requests_and_echoes_ids(self, tmp_path,
                                                   monkeypatch, capsys):
        code, responses, err = self._serve(
            tmp_path, monkeypatch, capsys,
            [
                '{"id": "q1", "graph": "fig", "d": 3, "s": 2, "k": 2}',
                '{"id": "q2", "graph": "fig", "d": 3, "s": 2, "k": 2}',
                '{"id": "q3", "graph": "fig", "d": 2, "s": 2, "k": 2,'
                ' "method": "greedy"}',
            ],
        )
        assert code == 0
        assert "3 ok, 0 failed" in err
        by_id = {response["id"]: response for response in responses}
        assert set(by_id) == {"q1", "q2", "q3"}
        assert all(response["ok"] for response in responses)
        # Coalesced duplicate: identical payloads for q1 and q2...
        assert by_id["q1"]["sets"] == by_id["q2"]["sets"]
        # ...matching the library's own answer.
        with DCCHost(jobs=1) as host:
            host.attach("fig", paper_figure1_graph())
            want = host.search("fig", 3, 2, 2)
        assert by_id["q1"]["cover"] == want.cover_size
        assert len(by_id["q1"]["sets"]) == len(want.sets)

    def test_serve_reports_errors_per_request(self, tmp_path, monkeypatch,
                                              capsys):
        code, responses, err = self._serve(
            tmp_path, monkeypatch, capsys,
            [
                'not json',
                '{"id": "bad", "graph": "missing", "d": 2, "s": 2, "k": 2}',
                '{"id": "ok", "graph": "fig", "d": 3, "s": 2, "k": 2}',
            ],
        )
        assert code == 0
        assert "1 ok, 2 failed" in err
        by_ok = {response["ok"] for response in responses}
        assert by_ok == {True, False}
        failures = [r for r in responses if not r["ok"]]
        assert {f["error_type"] for f in failures} == \
            {"JSONDecodeError", "UnknownGraphError"}

    def test_serve_runs_preloaded_spec_queries(self, tmp_path, monkeypatch,
                                               capsys):
        code, responses, err = self._serve(
            tmp_path, monkeypatch, capsys,
            [""],  # no stdin requests, just EOF
            spec_body='{"graphs": {"fig": "figure1"},'
                      ' "queries": [{"graph": "fig", "d": 3, "s": 2,'
                      ' "k": 2}]}',
        )
        assert code == 0
        assert len(responses) == 1 and responses[0]["ok"]
        assert "1 ok, 0 failed" in err

    def test_serve_rejects_bad_spec(self, tmp_path, monkeypatch, capsys):
        import io

        from repro.cli import main

        spec = tmp_path / "bad.json"
        spec.write_text('{"queries": []}')
        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["serve", str(spec)]) == 2
        assert capsys.readouterr().err != ""
